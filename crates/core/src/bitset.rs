//! A fixed-capacity word-packed bitset.
//!
//! The simulator tracks which of `n` processes hold the message `M` (and
//! which learned it this round) with per-process flags that are reset,
//! scanned and counted every round. Packing them 64 per word turns the
//! per-round reset into a short `memset`, the "how many delivered"
//! count into a handful of `popcnt`s, and the delivery scan into
//! per-word `trailing_zeros` walks that skip empty words entirely —
//! while [`BitSet::iter_ones`] still yields indices in ascending order,
//! which is what keeps fixed-seed traces byte-identical.

/// A fixed-capacity set of bit flags over indices `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a set of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set addresses zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range 0..{}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears every bit (one pass over the packed words).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits, via per-word popcount.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set bits in ascending index order, skipping clear
    /// words wholesale (`trailing_zeros` within each word).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .flat_map(|(wi, &w)| {
                std::iter::successors(Some(w), |&rest| {
                    let rest = rest & (rest - 1); // drop lowest set bit
                    (rest != 0).then_some(rest)
                })
                .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert!((0..130).all(|i| !b.get(i)));
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut b = BitSet::new(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            b.set(i);
            assert!(b.get(i));
        }
        assert!(!b.get(2));
        assert!(!b.get(126));
        assert_eq!(b.count_ones(), 8);
    }

    #[test]
    fn iter_ones_ascending_and_complete() {
        let mut b = BitSet::new(300);
        let want = [3usize, 5, 63, 64, 100, 191, 192, 255, 299];
        // Insert out of order; iteration must still be ascending.
        for &i in want.iter().rev() {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), want);
    }

    #[test]
    fn clear_all_resets_everything() {
        let mut b = BitSet::new(90);
        for i in 0..90 {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 90);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn set_is_idempotent() {
        let mut b = BitSet::new(10);
        b.set(4);
        b.set(4);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn matches_vec_bool_reference() {
        // Randomized cross-check against the Vec<bool> it replaces.
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..50 {
            let len = rng.random_range(1usize..400);
            let mut bits = BitSet::new(len);
            let mut reference = vec![false; len];
            for _ in 0..len {
                let i = rng.random_range(0..len);
                bits.set(i);
                reference[i] = true;
            }
            assert_eq!(bits.count_ones(), reference.iter().filter(|&&v| v).count());
            assert_eq!(
                bits.iter_ones().collect::<Vec<_>>(),
                (0..len).filter(|&i| reference[i]).collect::<Vec<_>>()
            );
            for (i, &want) in reference.iter().enumerate() {
                assert_eq!(bits.get(i), want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitSet::new(64).get(64);
    }
}
