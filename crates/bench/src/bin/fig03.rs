//! Figure 3: targeted DoS attacks — the paper's headline result.
//!
//! Thin wrapper over [`drum_bench::figures::fig03`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig03(&mut out).expect("write fig03 to stdout");
}
