//! Extension experiment (beyond the paper): does a *mobile* adversary —
//!
//! Thin wrapper over [`drum_bench::figures::ext_rotation`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::ext_rotation(&mut out).expect("write ext_rotation to stdout");
}
