//! Failure injection across the stack: crashes, loss, malformed and
//! hostile traffic, and resource pressure.

use std::time::{Duration, Instant};

use drum::core::config::ProtocolVariant;
use drum::net::experiment::{paper_cluster_config, Cluster};
use drum::net::transport::bind_ephemeral;
use drum::sim::config::SimConfig;
use drum::sim::runner::run_experiment;

const TRIALS: usize = 40;

#[test]
fn graceful_degradation_under_increasing_crashes() {
    // Figure 2(b): propagation keeps working as crashes mount, degrading
    // smoothly rather than collapsing.
    let mut prev_mean = 0.0;
    for crashed_frac in [0.0, 0.2, 0.4] {
        let mut cfg = SimConfig::baseline(ProtocolVariant::Drum, 150);
        cfg.crashed = (150.0 * crashed_frac) as usize;
        let res = run_experiment(&cfg, TRIALS, 21, 0);
        assert_eq!(res.failures, 0, "crashes must not prevent dissemination");
        assert!(
            res.mean_rounds() >= prev_mean - 0.5,
            "no wild non-monotonicity"
        );
        prev_mean = res.mean_rounds();
    }
    // Even 40% crashed: still single-digit-ish rounds.
    assert!(
        prev_mean < 20.0,
        "40% crashes should only slow things down: {prev_mean}"
    );
}

#[test]
fn heavy_link_loss_slows_but_does_not_stop() {
    let mut cfg = SimConfig::baseline(ProtocolVariant::Drum, 100);
    cfg.loss = 0.25;
    cfg.max_rounds = 500;
    let res = run_experiment(&cfg, TRIALS, 22, 0);
    assert_eq!(res.failures, 0, "25% loss should not prevent dissemination");

    let mut clean = SimConfig::baseline(ProtocolVariant::Drum, 100);
    clean.loss = 0.0;
    let clean_res = run_experiment(&clean, TRIALS, 22, 0);
    assert!(res.mean_rounds() > clean_res.mean_rounds() - 0.5);
}

#[test]
fn simultaneous_crashes_attack_and_loss() {
    // Everything at once: 10% malicious, 10% crashed, 10% attacked, lossy
    // links. Drum still converges.
    let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
    cfg.crashed = 12;
    cfg.loss = 0.05;
    cfg.max_rounds = 1000;
    let res = run_experiment(&cfg, TRIALS, 23, 0);
    assert_eq!(res.failures, 0, "combined failures must not stop Drum");
}

#[test]
fn udp_cluster_survives_garbage_floods() {
    // Blast raw garbage (not even valid protocol messages) at every
    // well-known port of a live cluster; dissemination must continue and
    // the runtime must account the junk as decode errors, not crash.
    let config = paper_cluster_config(
        ProtocolVariant::Drum,
        6,
        0,
        0.0,
        Duration::from_millis(40),
        31,
    );
    let cluster = Cluster::start(config).unwrap();

    // Garbage generator: we do not know the ports directly here, so spray
    // the loopback ports around the ephemeral range used by the cluster's
    // sockets — and, more importantly, send malformed datagrams to the
    // source's channels via its published address book entries. Since the
    // book is internal, recreate pressure by sending to many random
    // ephemeral ports; some will hit cluster sockets.
    let blaster = bind_ephemeral().unwrap();
    let stop_at = Instant::now() + Duration::from_millis(600);
    cluster.publish_from_source(0, 50);
    let mut sprayed = 0u32;
    while Instant::now() < stop_at {
        for port in (20000u16..60000).step_by(977) {
            let _ = blaster.send_to(&[0xFFu8, 1, 2, 3], ("127.0.0.1", port));
            sprayed += 1;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(sprayed > 0);

    // The message still disseminates.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut reached = 1;
    let mut seen = vec![false; cluster.handles().len()];
    seen[0] = true;
    while Instant::now() < deadline && reached < cluster.handles().len() {
        for (i, h) in cluster.handles().iter().enumerate() {
            if !h.take_delivered().is_empty() {
                seen[i] = true;
            }
        }
        reached = seen.iter().filter(|s| **s).count();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        reached,
        cluster.handles().len(),
        "garbage flood broke dissemination"
    );
    cluster.shutdown();
}

#[test]
fn extreme_attack_rate_does_not_wedge_the_runtime() {
    // An absurd x: the victims' sockets overflow, but rounds keep turning
    // and shutdown is clean.
    let config = paper_cluster_config(
        ProtocolVariant::Drum,
        5,
        2,
        2000.0,
        Duration::from_millis(30),
        32,
    );
    let cluster = Cluster::start(config).unwrap();
    cluster.publish_from_source(0, 50);
    std::thread::sleep(Duration::from_millis(800));
    let stats = cluster.shutdown();
    for s in &stats {
        assert!(s.rounds >= 3, "a process wedged: {s:?}");
    }
}

#[test]
fn tiny_groups_work() {
    // n = 2 is the degenerate edge: one partner only.
    for proto in [
        ProtocolVariant::Drum,
        ProtocolVariant::Push,
        ProtocolVariant::Pull,
    ] {
        let cfg = SimConfig::baseline(proto, 2);
        let res = run_experiment(&cfg, 20, 33, 0);
        assert_eq!(res.failures, 0, "{proto} failed on n=2");
    }
}

#[test]
fn attack_on_every_correct_process_still_converges_eventually() {
    // The rightmost point of Figure 7: α covers all correct processes.
    let mut cfg = SimConfig::attack_alpha(ProtocolVariant::Drum, 60, 0.9, 16.0);
    cfg.max_rounds = 2000;
    let res = run_experiment(&cfg, TRIALS, 34, 0);
    assert_eq!(
        res.failures, 0,
        "full-coverage attack must only slow Drum down"
    );
}
