//! Figure 6: propagation time split by victim class — rounds until 99% of
//! the *non-attacked* (a) and of the *attacked* (b) correct processes hold
//! `M`, under an α = 10% attack.

use drum_bench::{banner, scaled, trials, PROTOCOLS, PROTOCOL_NAMES, SEED};
use drum_metrics::table::Table;
use drum_sim::config::SimConfig;
use drum_sim::runner::run_experiment;

fn main() {
    banner(
        "Figure 6",
        "propagation time to non-attacked vs attacked processes",
    );
    let trials = trials();
    let n = scaled(120, 1000);
    let xs: Vec<f64> = scaled(
        vec![32.0, 64.0, 128.0, 256.0],
        vec![32.0, 64.0, 128.0, 256.0, 512.0],
    );

    let mut to_unattacked = Table::new(
        std::iter::once("x".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
            .collect(),
    );
    let mut to_attacked = to_unattacked.clone();

    for &x in &xs {
        let mut row_u = vec![format!("{x:.0}")];
        let mut row_a = vec![format!("{x:.0}")];
        for &p in &PROTOCOLS {
            let cfg = SimConfig::paper_attack(p, n, x);
            let res = run_experiment(&cfg, trials, SEED, 0);
            row_u.push(format!("{:.1}", res.rounds_unattacked.mean()));
            row_a.push(format!("{:.1}", res.rounds_attacked.mean()));
        }
        to_unattacked.row(row_u);
        to_attacked.row(row_a);
    }

    println!("(a) rounds until 99% of the NON-ATTACKED correct processes hold M, n = {n}");
    println!("{to_unattacked}");
    println!("paper: Push reaches non-attacked processes much faster than Pull\n");

    println!("(b) rounds until 99% of the ATTACKED correct processes hold M, n = {n}");
    println!("{to_attacked}");
    println!("paper: Push and Pull take similarly long on the attacked set;\nDrum is fast for both classes");
}
