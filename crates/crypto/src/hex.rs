//! Minimal hexadecimal encoding/decoding helpers used in tests and
//! diagnostics.
//!
//! # Examples
//!
//! ```
//! assert_eq!(drum_crypto::hex::encode(&[0xde, 0xad]), "dead");
//! assert_eq!(drum_crypto::hex::decode("dead").unwrap(), vec![0xde, 0xad]);
//! ```

/// Encodes bytes as a lowercase hexadecimal string.
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Error returned by [`decode`] for malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// Input length was odd.
    OddLength,
    /// A character was not a hexadecimal digit; carries its byte offset.
    InvalidDigit(usize),
}

impl core::fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeHexError::OddLength => write!(f, "hex string has odd length"),
            DecodeHexError::InvalidDigit(i) => write!(f, "invalid hex digit at offset {i}"),
        }
    }
}

impl std::error::Error for DecodeHexError {}

/// Decodes a hexadecimal string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the input has odd length or contains a
/// non-hexadecimal character.
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength);
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        let hi = (bytes[i] as char)
            .to_digit(16)
            .ok_or(DecodeHexError::InvalidDigit(i))?;
        let lo = (bytes[i + 1] as char)
            .to_digit(16)
            .ok_or(DecodeHexError::InvalidDigit(i + 1))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEAD").unwrap(), vec![0xde, 0xad]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength));
    }

    #[test]
    fn invalid_digit_rejected() {
        assert_eq!(decode("zz"), Err(DecodeHexError::InvalidDigit(0)));
        assert_eq!(decode("aazz"), Err(DecodeHexError::InvalidDigit(2)));
    }

    #[test]
    fn error_display() {
        assert!(DecodeHexError::OddLength.to_string().contains("odd"));
        assert!(DecodeHexError::InvalidDigit(3).to_string().contains('3'));
    }
}
