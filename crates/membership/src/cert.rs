//! Membership certificates (§10.1 of the paper).
//!
//! A process joins the group by obtaining a timestamped certificate from
//! the certification authority (CA). Certificates expire and must be
//! renewed; the CA can also revoke them. The signature is an HMAC under
//! the CA's key — the symmetric stand-in for the paper's CA signatures
//! (see `DESIGN.md`).

use drum_core::ids::ProcessId;
use drum_crypto::hmac::{verify_tag, HmacKey};
use drum_crypto::keys::SecretKey;

/// Logical wall-clock timestamp (seconds). The membership layer never reads
/// real time; callers supply a clock so tests and simulations are
/// deterministic.
pub type Timestamp = u64;

/// A certificate binding a process id to group membership for a validity
/// window, signed by the CA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The certified process.
    pub subject: ProcessId,
    /// Monotonic serial number assigned by the CA (revocation handle).
    pub serial: u64,
    /// Start of validity.
    pub issued_at: Timestamp,
    /// End of validity (exclusive).
    pub expires_at: Timestamp,
    /// HMAC over the fields above, under the CA key.
    pub signature: [u8; 32],
}

impl Certificate {
    /// The CA signature over `(subject, serial, issued_at, expires_at)`,
    /// streamed through a precomputed key schedule with no intermediate
    /// buffer.
    pub(crate) fn signature_over(
        ca_key: &HmacKey,
        subject: ProcessId,
        serial: u64,
        issued_at: Timestamp,
        expires_at: Timestamp,
    ) -> [u8; 32] {
        ca_key.mac_parts(&[
            b"drum.mem.cert",
            &subject.as_u64().to_be_bytes(),
            &serial.to_be_bytes(),
            &issued_at.to_be_bytes(),
            &expires_at.to_be_bytes(),
        ])
    }

    /// Whether the certificate is within its validity window at `now`.
    pub fn is_current(&self, now: Timestamp) -> bool {
        self.issued_at <= now && now < self.expires_at
    }

    /// Verifies the CA signature (does **not** check expiry or revocation —
    /// see [`crate::database::MembershipDb::apply`] for the full pipeline).
    ///
    /// Derives the key schedule on every call; verifiers that process many
    /// certificates should cache it and use [`Certificate::verify_with`].
    pub fn verify(&self, ca_key: &SecretKey) -> bool {
        self.verify_with(&ca_key.hmac_key())
    }

    /// Verifies the CA signature against a precomputed key schedule (see
    /// [`SecretKey::hmac_key`]).
    pub fn verify_with(&self, ca_key: &HmacKey) -> bool {
        let expected = Self::signature_over(
            ca_key,
            self.subject,
            self.serial,
            self.issued_at,
            self.expires_at,
        );
        verify_tag(&expected, &self.signature)
    }

    /// Compact binary encoding (for piggybacking on gossip messages).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * 4 + 32);
        out.extend_from_slice(&self.subject.as_u64().to_be_bytes());
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.extend_from_slice(&self.issued_at.to_be_bytes());
        out.extend_from_slice(&self.expires_at.to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Decodes a certificate from [`Certificate::encode`]'s format.
    ///
    /// # Errors
    ///
    /// Returns [`CertDecodeError`] if the buffer has the wrong length.
    pub fn decode(bytes: &[u8]) -> Result<Self, CertDecodeError> {
        if bytes.len() != 8 * 4 + 32 {
            return Err(CertDecodeError { len: bytes.len() });
        }
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i..i + 8]);
            u64::from_be_bytes(b)
        };
        let mut signature = [0u8; 32];
        signature.copy_from_slice(&bytes[32..64]);
        Ok(Certificate {
            subject: ProcessId(u64_at(0)),
            serial: u64_at(8),
            issued_at: u64_at(16),
            expires_at: u64_at(24),
            signature,
        })
    }
}

/// Error decoding a [`Certificate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertDecodeError {
    /// The (wrong) buffer length encountered.
    pub len: usize,
}

impl core::fmt::Display for CertDecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "certificate buffer has wrong length {}", self.len)
    }
}

impl std::error::Error for CertDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca_key() -> SecretKey {
        SecretKey::from_bytes([9u8; 32])
    }

    fn make_cert(subject: u64, serial: u64, issued: u64, expires: u64) -> Certificate {
        let sig = Certificate::signature_over(
            &ca_key().hmac_key(),
            ProcessId(subject),
            serial,
            issued,
            expires,
        );
        Certificate {
            subject: ProcessId(subject),
            serial,
            issued_at: issued,
            expires_at: expires,
            signature: sig,
        }
    }

    #[test]
    fn verify_valid_cert() {
        let cert = make_cert(1, 1, 100, 200);
        assert!(cert.verify(&ca_key()));
    }

    #[test]
    fn verify_rejects_tampered_fields() {
        let mut cert = make_cert(1, 1, 100, 200);
        cert.expires_at = 10_000; // extend own validity
        assert!(!cert.verify(&ca_key()));

        let mut cert = make_cert(1, 1, 100, 200);
        cert.subject = ProcessId(2); // steal identity
        assert!(!cert.verify(&ca_key()));
    }

    #[test]
    fn verify_rejects_wrong_ca() {
        let cert = make_cert(1, 1, 100, 200);
        assert!(!cert.verify(&SecretKey::from_bytes([1u8; 32])));
    }

    #[test]
    fn validity_window() {
        let cert = make_cert(1, 1, 100, 200);
        assert!(!cert.is_current(99));
        assert!(cert.is_current(100));
        assert!(cert.is_current(199));
        assert!(!cert.is_current(200));
    }

    #[test]
    fn encode_decode_round_trip() {
        let cert = make_cert(7, 42, 5, 500);
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(cert, decoded);
        assert!(decoded.verify(&ca_key()));
    }

    #[test]
    fn decode_rejects_bad_length() {
        assert_eq!(
            Certificate::decode(&[0u8; 10]),
            Err(CertDecodeError { len: 10 })
        );
        assert!(CertDecodeError { len: 10 }.to_string().contains("10"));
    }
}
