//! Pluggable adversary strategies (extension beyond the paper).
//!
//! The paper's adversary is a *static* flood: a fixed set of attacked
//! processes each receives `x` fabricated messages per round, split across
//! the protocol's channels (§5). Drum's resource-bound argument is only
//! convincing if it also survives adversaries that *adapt* — that chase
//! targets, concentrate their budget, or game a specific channel instead
//! of flooding blindly. This module makes the adversary a pluggable
//! strategy behind the [`AdversaryStrategy`] trait; the simulation model
//! consults it once per round for (a) the attacked set and (b) the
//! per-target per-channel fabrication rates.
//!
//! Determinism contract: a strategy's only entropy source is the `SmallRng`
//! handed to [`AdversaryStrategy::retarget`], and it must draw from it in a
//! fixed order — that keeps fixed-seed trials byte-identical across
//! `DRUM_POOL_THREADS` worker counts (the same recipe as the runner, see
//! `runner.rs`). [`AdversaryKind::Static`] draws nothing and reproduces the
//! pre-strategy RNG stream exactly, so all paper figures are unchanged.

use rand::rngs::SmallRng;

use drum_core::BitSet;

use crate::config::SimConfig;
use crate::sampling::sample_targets_any;

/// Which adversary strategy a scenario runs. `Copy` so [`crate::config::AttackConfig`]
/// stays `Copy` (accessors pattern-match it by value all over the model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdversaryKind {
    /// The paper's fixed (α, x) flood. The default; byte-identical to the
    /// pre-strategy model.
    #[default]
    Static,
    /// Re-acquires targets every `every` rounds, preferring correct
    /// processes that do *not* yet hold `M` — the frontier chase. `every`
    /// models how fast the adversary can track the victims' port rotation:
    /// `1` is instant re-acquisition (rotation buys the victims nothing),
    /// large values approach the static adversary.
    TargetChasing {
        /// Rounds between target re-acquisitions.
        every: u32,
    },
    /// Concentrates the entire group budget `B = x·attacked` on one victim
    /// (the source), trying to eclipse it from the group entirely.
    Eclipse,
    /// Routes the entire per-target budget to the pull channel as
    /// valid-looking pull-requests, exhausting the victim's reply budget
    /// (`F_in-pull` served requests per round) instead of splitting across
    /// channels.
    PullAbuse,
    /// Resends previously-authentic datagrams. At the acceptance-budget
    /// layer replays are indistinguishable from fabrications (they contend
    /// for the same slots before authentication runs), so the delivery
    /// dynamics match [`AdversaryKind::Static`]; the strategy exists here
    /// so the *crypto* cost of replay floods is measurable end-to-end —
    /// the batched verifier collapses identical replays to one MAC check
    /// (see `drum_crypto::batch`).
    Replay,
}

impl AdversaryKind {
    /// Every strategy, for CLI listings and test/figure sweeps.
    /// `TargetChasing` appears with its default cadence of 1.
    pub const ALL: [AdversaryKind; 5] = [
        AdversaryKind::Static,
        AdversaryKind::TargetChasing { every: 1 },
        AdversaryKind::Eclipse,
        AdversaryKind::PullAbuse,
        AdversaryKind::Replay,
    ];

    /// Stable name (used by traces, figures and the `DRUM_ADVERSARY` knob).
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::Static => "static",
            AdversaryKind::TargetChasing { .. } => "chase",
            AdversaryKind::Eclipse => "eclipse",
            AdversaryKind::PullAbuse => "pull-abuse",
            AdversaryKind::Replay => "replay",
        }
    }

    /// Parses a strategy name as used by `--adversary` and the
    /// `DRUM_ADVERSARY` environment knob. `chase` accepts an optional
    /// cadence suffix (`chase:4` = re-acquire every 4 rounds).
    pub fn parse(s: &str) -> Option<AdversaryKind> {
        match s {
            "static" => Some(AdversaryKind::Static),
            "chase" => Some(AdversaryKind::TargetChasing { every: 1 }),
            "eclipse" => Some(AdversaryKind::Eclipse),
            "pull-abuse" => Some(AdversaryKind::PullAbuse),
            "replay" => Some(AdversaryKind::Replay),
            other => {
                let every = other.strip_prefix("chase:")?.parse().ok()?;
                (every > 0).then_some(AdversaryKind::TargetChasing { every })
            }
        }
    }

    /// Reads the `DRUM_ADVERSARY` environment knob, if set and valid.
    pub fn from_env() -> Option<AdversaryKind> {
        Self::parse(&std::env::var("DRUM_ADVERSARY").ok()?)
    }

    /// Instantiates the strategy object the model consults each round.
    pub fn strategy(self) -> Box<dyn AdversaryStrategy> {
        match self {
            AdversaryKind::Static => Box::new(StaticFlood),
            AdversaryKind::TargetChasing { every } => Box::new(TargetChasing { every }),
            AdversaryKind::Eclipse => Box::new(Eclipse { placed: false }),
            AdversaryKind::PullAbuse => Box::new(PullAbuse),
            AdversaryKind::Replay => Box::new(ReplayFlood),
        }
    }
}

/// What a strategy may observe when (re)choosing targets. Everything here
/// is honest observable state: which processes exist and which already
/// hold `M` (an adversary watching traffic can infer the frontier).
#[derive(Debug)]
pub struct TargetView<'a> {
    /// Current round (1-based; `retarget` runs at the top of the round).
    pub round: u32,
    /// Configured attacked-set size `attacked` (the budget in targets).
    pub k: usize,
    /// Number of correct processes. Under the fixed role layout the
    /// correct processes are exactly ids `0..n_correct` (fixed for the
    /// trial), so a count replaces the old 8-bytes-per-member index list —
    /// part of the struct-of-arrays shrink that lets n = 10^6 trials stay
    /// cache-resident.
    pub n_correct: usize,
    /// Which processes currently hold `M`, indexed by process id.
    pub has_m: &'a BitSet,
}

/// A pluggable adversary. One instance lives per trial inside `SimState`.
pub trait AdversaryStrategy: core::fmt::Debug + Send + Sync {
    /// Stable strategy name (mirrors [`AdversaryKind::name`]).
    fn name(&self) -> &'static str;

    /// Called at the top of every round. Returning `true` replaces the
    /// attacked set with the *correct process ids* (in `0..view.n_correct`)
    /// written to `out`; returning `false` leaves targets unchanged (and
    /// must leave `out` untouched semantics-wise — the model ignores it).
    /// All randomness must come from `rng`, drawn in a fixed order.
    fn retarget(&mut self, view: &TargetView<'_>, rng: &mut SmallRng, out: &mut Vec<usize>)
        -> bool;

    /// Per-target per-round fabrication rates `(x_push, x_pull)` for this
    /// scenario. The static split is [`SimConfig::x_push`]/[`SimConfig::x_pull`].
    fn rates(&self, cfg: &SimConfig) -> (f64, f64);
}

/// The paper's adversary: fixed targets, protocol-split rates.
#[derive(Debug)]
pub struct StaticFlood;

impl AdversaryStrategy for StaticFlood {
    fn name(&self) -> &'static str {
        "static"
    }

    fn retarget(&mut self, _: &TargetView<'_>, _: &mut SmallRng, _: &mut Vec<usize>) -> bool {
        false
    }

    fn rates(&self, cfg: &SimConfig) -> (f64, f64) {
        (cfg.x_push(), cfg.x_pull())
    }
}

/// Frontier chase: every `every` rounds, retarget onto correct processes
/// that do not yet hold `M` (topping up with random holders when fewer
/// than `k` remain uninfected).
#[derive(Debug)]
pub struct TargetChasing {
    every: u32,
}

impl AdversaryStrategy for TargetChasing {
    fn name(&self) -> &'static str {
        "chase"
    }

    fn retarget(
        &mut self,
        view: &TargetView<'_>,
        rng: &mut SmallRng,
        out: &mut Vec<usize>,
    ) -> bool {
        if self.every == 0 || !view.round.is_multiple_of(self.every) {
            return false;
        }
        // Partition the correct ids: without-M first. Both sides keep
        // their ascending order so the RNG-consuming sample below is the
        // only nondeterminism.
        out.clear();
        let without: Vec<usize> = (0..view.n_correct)
            .filter(|&ci| !view.has_m.get(ci))
            .collect();
        if without.len() >= view.k {
            // Uniform k-subset of the frontier.
            let mut picks = Vec::new();
            sample_targets_any(without.len(), view.k, rng, &mut picks);
            out.extend(picks.into_iter().map(|p| without[p]));
        } else {
            // Chase everything uninfected, fill the rest from the holders.
            out.extend(without.iter().copied());
            let holders: Vec<usize> = (0..view.n_correct)
                .filter(|&ci| view.has_m.get(ci))
                .collect();
            let need = view.k.min(view.n_correct) - out.len();
            let mut picks = Vec::new();
            sample_targets_any(holders.len(), need, rng, &mut picks);
            out.extend(picks.into_iter().map(|p| holders[p]));
        }
        true
    }

    fn rates(&self, cfg: &SimConfig) -> (f64, f64) {
        (cfg.x_push(), cfg.x_pull())
    }
}

/// Whole-budget concentration on the source (correct index 0).
#[derive(Debug)]
pub struct Eclipse {
    placed: bool,
}

impl AdversaryStrategy for Eclipse {
    fn name(&self) -> &'static str {
        "eclipse"
    }

    fn retarget(
        &mut self,
        _view: &TargetView<'_>,
        _rng: &mut SmallRng,
        out: &mut Vec<usize>,
    ) -> bool {
        if self.placed {
            return false;
        }
        self.placed = true;
        out.clear();
        out.push(0); // the source is always correct index 0
        true
    }

    fn rates(&self, cfg: &SimConfig) -> (f64, f64) {
        // The whole group budget B = x·attacked lands on the one victim.
        let k = cfg.attacked().max(1) as f64;
        (cfg.x_push() * k, cfg.x_pull() * k)
    }
}

/// All-pull flood: the per-target budget ignores the protocol split and
/// lands entirely on the pull-request channel.
#[derive(Debug)]
pub struct PullAbuse;

impl AdversaryStrategy for PullAbuse {
    fn name(&self) -> &'static str {
        "pull-abuse"
    }

    fn retarget(&mut self, _: &TargetView<'_>, _: &mut SmallRng, _: &mut Vec<usize>) -> bool {
        false
    }

    fn rates(&self, cfg: &SimConfig) -> (f64, f64) {
        (0.0, cfg.x_rate())
    }
}

/// Replay flood: static targeting and rates; see [`AdversaryKind::Replay`]
/// for why the abstract model treats replays like fabrications.
#[derive(Debug)]
pub struct ReplayFlood;

impl AdversaryStrategy for ReplayFlood {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn retarget(&mut self, _: &TargetView<'_>, _: &mut SmallRng, _: &mut Vec<usize>) -> bool {
        false
    }

    fn rates(&self, cfg: &SimConfig) -> (f64, f64) {
        (cfg.x_push(), cfg.x_pull())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drum_core::ProtocolVariant;
    use rand::SeedableRng;

    #[test]
    fn parse_round_trips_every_kind() {
        for kind in AdversaryKind::ALL {
            assert_eq!(AdversaryKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            AdversaryKind::parse("chase:4"),
            Some(AdversaryKind::TargetChasing { every: 4 })
        );
        assert_eq!(AdversaryKind::parse("chase:0"), None);
        assert_eq!(AdversaryKind::parse("nonsense"), None);
    }

    #[test]
    fn static_strategy_preserves_paper_rates() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
        let s = AdversaryKind::Static.strategy();
        assert_eq!(s.rates(&cfg), (64.0, 64.0));
    }

    #[test]
    fn eclipse_concentrates_the_group_budget() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
        let mut s = AdversaryKind::Eclipse.strategy();
        // 12 attacked × x/2 per channel → 768 per channel on the one victim.
        assert_eq!(s.rates(&cfg), (768.0, 768.0));
        let mut rng = SmallRng::seed_from_u64(1);
        let has_m = BitSet::new(120);
        let view = TargetView {
            round: 1,
            k: 12,
            n_correct: 108,
            has_m: &has_m,
        };
        let mut out = Vec::new();
        assert!(s.retarget(&view, &mut rng, &mut out));
        assert_eq!(out, vec![0]);
        // Placement is one-shot.
        assert!(!s.retarget(&view, &mut rng, &mut out));
    }

    #[test]
    fn pull_abuse_reroutes_the_whole_budget() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
        let s = AdversaryKind::PullAbuse.strategy();
        assert_eq!(s.rates(&cfg), (0.0, 128.0));
    }

    #[test]
    fn chase_prefers_uninfected_targets() {
        let mut s = AdversaryKind::TargetChasing { every: 1 }.strategy();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut has_m = BitSet::new(20);
        // 17 of 20 already hold M; only 3 are frontier.
        for i in 0..17 {
            has_m.set(i);
        }
        let view = TargetView {
            round: 1,
            k: 5,
            n_correct: 20,
            has_m: &has_m,
        };
        let mut out = Vec::new();
        assert!(s.retarget(&view, &mut rng, &mut out));
        assert_eq!(out.len(), 5);
        // All 3 frontier processes must be chased.
        for frontier in [17usize, 18, 19] {
            assert!(out.contains(&frontier), "missing frontier {frontier}");
        }
    }

    #[test]
    fn chase_cadence_is_respected() {
        let mut s = AdversaryKind::TargetChasing { every: 3 }.strategy();
        let mut rng = SmallRng::seed_from_u64(7);
        let has_m = BitSet::new(10);
        let mut out = Vec::new();
        for round in 1..=6 {
            let view = TargetView {
                round,
                k: 2,
                n_correct: 10,
                has_m: &has_m,
            };
            let fired = s.retarget(&view, &mut rng, &mut out);
            assert_eq!(fired, round % 3 == 0, "round {round}");
        }
    }
}
