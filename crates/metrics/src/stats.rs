//! Streaming summary statistics.
//!
//! Used throughout the evaluation harness to aggregate per-trial propagation
//! times (Figures 2–9) and per-process latencies (Figures 10–11) without
//! retaining every sample.

use crate::json::{Json, JsonError};

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use drum_metrics::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); `0.0` for fewer than 2 samples.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); `0.0` for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Serializes the accumulator state as a JSON object.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("count".into(), Json::num(self.count as f64)),
            ("mean".into(), Json::num(self.mean)),
            ("m2".into(), Json::num(self.m2)),
            ("min".into(), Json::num(self.min)),
            ("max".into(), Json::num(self.max)),
        ])
        .to_string()
    }

    /// Restores an accumulator from [`RunningStats::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or missing fields.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        Ok(RunningStats {
            count: v.field_u64("count")?,
            mean: v.field_f64("mean")?,
            m2: v.field_f64("m2")?,
            min: v.field_f64("min")?,
            max: v.field_f64("max")?,
        })
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation.
///
/// The input slice is sorted in place.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the slice is empty.
pub fn quantile_in_place(samples: &mut [f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    assert!(!samples.is_empty(), "quantile of empty sample");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let pos = q * (samples.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        samples[lo]
    } else {
        let frac = pos - lo as f64;
        samples[lo] * (1.0 - frac) + samples[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn single_sample() {
        let s: RunningStats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_std(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn known_variance() {
        let s: RunningStats = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.mean(), 3.0);
        assert!((s.population_variance() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: RunningStats = data.iter().copied().collect();
        let mut a: RunningStats = data[..37].iter().copied().collect();
        let b: RunningStats = data[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile_in_place(&mut v, 0.0), 1.0);
        assert_eq!(quantile_in_place(&mut v, 1.0), 5.0);
        assert_eq!(quantile_in_place(&mut v, 0.5), 3.0);
        assert_eq!(quantile_in_place(&mut v, 0.25), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let mut v = vec![0.0, 10.0];
        assert_eq!(quantile_in_place(&mut v, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_q() {
        let mut v = vec![1.0];
        quantile_in_place(&mut v, 1.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let mut v: Vec<f64> = vec![];
        quantile_in_place(&mut v, 0.5);
    }
}
