#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test and stay formatted
# with no network access and no crates.io dependencies.
#
# Usage:
#   scripts/verify.sh           # full pipeline (CI runs this)
#   scripts/verify.sh --quick   # build + unit tests only
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *)
            echo "usage: $0 [--quick]" >&2
            exit 2
            ;;
    esac
done

PHASE_START=0
phase_begin() {
    PHASE_START=$SECONDS
    echo "==> $1"
}
phase_end() {
    echo "    (${1}: $((SECONDS - PHASE_START))s)"
}

phase_begin "cargo build --release --offline"
cargo build --release --offline
phase_end "build"

phase_begin "cargo test -q --offline"
cargo test -q --offline
phase_end "test"

# The crypto suite again with the 8-lane SHA-256 kernel ablated away:
# every multiway MAC must stay bit- and counter-identical on the forced
# single-block path (§20). Cheap (sub-second) and on the quick path so a
# lane-kernel divergence can't hide behind a SIMD-only dev machine.
phase_begin "cargo test -p drum-crypto (DRUM_CRYPTO_NO_SIMD=1)"
DRUM_CRYPTO_NO_SIMD=1 cargo test -q --offline -p drum-crypto
phase_end "no-simd"

# One adaptive-adversary scenario end to end (the eclipse strategy against
# Drum, §17) and the exact machine-independent crypto gates: batched
# verification (HMACs/datagram) and the multiway kernel
# (compress-calls/block) — cheap enough to keep on the quick path.
phase_begin "adaptive-adversary + batched-auth + multiway smoke"
cargo run --release --offline -q -p drum-lab -- simulate \
    --protocol drum --n 80 --adversary eclipse --x 64 --trials 20
# --out to a throwaway path: the default would overwrite the checked-in
# full-mode BENCH_hotpath.json with a two-bench quick run.
BENCH_OUT="$(mktemp)"
cargo run --release --offline -q -p drum-bench --bin hotpath -- \
    --quick --only mac_verify_flood_512,mac_multiway_flood_512 --out "$BENCH_OUT"
rm -f "$BENCH_OUT"
phase_end "smoke"

# The sharded-stepper scale figure end to end at Smoke sizing: exercises
# the intra-trial shard/merge path plus the figure plumbing without the
# full figure sweep (which stays on the non-quick path below).
phase_begin "drum-lab figures --only ext_scale (smoke)"
SCALE_OUT="$(mktemp -d)"
cargo run --release --offline -q -p drum-lab -- figures \
    --quick --only ext_scale --out "$SCALE_OUT"
rm -rf "$SCALE_OUT"
phase_end "ext_scale"

# The sustained-throughput soak at Smoke sizing (~2s of cluster time):
# paced stream, flood toggled mid-run, MTU-packed frames, buffer
# high-water and backpressure accounting — the §19 plumbing end to end.
phase_begin "drum-lab figures --only ext_soak (smoke)"
SOAK_OUT="$(mktemp -d)"
cargo run --release --offline -q -p drum-lab -- figures \
    --quick --only ext_soak --out "$SOAK_OUT"
rm -rf "$SOAK_OUT"
phase_end "ext_soak"

if [ "$QUICK" -eq 1 ]; then
    echo "==> verify --quick: all green (total $((SECONDS))s)"
    exit 0
fi

phase_begin "cargo build --offline --benches --features criterion"
cargo build --offline --benches --features criterion
phase_end "benches"

# A 64-engine live-UDP cluster on ONE shard: every engine's sockets are
# multiplexed into a single epoll event loop, exercising the timer wheel
# and tagged dispatch far past what unit tests cover.
phase_begin "drum-lab cluster --shards 1 (64 engines, one event loop)"
cargo run --release --offline -q -p drum-lab -- cluster \
    --n 64 --shards 1 --attacked 6 --x 32 --messages 12 --rate 30 --round-ms 50
phase_end "cluster"

# Smoke-regenerate every figure through the shared worker pool; writes to
# a throwaway directory, so checked-in results/ stay untouched.
phase_begin "drum-lab figures --quick"
FIG_OUT="$(mktemp -d)"
cargo run --release --offline -q -p drum-lab -- figures --quick --out "$FIG_OUT"
rm -rf "$FIG_OUT"
phase_end "figures"

phase_begin "cargo fmt --check"
cargo fmt --check
phase_end "fmt"

echo "==> verify: all green (total $((SECONDS))s)"
