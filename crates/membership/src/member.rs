//! The §10 layering, assembled: one group member = a gossip [`Engine`] +
//! a [`MembershipDb`] + a [`FailureDetector`] + its own certificate.
//!
//! Membership events travel as ordinary multicast payloads ("the dynamic
//! membership protocol operates using Drum's multicast protocol as its
//! transport layer"), so a [`GroupMember`] frames every payload with one
//! tag byte: application data or membership event. Certificates are
//! re-advertised periodically ("each process piggybacks its certificate
//! ... if it hasn't done so for a relatively long period"), the local view
//! follows the database, and failure-detector suspicions gate partner
//! selection without ever touching membership.

use drum_core::bytes::{Bytes, BytesMut};

use drum_core::config::GossipConfig;
use drum_core::engine::{Engine, Outbound, PortOracle};
use drum_core::ids::{MessageId, ProcessId};

use crate::ca::{CaError, CertificateAuthority};
use crate::cert::{Certificate, Timestamp};
use crate::database::MembershipDb;
use crate::events::MembershipEvent;
use crate::failure_detector::FailureDetector;

const TAG_APP: u8 = 0;
const TAG_MEMBERSHIP: u8 = 1;

/// Tunables of a [`GroupMember`].
#[derive(Debug, Clone, Copy)]
pub struct GroupMemberConfig {
    /// Re-advertise the own certificate every this many time units.
    pub refresh_interval: u64,
    /// Start signalling [`GroupMember::needs_renewal`] this long before
    /// the certificate expires.
    pub renewal_margin: u64,
    /// Consecutive unanswered probes before a peer is locally suspected.
    pub suspect_after: u32,
}

impl Default for GroupMemberConfig {
    fn default() -> Self {
        GroupMemberConfig {
            refresh_interval: 600,
            renewal_margin: 300,
            suspect_after: 3,
        }
    }
}

/// What a round delivered to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppDelivery {
    /// Message identity (source + sequence).
    pub id: MessageId,
    /// The unframed application payload.
    pub payload: Bytes,
}

/// A fully assembled group member.
pub struct GroupMember {
    engine: Engine,
    db: MembershipDb,
    fd: FailureDetector,
    cert: Certificate,
    config: GroupMemberConfig,
    last_refresh: Timestamp,
}

impl core::fmt::Debug for GroupMember {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GroupMember")
            .field("me", &self.engine.me())
            .field("members", &self.db.len())
            .finish_non_exhaustive()
    }
}

impl GroupMember {
    /// Joins the group through the CA: obtains a certificate, bootstraps
    /// the membership view from the CA's list, and assembles the stack.
    ///
    /// # Errors
    ///
    /// Propagates [`CaError`] from the admission.
    pub fn join(
        ca: &CertificateAuthority,
        me: ProcessId,
        now: Timestamp,
        validity: u64,
        gossip: GossipConfig,
        member_config: GroupMemberConfig,
        seed: u64,
    ) -> Result<Self, CaError> {
        let cert = ca.join(me, now, validity)?;
        let mut db = MembershipDb::new(me, ca.verification_key());
        db.bootstrap(ca.member_list(None), now);
        let my_key = ca
            .key_store()
            .key_of(me.as_u64())
            .expect("join registered our key");
        let engine = Engine::new(
            gossip,
            db.gossip_view(),
            ca.key_store().clone(),
            my_key,
            seed,
        );
        Ok(GroupMember {
            engine,
            db,
            fd: FailureDetector::new(member_config.suspect_after),
            cert,
            config: member_config,
            last_refresh: now,
        })
    }

    /// This member's id.
    pub fn me(&self) -> ProcessId {
        self.engine.me()
    }

    /// The current certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// The membership database.
    pub fn db(&self) -> &MembershipDb {
        &self.db
    }

    /// The underlying engine (read access).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The failure detector.
    pub fn failure_detector(&mut self) -> &mut FailureDetector {
        &mut self.fd
    }

    /// Whether the certificate should be renewed soon.
    pub fn needs_renewal(&self, now: Timestamp) -> bool {
        now + self.config.renewal_margin >= self.cert.expires_at
    }

    /// Installs a renewed certificate (obtained from the CA by the caller)
    /// and gossips the refresh.
    pub fn install_renewal(&mut self, cert: Certificate, now: Timestamp) {
        self.cert = cert.clone();
        self.announce(MembershipEvent::Refresh(cert), now);
    }

    /// Multicasts an application payload; returns its message id.
    pub fn multicast(&mut self, payload: &[u8]) -> MessageId {
        let mut framed = BytesMut::with_capacity(payload.len() + 1);
        framed.put_u8(TAG_APP);
        framed.put_slice(payload);
        self.engine.publish(framed.freeze())
    }

    /// Originates a membership event: applied locally and multicast.
    pub fn announce(&mut self, event: MembershipEvent, now: Timestamp) {
        let _ = self.db.apply(&event, now);
        let encoded = event.encode();
        let mut framed = BytesMut::with_capacity(encoded.len() + 1);
        framed.put_u8(TAG_MEMBERSHIP);
        framed.put_slice(&encoded);
        self.engine.publish(framed.freeze());
    }

    /// Starts a local round: expires stale certificates, syncs the gossip
    /// view to the database (minus suspected peers), re-advertises the own
    /// certificate when due, and returns the round's gossip messages.
    pub fn begin_round<O: PortOracle>(&mut self, now: Timestamp, oracle: &mut O) -> Vec<Outbound> {
        self.db.expire(now);
        for suspect in self.fd.suspects() {
            self.db.suspect(suspect);
        }
        let view = self.db.gossip_view();
        *self.engine.membership_mut() = view;

        if now.saturating_sub(self.last_refresh) >= self.config.refresh_interval {
            self.last_refresh = now;
            let cert = self.cert.clone();
            self.announce(MembershipEvent::Refresh(cert), now);
        }

        self.engine.begin_round(oracle)
    }

    /// Handles an incoming gossip message. Any sign of life clears the
    /// sender's failure-detector state.
    pub fn handle<O: PortOracle>(
        &mut self,
        msg: drum_core::message::GossipMessage,
        oracle: &mut O,
    ) -> Vec<Outbound> {
        let from = msg.from();
        if self.db.contains(from) {
            self.fd.heard_from(from);
            self.db.unsuspect(from);
        }
        self.engine.handle(msg, oracle)
    }

    /// Ends the round: unframes deliveries, feeds membership events into
    /// the database, and returns application payloads.
    pub fn end_round(&mut self, now: Timestamp) -> Vec<AppDelivery> {
        let mut out = Vec::new();
        for msg in self.engine.take_delivered() {
            match msg.payload.split_first() {
                Some((&TAG_APP, rest)) => out.push(AppDelivery {
                    id: msg.id,
                    payload: Bytes::copy_from_slice(rest),
                }),
                Some((&TAG_MEMBERSHIP, rest)) => {
                    if let Ok(event) = MembershipEvent::decode(rest) {
                        let _ = self.db.apply(&event, now);
                    }
                }
                _ => {} // unframed/garbage payloads are dropped
            }
        }
        self.engine.end_round();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drum_core::engine::CountingPortOracle;
    use drum_crypto::keys::KeyStore;

    fn group(n: u64) -> (CertificateAuthority, Vec<GroupMember>) {
        let ca = CertificateAuthority::new([6u8; 32], KeyStore::new(31));
        // All join first so the bootstrap lists are complete...
        for id in 0..n {
            ca.join(ProcessId(id), 0, 10_000).unwrap();
        }
        // ...then assemble members that share the CA's key store. The CA
        // rejects double-joins, so assemble from the existing state.
        let members: Vec<GroupMember> = (0..n)
            .map(|id| {
                let mut db = MembershipDb::new(ProcessId(id), ca.verification_key());
                db.bootstrap(ca.member_list(None), 0);
                let key = ca.key_store().key_of(id).unwrap();
                let engine = Engine::new(
                    GossipConfig::drum(),
                    db.gossip_view(),
                    ca.key_store().clone(),
                    key,
                    id + 400,
                );
                let cert = db.certificate_of(ProcessId(id)).unwrap().clone();
                GroupMember {
                    engine,
                    db,
                    fd: FailureDetector::new(3),
                    cert,
                    config: GroupMemberConfig::default(),
                    last_refresh: 0,
                }
            })
            .collect();
        (ca, members)
    }

    fn run_rounds(
        members: &mut [GroupMember],
        rounds: usize,
        now: Timestamp,
    ) -> Vec<Vec<AppDelivery>> {
        let mut oracle = CountingPortOracle::default();
        let mut all: Vec<Vec<AppDelivery>> = vec![Vec::new(); members.len()];
        for _ in 0..rounds {
            let mut inflight = Vec::new();
            for m in members.iter_mut() {
                inflight.extend(m.begin_round(now, &mut oracle));
            }
            while !inflight.is_empty() {
                let mut next = Vec::new();
                for out in inflight {
                    let idx = out.to.as_u64() as usize;
                    // Members without a running process (e.g. a newly
                    // announced joiner) silently drop traffic, like a
                    // crashed process would.
                    if idx < members.len() {
                        next.extend(members[idx].handle(out.msg, &mut oracle));
                    }
                }
                inflight = next;
            }
            for (m, sink) in members.iter_mut().zip(all.iter_mut()) {
                sink.extend(m.end_round(now));
            }
        }
        all
    }

    #[test]
    fn join_via_ca_builds_consistent_member() {
        let ca = CertificateAuthority::new([6u8; 32], KeyStore::new(31));
        ca.join(ProcessId(1), 0, 1000).unwrap();
        let member = GroupMember::join(
            &ca,
            ProcessId(0),
            0,
            1000,
            GossipConfig::drum(),
            GroupMemberConfig::default(),
            7,
        )
        .unwrap();
        assert_eq!(member.me(), ProcessId(0));
        assert!(member.db().contains(ProcessId(1)));
        assert!(member.certificate().is_current(500));
        assert!(!member.needs_renewal(0));
        assert!(member.needs_renewal(800));
    }

    #[test]
    fn app_payloads_round_trip_through_framing() {
        let (_, mut members) = group(5);
        members[0].multicast(b"application data");
        let deliveries = run_rounds(&mut members, 8, 1);
        for (i, d) in deliveries.iter().enumerate().skip(1) {
            assert_eq!(d.len(), 1, "member {i} deliveries");
            assert_eq!(d[0].payload.as_ref(), b"application data");
            assert_eq!(d[0].id.source, ProcessId(0));
        }
    }

    #[test]
    fn membership_events_update_all_databases() {
        let (ca, mut members) = group(5);
        let cert = ca.join(ProcessId(50), 1, 10_000).unwrap();
        members[2].announce(MembershipEvent::Join(cert), 1);
        run_rounds(&mut members, 8, 1);
        for m in &members {
            assert!(
                m.db().contains(ProcessId(50)),
                "{:?} missing the join",
                m.me()
            );
        }
    }

    #[test]
    fn renewal_flow() {
        let (ca, mut members) = group(3);
        let renewed = ca.renew(ProcessId(0), 9_000, 20_000).unwrap();
        members[0].install_renewal(renewed.clone(), 9_000);
        run_rounds(&mut members, 6, 9_001);
        for m in &members {
            assert_eq!(
                m.db().certificate_of(ProcessId(0)).unwrap().serial,
                renewed.serial,
                "{:?} did not learn the renewal",
                m.me()
            );
        }
    }

    #[test]
    fn suspected_peers_leave_the_gossip_view_only() {
        let (_, mut members) = group(4);
        for _ in 0..3 {
            members[0].failure_detector().probe_sent(ProcessId(2));
        }
        let mut oracle = CountingPortOracle::default();
        members[0].begin_round(1, &mut oracle);
        assert!(!members[0].engine().membership().contains(ProcessId(2)));
        assert!(members[0].db().contains(ProcessId(2)));
        // Hearing from the peer restores it next round.
        members[0].handle(
            drum_core::message::GossipMessage::PushOffer {
                from: ProcessId(2),
                reply_port: drum_core::message::PortRef::Plain(1),
                nonce: 0,
            },
            &mut oracle,
        );
        members[0].failure_detector().heard_from(ProcessId(2));
        members[0].end_round(1);
        members[0].begin_round(2, &mut oracle);
        assert!(members[0].engine().membership().contains(ProcessId(2)));
    }

    #[test]
    fn periodic_refresh_is_published() {
        let (_, mut members) = group(3);
        // Advance time past the refresh interval; the refresh gossips and
        // keeps member 0's cert fresh in everyone's database even after
        // expiring others' knowledge artificially.
        let mut oracle = CountingPortOracle::default();
        members[0].begin_round(700, &mut oracle); // triggers refresh publish
        members[0].end_round(700);
        // The refresh message is now in member 0's buffer awaiting gossip.
        assert!(!members[0].engine().buffer().is_empty());
    }

    #[test]
    fn garbage_frames_dropped() {
        let (_, mut members) = group(3);
        // Publish an unframed (raw) payload directly through the engine —
        // simulating a legacy/buggy sender inside the group.
        let raw = Bytes::from_static(&[42u8, 1, 2, 3]);
        // Hand-wire: put it in member 1's delivered queue via a publish on
        // member 1 and delivery on others; tag 42 is unknown.
        let mut framed = BytesMut::new();
        framed.put_u8(42);
        framed.put_slice(&raw);
        members[1].engine.publish(framed.freeze());
        let deliveries = run_rounds(&mut members, 6, 1);
        assert!(deliveries[0].is_empty());
        assert!(deliveries[2].is_empty());
    }
}
