//! §9: the other two DoS-mitigation measures, ablated.
//!
//! * **random ports** (Figure 12(a)) — disabling them lets the adversary
//!   split its pull budget across the request *and* reply ports, and
//!   Drum's propagation time becomes linear in the attack rate;
//! * **separate resource bounds** (Figure 12(b)) — sharing one bound
//!   across control channels lets a pull-port flood starve push-offers
//!   and push-replies.

use drum::core::bounds::{Channel, RoundBudget};
use drum::core::config::{BoundMode, GossipConfig, ProtocolVariant};
use drum::core::digest::Digest;
use drum::core::engine::{CountingPortOracle, Engine};
use drum::core::ids::ProcessId;
use drum::core::message::{GossipMessage, PortRef};
use drum::core::view::Membership;
use drum::crypto::keys::KeyStore;
use drum::sim::config::SimConfig;
use drum::sim::runner::run_experiment;

const TRIALS: usize = 60;
const N: usize = 120;

#[test]
fn fig12a_random_ports_flat_well_known_linear() {
    let mean = |random_ports: bool, x: f64| {
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, N, x);
        cfg.random_ports = random_ports;
        cfg.max_rounds = 2000;
        run_experiment(&cfg, TRIALS, 11, 0).mean_rounds()
    };

    // With random ports: flat in x.
    let with_weak = mean(true, 64.0);
    let with_strong = mean(true, 512.0);
    assert!(
        with_strong < with_weak + 3.0,
        "random-ports Drum should be flat: {with_weak:.1} -> {with_strong:.1}"
    );

    // Without: grows clearly with x.
    let wo_weak = mean(false, 64.0);
    let wo_strong = mean(false, 512.0);
    assert!(
        wo_strong > wo_weak * 1.5,
        "well-known-ports Drum should degrade: {wo_weak:.1} -> {wo_strong:.1}"
    );

    // And the ablated variant is strictly worse at high x.
    assert!(wo_strong > with_strong * 1.5);
}

#[test]
fn fig12b_shared_bounds_starve_control_channels() {
    // Unit-level reproduction of the §9 mechanism: under SharedControl,
    // fabricated pull-requests exhaust the joint budget and push-offers
    // get dropped; under Separate they never can.
    let mut shared =
        RoundBudget::for_config(&GossipConfig::drum().with_bound_mode(BoundMode::SharedControl));
    let mut separate = RoundBudget::for_config(&GossipConfig::drum());

    // The flood: 100 fabricated pull-requests arrive first.
    let mut shared_accepted_fakes = 0;
    let mut separate_accepted_fakes = 0;
    for _ in 0..100 {
        if shared.try_accept(Channel::PullRequest) {
            shared_accepted_fakes += 1;
        }
        if separate.try_accept(Channel::PullRequest) {
            separate_accepted_fakes += 1;
        }
    }
    assert!(shared_accepted_fakes > separate_accepted_fakes);

    // Now a legitimate push-offer arrives.
    assert!(
        !shared.try_accept(Channel::PushOffer),
        "shared bound should be exhausted by the pull flood"
    );
    assert!(
        separate.try_accept(Channel::PushOffer),
        "separate push budget must be unaffected by the pull flood"
    );
}

#[test]
fn fig12b_engine_level_shared_bounds_drop_offers_under_flood() {
    let store = KeyStore::new(3);
    let members: Vec<ProcessId> = (0..4).map(ProcessId).collect();
    for m in &members {
        store.register(m.as_u64());
    }

    let run = |mode: BoundMode| {
        let key = store.key_of(0).unwrap();
        let mut engine = Engine::new(
            GossipConfig::drum().with_bound_mode(mode),
            Membership::new(ProcessId(0), members.clone()),
            store.clone(),
            key,
            1,
        );
        let mut oracle = CountingPortOracle::default();
        engine.begin_round(&mut oracle);
        // Fabricated pull-request flood...
        for i in 0..50u64 {
            engine.handle(
                GossipMessage::PullRequest {
                    from: ProcessId(0xDEAD),
                    digest: Digest::new(),
                    reply_port: PortRef::Plain(1),
                    nonce: i,
                },
                &mut oracle,
            );
        }
        // ...then a legitimate push-offer.
        let responses = engine.handle(
            GossipMessage::PushOffer {
                from: ProcessId(1),
                reply_port: PortRef::Plain(2),
                nonce: 0,
            },
            &mut oracle,
        );
        responses.len()
    };

    assert_eq!(
        run(BoundMode::Separate),
        1,
        "separate bounds must answer the offer"
    );
    assert_eq!(
        run(BoundMode::SharedControl),
        0,
        "shared bounds must be starved"
    );
}

#[test]
fn fig12a_random_ports_ablation_on_real_udp() {
    // The same ablation end-to-end on UDP: with random ports disabled the
    // engine advertises fixed reply ports, the cluster binds real sockets
    // for them, and the attacker splits its pull budget onto the
    // (now knowable) pull-reply port. Under a strong attack the ablated
    // variant loses deliveries that standard Drum gets through.
    use drum::net::experiment::{paper_cluster_config, throughput_experiment};
    use std::time::Duration;

    let run = |random_ports: bool| {
        let mut cfg = paper_cluster_config(
            ProtocolVariant::Drum,
            8,
            3,
            512.0,
            Duration::from_millis(40),
            17,
        );
        cfg.net.gossip = GossipConfig::drum().with_random_ports(random_ports);
        let report = throughput_experiment(cfg, 40, 80.0, 50, Duration::from_secs(3)).unwrap();
        // Total messages received by the attacked (non-source) receivers.
        report
            .receivers
            .iter()
            .filter(|r| r.attacked)
            .map(|r| r.received)
            .sum::<u64>()
    };

    let with_ports = run(true);
    let without = run(false);
    assert!(
        with_ports > without || with_ports >= 70,
        "random ports should protect attacked receivers: with={with_ports} without={without}"
    );
}

#[test]
fn push_pull_combination_is_the_third_pillar() {
    // Sanity cross-check of §5's main comparison at one strong data point:
    // Drum (push+pull) beats both single-method protocols under a focused
    // attack, with everything else (bounds, ports) identical.
    let rounds = |proto| {
        let mut cfg = SimConfig::paper_attack(proto, N, 256.0);
        cfg.max_rounds = 2000;
        run_experiment(&cfg, TRIALS, 12, 0).mean_rounds()
    };
    let drum = rounds(ProtocolVariant::Drum);
    let push = rounds(ProtocolVariant::Push);
    let pull = rounds(ProtocolVariant::Pull);
    assert!(drum * 2.0 < push, "drum {drum:.1} vs push {push:.1}");
    assert!(drum * 2.0 < pull, "drum {drum:.1} vs pull {pull:.1}");
}

#[test]
fn strict_split_bounds_cost_a_little_without_attack() {
    // §7.1 observes Push/Pull slightly outperform Drum in the failure-free
    // case because Drum's per-channel bounds are strict. Verify the gap
    // exists but is small.
    let mean = |proto| {
        let cfg = SimConfig::baseline(proto, N);
        run_experiment(&cfg, TRIALS, 13, 0).mean_rounds()
    };
    let drum = mean(ProtocolVariant::Drum);
    let push = mean(ProtocolVariant::Push);
    assert!(
        drum >= push - 0.5,
        "drum {drum:.1} should not beat push {push:.1} here"
    );
    assert!(
        drum < push + 4.0,
        "the strict-bounds penalty should be small"
    );
}
