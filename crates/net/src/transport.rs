//! UDP socket management: well-known ports, random ephemeral ports and the
//! process address book.
//!
//! Every logical process owns two *well-known* sockets (pull-requests and
//! push-offers, §4) plus a pool of short-lived *random* sockets allocated
//! round by round for pull-replies, push-replies and push data. The random
//! sockets are the OS-assigned ephemeral ports that give Drum its
//! unpredictability; each one is tagged with the purpose it was allocated
//! for, and the runtime drops datagrams whose kind does not match the
//! port's purpose — an attacker cannot spend a data-channel budget through
//! a well-known port.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::Arc;

use drum_core::engine::{PortOracle, PortPurpose};
use drum_core::ids::{ProcessId, Round};

/// Maps process ids to their well-known socket addresses (loopback).
///
/// Built once per cluster; cheap to clone (`Arc` inside).
#[derive(Debug, Clone)]
pub struct AddressBook {
    inner: Arc<HashMap<ProcessId, WellKnownAddrs>>,
}

/// The two well-known addresses of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WellKnownAddrs {
    /// Where pull-requests are received.
    pub pull: SocketAddr,
    /// Where push-offers are received.
    pub push: SocketAddr,
}

impl AddressBook {
    /// Builds a book from explicit entries.
    pub fn new(entries: impl IntoIterator<Item = (ProcessId, WellKnownAddrs)>) -> Self {
        AddressBook {
            inner: Arc::new(entries.into_iter().collect()),
        }
    }

    /// The well-known addresses of `p`, if registered.
    pub fn addrs_of(&self, p: ProcessId) -> Option<WellKnownAddrs> {
        self.inner.get(&p).copied()
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Loopback address for an explicit port (random-port replies).
    pub fn loopback(port: u16) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
    }
}

/// Binds a non-blocking UDP socket on an OS-assigned loopback port.
pub fn bind_ephemeral() -> io::Result<UdpSocket> {
    let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
    socket.set_nonblocking(true)?;
    Ok(socket)
}

/// Fixed reply/data socket addresses of one process — only used by the
/// no-random-ports ablation (Figure 12(a)), where the reply channels sit on
/// attacker-knowable ports instead of fresh random ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationAddrs {
    /// Fixed pull-reply port.
    pub pull_reply: SocketAddr,
    /// Fixed push-reply port.
    pub push_reply: SocketAddr,
    /// Fixed push-data port.
    pub push_data: SocketAddr,
}

/// The bound sockets behind [`AblationAddrs`].
#[derive(Debug)]
pub struct AblationSockets {
    /// Fixed pull-reply receiver.
    pub pull_reply: UdpSocket,
    /// Fixed push-reply receiver.
    pub push_reply: UdpSocket,
    /// Fixed push-data receiver.
    pub push_data: UdpSocket,
}

impl AblationSockets {
    /// Binds the three fixed reply sockets on ephemeral loopback ports.
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures.
    pub fn bind() -> io::Result<(Self, AblationAddrs)> {
        let pull_reply = bind_ephemeral()?;
        let push_reply = bind_ephemeral()?;
        let push_data = bind_ephemeral()?;
        let addrs = AblationAddrs {
            pull_reply: pull_reply.local_addr()?,
            push_reply: push_reply.local_addr()?,
            push_data: push_data.local_addr()?,
        };
        Ok((
            AblationSockets {
                pull_reply,
                push_reply,
                push_data,
            },
            addrs,
        ))
    }
}

/// The well-known socket pair of one process.
#[derive(Debug)]
pub struct WellKnownSockets {
    /// Pull-request receiver.
    pub pull: UdpSocket,
    /// Push-offer receiver.
    pub push: UdpSocket,
}

impl WellKnownSockets {
    /// Binds both sockets on ephemeral loopback ports.
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures.
    pub fn bind() -> io::Result<(Self, WellKnownAddrs)> {
        let pull = bind_ephemeral()?;
        let push = bind_ephemeral()?;
        let addrs = WellKnownAddrs {
            pull: pull.local_addr()?,
            push: push.local_addr()?,
        };
        Ok((WellKnownSockets { pull, push }, addrs))
    }
}

/// A pool of random-port sockets implementing [`PortOracle`].
///
/// Sockets expire after `lifetime` rounds ("this thread is terminated
/// after a few rounds", §4), bounding both file descriptors and the window
/// an attacker would have even if a port leaked.
#[derive(Debug)]
pub struct SocketPool {
    lifetime: u64,
    sockets: Vec<(UdpSocket, PortPurpose, Round)>,
    /// Sockets that failed to bind (diagnostics).
    bind_failures: u64,
    /// Optional observability counter bumped per fresh port allocation.
    rotations: Option<drum_trace::Counter>,
}

impl SocketPool {
    /// Creates a pool whose sockets live for `lifetime` rounds.
    pub fn new(lifetime: u64) -> Self {
        SocketPool {
            lifetime,
            sockets: Vec::new(),
            bind_failures: 0,
            rotations: None,
        }
    }

    /// Attaches a counter (typically `names::PORT_ROTATIONS` from a
    /// [`drum_trace::Registry`]) incremented on every fresh port bind.
    pub fn set_rotation_counter(&mut self, counter: drum_trace::Counter) {
        self.rotations = Some(counter);
    }

    /// Number of currently open random-port sockets.
    pub fn open_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Count of failed ephemeral binds.
    pub fn bind_failures(&self) -> u64 {
        self.bind_failures
    }

    /// Closes sockets allocated more than `lifetime` rounds ago.
    pub fn expire(&mut self, now: Round) {
        let lifetime = self.lifetime;
        self.sockets
            .retain(|(_, _, born)| now.since(*born) < lifetime);
    }

    /// Receives all pending datagrams from the pool, invoking
    /// `f(purpose, payload)` for each. Returns the number received.
    pub fn drain(&mut self, scratch: &mut [u8], mut f: impl FnMut(PortPurpose, &[u8])) -> usize {
        let mut count = 0;
        for (socket, purpose, _) in &self.sockets {
            loop {
                match socket.recv_from(scratch) {
                    Ok((len, _)) => {
                        count += 1;
                        f(*purpose, &scratch[..len]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        count
    }
}

impl PortOracle for SocketPool {
    fn allocate_port(&mut self, purpose: PortPurpose, round: Round) -> u16 {
        match bind_ephemeral() {
            Ok(socket) => {
                let port = socket.local_addr().map(|a| a.port()).unwrap_or(0);
                self.sockets.push((socket, purpose, round));
                if let Some(c) = &self.rotations {
                    c.inc();
                }
                port
            }
            Err(_) => {
                // Out of descriptors or ports: degrade by reusing the most
                // recent socket of the same purpose, or report port 0 (the
                // message will simply go unanswered — the gossip redundancy
                // absorbs it).
                self.bind_failures += 1;
                self.sockets
                    .iter()
                    .rev()
                    .find(|(_, p, _)| *p == purpose)
                    .and_then(|(s, _, _)| s.local_addr().ok())
                    .map(|a| a.port())
                    .unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_book_lookup() {
        let (_s, addrs) = WellKnownSockets::bind().unwrap();
        let book = AddressBook::new([(ProcessId(1), addrs)]);
        assert_eq!(book.addrs_of(ProcessId(1)), Some(addrs));
        assert_eq!(book.addrs_of(ProcessId(2)), None);
        assert_eq!(book.len(), 1);
        assert!(!book.is_empty());
    }

    #[test]
    fn well_known_sockets_have_distinct_ports() {
        let (_s, addrs) = WellKnownSockets::bind().unwrap();
        assert_ne!(addrs.pull.port(), addrs.push.port());
        assert!(addrs.pull.ip().is_loopback());
    }

    #[test]
    fn pool_allocates_distinct_ports() {
        let mut pool = SocketPool::new(3);
        let p1 = pool.allocate_port(PortPurpose::PullReply, Round(1));
        let p2 = pool.allocate_port(PortPurpose::PushReply, Round(1));
        assert_ne!(p1, 0);
        assert_ne!(p2, 0);
        assert_ne!(p1, p2);
        assert_eq!(pool.open_sockets(), 2);
    }

    #[test]
    fn pool_counts_port_rotations() {
        let reg = drum_trace::Registry::new();
        let mut pool = SocketPool::new(3);
        pool.set_rotation_counter(reg.counter(drum_trace::names::PORT_ROTATIONS));
        pool.allocate_port(PortPurpose::PullReply, Round(1));
        pool.allocate_port(PortPurpose::PushData, Round(1));
        assert_eq!(reg.counter(drum_trace::names::PORT_ROTATIONS).get(), 2);
    }

    #[test]
    fn pool_expires_old_sockets() {
        let mut pool = SocketPool::new(2);
        pool.allocate_port(PortPurpose::PullReply, Round(1));
        pool.allocate_port(PortPurpose::PullReply, Round(2));
        pool.expire(Round(3));
        assert_eq!(pool.open_sockets(), 1);
        pool.expire(Round(10));
        assert_eq!(pool.open_sockets(), 0);
    }

    #[test]
    fn pool_receives_datagrams_with_purpose() {
        let mut pool = SocketPool::new(3);
        let port = pool.allocate_port(PortPurpose::PushData, Round(1));
        let sender = bind_ephemeral().unwrap();
        sender
            .send_to(b"hello", AddressBook::loopback(port))
            .unwrap();
        // Give the loopback a moment.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut scratch = [0u8; 2048];
        let mut got = Vec::new();
        let n = pool.drain(&mut scratch, |purpose, bytes| {
            got.push((purpose, bytes.to_vec()));
        });
        assert_eq!(n, 1);
        assert_eq!(got[0].0, PortPurpose::PushData);
        assert_eq!(got[0].1, b"hello");
    }

    #[test]
    fn drain_on_empty_pool_is_zero() {
        let mut pool = SocketPool::new(3);
        let mut scratch = [0u8; 64];
        assert_eq!(
            pool.drain(&mut scratch, |_, _| panic!("no data expected")),
            0
        );
    }
}
