//! Source authentication of multicast data messages.
//!
//! Every data message in Drum originates at exactly one source, and the
//! paper requires that sources "can be identified using standard
//! cryptographic techniques". This module provides that service: a source
//! tags each message with `HMAC(K_src, source || seq || payload)` using its
//! registered key; any holder of the [`KeyStore`] (i.e. any honest group
//! member, via the PKI stand-in) can verify the tag, and the adversary
//! cannot forge it.

use crate::hmac::{hmac_sha256, verify_tag};
use crate::keys::{KeyStore, SecretKey, UnknownPeerError};

/// Length in bytes of an authentication tag.
pub const AUTH_TAG_LEN: usize = 32;

/// An unforgeable tag binding a payload to its source and sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthTag(pub [u8; AUTH_TAG_LEN]);

impl AuthTag {
    /// A tag of all zeros; convenient for tests of the rejection path.
    pub fn zero() -> Self {
        AuthTag([0u8; AUTH_TAG_LEN])
    }
}

/// Why verification of a message failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The claimed source has no registered key.
    UnknownSource(UnknownPeerError),
    /// The tag did not verify: forged or corrupted message.
    Forged,
}

impl core::fmt::Display for AuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuthError::UnknownSource(e) => write!(f, "unknown source: {e}"),
            AuthError::Forged => write!(f, "message authentication failed"),
        }
    }
}

impl std::error::Error for AuthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuthError::UnknownSource(e) => Some(e),
            AuthError::Forged => None,
        }
    }
}

fn tag_input(source: u64, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut data = Vec::with_capacity(13 + 16 + payload.len());
    data.extend_from_slice(b"drum.msg.auth");
    data.extend_from_slice(&source.to_be_bytes());
    data.extend_from_slice(&seq.to_be_bytes());
    data.extend_from_slice(payload);
    data
}

/// Computes the authentication tag for a `(source, seq, payload)` triple
/// using the source's own key.
pub fn sign(source_key: &SecretKey, source: u64, seq: u64, payload: &[u8]) -> AuthTag {
    AuthTag(hmac_sha256(
        source_key.as_bytes(),
        &tag_input(source, seq, payload),
    ))
}

/// Verifies a tag against the key registered for `source` in `store`.
///
/// # Errors
///
/// * [`AuthError::UnknownSource`] — `source` has no key in `store`.
/// * [`AuthError::Forged`] — the tag does not match.
pub fn verify(
    store: &KeyStore,
    source: u64,
    seq: u64,
    payload: &[u8],
    tag: &AuthTag,
) -> Result<(), AuthError> {
    let key = store.key_of(source).map_err(AuthError::UnknownSource)?;
    let expected = hmac_sha256(key.as_bytes(), &tag_input(source, seq, payload));
    if verify_tag(&expected, &tag.0) {
        Ok(())
    } else {
        Err(AuthError::Forged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(source: u64) -> (KeyStore, SecretKey) {
        let store = KeyStore::new(123);
        let key = store.register(source);
        (store, key)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 1, 42, b"payload");
        assert!(verify(&store, 1, 42, b"payload", &tag).is_ok());
    }

    #[test]
    fn wrong_payload_rejected() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 1, 42, b"payload");
        assert_eq!(
            verify(&store, 1, 42, b"other", &tag),
            Err(AuthError::Forged)
        );
    }

    #[test]
    fn wrong_seq_rejected() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 1, 42, b"payload");
        assert_eq!(
            verify(&store, 1, 43, b"payload", &tag),
            Err(AuthError::Forged)
        );
    }

    #[test]
    fn spoofed_source_rejected() {
        let store = KeyStore::new(5);
        let key1 = store.register(1);
        store.register(2);
        // Adversary signs with key 1 but claims source 2.
        let tag = sign(&key1, 2, 0, b"m");
        assert_eq!(verify(&store, 2, 0, b"m", &tag), Err(AuthError::Forged));
    }

    #[test]
    fn unknown_source_rejected() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 9, 0, b"m");
        assert!(matches!(
            verify(&store, 9, 0, b"m", &tag),
            Err(AuthError::UnknownSource(_))
        ));
    }

    #[test]
    fn zero_tag_rejected() {
        let (store, _) = store_with(1);
        assert_eq!(
            verify(&store, 1, 0, b"m", &AuthTag::zero()),
            Err(AuthError::Forged)
        );
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = AuthError::UnknownSource(UnknownPeerError { peer: 3 });
        assert!(e.to_string().contains('3'));
        assert!(e.source().is_some());
        assert!(AuthError::Forged.source().is_none());
    }
}
