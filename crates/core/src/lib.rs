//! Transport-agnostic engine for **Drum** — the DoS-resistant gossip-based
//! multicast protocol of Badishi, Keidar and Sasson (DSN 2004) — and its
//! Push-only / Pull-only baselines.
//!
//! Drum achieves resistance to targeted denial-of-service attacks with
//! three simple, composable measures:
//!
//! 1. **combining push and pull** gossip ([`config::ProtocolVariant::Drum`]),
//!    so an attack that blocks one direction leaves the other operational;
//! 2. **separate resource bounds** per operation ([`bounds::RoundBudget`]),
//!    so flooding one port cannot starve another;
//! 3. **random, sealed ports** for replies and data ([`message::PortRef`]),
//!    so the attacker does not know where to aim.
//!
//! This crate contains the protocol logic only; pair it with:
//! `drum-net` (real UDP transport), `drum-sim` (Monte-Carlo simulator),
//! `drum-analysis` (closed-form numerics) and `drum-membership` (dynamic
//! groups).
//!
//! # Examples
//!
//! Two engines exchanging a message through an in-memory "network":
//!
//! ```
//! use drum_core::bytes::Bytes;
//! use drum_core::config::GossipConfig;
//! use drum_core::engine::{CountingPortOracle, Engine};
//! use drum_core::ids::ProcessId;
//! use drum_core::view::Membership;
//! use drum_crypto::keys::KeyStore;
//!
//! let store = KeyStore::new(42);
//! let members = vec![ProcessId(0), ProcessId(1)];
//! let k0 = store.register(0);
//! let k1 = store.register(1);
//! let mut a = Engine::new(GossipConfig::drum(), Membership::new(ProcessId(0), members.clone()),
//!                         store.clone(), k0, 1);
//! let mut b = Engine::new(GossipConfig::drum(), Membership::new(ProcessId(1), members),
//!                         store, k1, 2);
//!
//! let id = a.publish(Bytes::from_static(b"hello group"));
//! let mut oracle = CountingPortOracle::default();
//!
//! // One round: deliver every message to its destination engine.
//! let mut inflight: Vec<_> = a.begin_round(&mut oracle).into_iter()
//!     .chain(b.begin_round(&mut oracle)).collect();
//! while !inflight.is_empty() {
//!     let mut next = Vec::new();
//!     for out in inflight {
//!         let target = if out.to == ProcessId(0) { &mut a } else { &mut b };
//!         next.extend(target.handle(out.msg, &mut oracle));
//!     }
//!     inflight = next;
//! }
//! assert!(b.buffer().seen(id));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod bounds;
pub mod buffer;
pub mod bytes;
pub mod config;
pub mod digest;
pub mod engine;
pub mod ids;
pub mod message;
pub mod stream;
pub mod view;

pub use bitset::BitSet;
pub use bounds::{Channel, RoundBudget};
pub use buffer::MessageBuffer;
pub use bytes::{Bytes, BytesMut};
pub use config::{BoundMode, ConfigError, GossipConfig, ProtocolVariant};
pub use digest::{Digest, DigestError};
pub use engine::{Engine, Outbound, PortOracle, PortPurpose, RoundStats, SendPort};
pub use ids::{MessageId, ProcessId, Round};
pub use message::{DataMessage, GossipMessage, MessageKind, PortRef};
pub use stream::{StreamConfig, StreamScheduler, StreamStats};
pub use view::{Membership, RoundViews};

/// Default well-known port offset for pull-requests (relative to a
/// process's base port in `drum-net`).
pub const WELL_KNOWN_PULL_PORT: u16 = 0;

/// Default well-known port offset for push-offers.
pub const WELL_KNOWN_PUSH_PORT: u16 = 1;

/// Fixed pull-reply port used only by the no-random-ports ablation.
pub const WELL_KNOWN_PULL_REPLY_PORT: u16 = 2;

/// Fixed push-reply port used only by the no-random-ports ablation.
pub const WELL_KNOWN_PUSH_REPLY_PORT: u16 = 3;

/// Fixed push-data port used only by the no-random-ports ablation.
pub const WELL_KNOWN_PUSH_DATA_PORT: u16 = 4;

#[cfg(test)]
mod proptests {
    use crate::digest::Digest;
    use crate::ids::{MessageId, ProcessId};
    use drum_testkit::prop::{check, Config, Gen};
    use drum_testkit::{prop_assert, prop_assert_eq};
    use std::collections::BTreeSet;

    fn arb_ids(g: &mut Gen) -> Vec<MessageId> {
        g.vec_with(0..200, |g| {
            MessageId::new(ProcessId(g.u64_in(0..8)), g.u64_in(0..64))
        })
    }

    #[test]
    fn digest_matches_btreeset() {
        check("digest_matches_btreeset", Config::default(), |g| {
            let ids = arb_ids(g);
            let probes = arb_ids(g);
            let digest: Digest = ids.iter().copied().collect();
            let reference: BTreeSet<MessageId> = ids.iter().copied().collect();
            prop_assert_eq!(digest.len(), reference.len());
            for probe in probes {
                prop_assert_eq!(digest.contains(probe), reference.contains(&probe));
            }
            let expanded: Vec<MessageId> = digest.iter().collect();
            let sorted: Vec<MessageId> = reference.into_iter().collect();
            prop_assert_eq!(expanded, sorted);
            Ok(())
        });
    }

    #[test]
    fn digest_wire_round_trip() {
        check("digest_wire_round_trip", Config::default(), |g| {
            let ids = arb_ids(g);
            let digest: Digest = ids.iter().copied().collect();
            let raw: Vec<(ProcessId, Vec<(u64, u64)>)> =
                digest.intervals().map(|(s, v)| (s, v.to_vec())).collect();
            let decoded = Digest::from_intervals(raw).unwrap();
            prop_assert_eq!(digest, decoded);
            Ok(())
        });
    }

    #[test]
    fn digest_insert_idempotent() {
        check("digest_insert_idempotent", Config::default(), |g| {
            let ids = arb_ids(g);
            let mut digest: Digest = ids.iter().copied().collect();
            let len = digest.len();
            let intervals = digest.interval_count();
            for id in &ids {
                prop_assert!(!digest.insert(*id));
            }
            prop_assert_eq!(digest.len(), len);
            prop_assert_eq!(digest.interval_count(), intervals);
            Ok(())
        });
    }

    #[test]
    fn engine_survives_arbitrary_message_sequences() {
        check(
            "engine_survives_arbitrary_message_sequences",
            Config::default(),
            |g| {
                use crate::config::GossipConfig;
                use crate::engine::{CountingPortOracle, Engine};
                use crate::message::{DataMessage, GossipMessage, PortRef};
                use crate::view::Membership;
                use drum_crypto::auth::AuthTag;
                use drum_crypto::keys::KeyStore;

                let msgs = g.vec_with(1..80, |g| {
                    (g.u8() % 5, g.u64_in(0..6), g.u64_in(0..16), g.u16())
                });
                let seed = g.u64_in(0..1000);

                // Fuzz the engine with arbitrary (unauthenticated) protocol
                // messages: it must never panic and never deliver a message
                // that fails source authentication.
                let store = KeyStore::new(seed);
                let members: Vec<ProcessId> = (0..6).map(ProcessId).collect();
                for m in &members {
                    store.register(m.as_u64());
                }
                let key = store.key_of(0).unwrap();
                let mut engine = Engine::new(
                    GossipConfig::drum(),
                    Membership::new(ProcessId(0), members),
                    store,
                    key,
                    seed,
                );
                let mut oracle = CountingPortOracle::default();
                engine.begin_round(&mut oracle);

                for (kind, from, seq, port) in msgs {
                    let from = ProcessId(from);
                    let data = DataMessage {
                        id: MessageId::new(from, seq),
                        hops: 0,
                        payload: crate::bytes::Bytes::from_static(b"fuzz"),
                        auth: AuthTag::zero(),
                    };
                    let msg = match kind {
                        0 => GossipMessage::PullRequest {
                            from,
                            digest: Digest::new(),
                            reply_port: PortRef::Plain(port),
                            nonce: seq,
                        },
                        1 => GossipMessage::PullReply {
                            from,
                            messages: vec![data],
                        },
                        2 => GossipMessage::PushOffer {
                            from,
                            reply_port: PortRef::Plain(port),
                            nonce: seq,
                        },
                        3 => GossipMessage::PushReply {
                            from,
                            digest: Digest::new(),
                            data_port: PortRef::Plain(port),
                            nonce: seq,
                        },
                        _ => GossipMessage::PushData {
                            from,
                            messages: vec![data],
                        },
                    };
                    let _ = engine.handle(msg, &mut oracle);
                }
                // Zero-tagged data never authenticates, so nothing delivers.
                prop_assert!(engine.take_delivered().is_empty());
                prop_assert!(engine.buffer().is_empty());
                Ok(())
            },
        );
    }

    #[test]
    fn buffer_never_redelivers() {
        check("buffer_never_redelivers", Config::default(), |g| {
            use crate::buffer::MessageBuffer;
            use crate::bytes::Bytes;
            use crate::ids::Round;
            use drum_crypto::auth::AuthTag;

            let ops = g.vec_with(1..100, |g| {
                (g.u64_in(0..4), g.u64_in(0..32), g.u64_in(0..5))
            });
            let mut buf = MessageBuffer::new(3);
            let mut delivered = BTreeSet::new();
            let mut round = Round(0);
            for (s, q, advance) in ops {
                round = Round(round.as_u64() + advance);
                buf.purge(round);
                let id = MessageId::new(ProcessId(s), q);
                let msg = crate::message::DataMessage {
                    id,
                    hops: 0,
                    payload: Bytes::new(),
                    auth: AuthTag::zero(),
                };
                let fresh = buf.insert(msg, round);
                // A message is "delivered" at most once ever.
                prop_assert_eq!(fresh, delivered.insert(id));
            }
            Ok(())
        });
    }
}
