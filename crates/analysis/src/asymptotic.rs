//! §6 of the paper: closed-form asymptotic quantities.
//!
//! * effective expected fan-in `I` and fan-out `O` of attacked and
//!   non-attacked processes, for Drum (Eqs. 6–7), Push (Eqs. 1–2) and Pull
//!   (Eqs. 3–5);
//! * Lemma 4's lower bound on Push's propagation time, which grows linearly
//!   in the attack strength `x` (Corollary 1);
//! * Lemma 6's lower bound on the rounds for `M` to leave the source in
//!   Pull (Corollary 2);
//! * the attack-strength normalization `c = B / (F·n)` of Lemma 2.

use crate::appendix_a::{p_a, p_u};

/// Effective expected fan-in/out of attacked (`a`) and non-attacked (`u`)
/// processes for one protocol under attack parameters `(alpha, x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveRates {
    /// Fan-in of an attacked process.
    pub fan_in_attacked: f64,
    /// Fan-in of a non-attacked process.
    pub fan_in_unattacked: f64,
    /// Fan-out of an attacked process.
    pub fan_out_attacked: f64,
    /// Fan-out of a non-attacked process.
    pub fan_out_unattacked: f64,
}

/// Which protocol the §6 formulas are instantiated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Push + pull (split fan-out).
    Drum,
    /// Push only.
    Push,
    /// Pull only.
    Pull,
}

/// Computes the §6 effective rates.
///
/// `alpha` is the attacked fraction; `p_att`/`p_unatt` the per-message
/// acceptance probabilities (use [`p_a`]/[`p_u`] or supply your own).
pub fn effective_rates(
    proto: Proto,
    fan_out: usize,
    alpha: f64,
    p_att: f64,
    p_unatt: f64,
) -> EffectiveRates {
    let f = fan_out as f64;
    let mix = alpha * p_att + (1.0 - alpha) * p_unatt;
    match proto {
        Proto::Push => EffectiveRates {
            // Eq. (1)
            fan_in_attacked: f * p_att,
            fan_in_unattacked: f * p_unatt,
            // Eq. (2)
            fan_out_attacked: f * mix,
            fan_out_unattacked: f * mix,
        },
        Proto::Pull => EffectiveRates {
            // Eq. (5)
            fan_in_attacked: f * mix,
            fan_in_unattacked: f * mix,
            // Eqs. (3)–(4)
            fan_out_attacked: f * p_att,
            fan_out_unattacked: f * p_unatt,
        },
        Proto::Drum => EffectiveRates {
            // Eq. (6): O^a = I^a = F((α+1)/2 · p_a + (1-α)/2 · p_u)
            fan_in_attacked: f * ((alpha + 1.0) / 2.0 * p_att + (1.0 - alpha) / 2.0 * p_unatt),
            // Eq. (7): O^u = I^u = F(α/2 · p_a + (2-α)/2 · p_u)
            fan_in_unattacked: f * (alpha / 2.0 * p_att + (2.0 - alpha) / 2.0 * p_unatt),
            fan_out_attacked: f * ((alpha + 1.0) / 2.0 * p_att + (1.0 - alpha) / 2.0 * p_unatt),
            fan_out_unattacked: f * (alpha / 2.0 * p_att + (2.0 - alpha) / 2.0 * p_unatt),
        },
    }
}

/// Convenience wrapper computing `p_a`/`p_u` from Appendix A first.
pub fn effective_rates_for(
    proto: Proto,
    n: usize,
    fan_out: usize,
    alpha: f64,
    x: u64,
) -> EffectiveRates {
    effective_rates(proto, fan_out, alpha, p_a(n, fan_out, x), p_u(n, fan_out))
}

/// Lemma 4: lower bound on the expected number of rounds for Push to reach
/// *all* processes: `(ln n − ln((1−α)n + 1)) / ln(1 + F·α·p_a)`.
///
/// Grows linearly with `x` for fixed `α` (Corollary 1).
pub fn push_propagation_lower_bound(n: usize, fan_out: usize, alpha: f64, x: u64) -> f64 {
    let pa = p_a(n, fan_out, x);
    let nf = n as f64;
    let numerator = nf.ln() - ((1.0 - alpha) * nf + 1.0).ln();
    let denominator = (fan_out as f64 * alpha * pa).ln_1p();
    numerator / denominator
}

/// Lemma 6: lower bound on the expected rounds for `M` to leave the source
/// in Pull: `1 / (1 − ((x−F)/x)^(n−1))`, which is `Ω(x)` (Lemma 5).
///
/// # Panics
///
/// Panics if `x <= fan_out` (the bound needs `x > F`).
pub fn pull_source_exit_lower_bound(n: usize, fan_out: usize, x: u64) -> f64 {
    assert!(x > fan_out as u64, "bound requires x > F");
    let ratio = (x - fan_out as u64) as f64 / x as f64;
    // 1 - ratio^(n-1), computed stably in logs.
    let log_pow = (n - 1) as f64 * ratio.ln();
    let p_exit = -log_pow.exp_m1(); // 1 - e^{log_pow}
    1.0 / p_exit
}

/// The attack-strength normalization of Lemma 2: `c = B/(F·n) = α·x/F`.
pub fn attack_intensity(fan_out: usize, alpha: f64, x: u64) -> f64 {
    alpha * x as f64 / fan_out as f64
}

/// Epidemic-growth estimate of the propagation time implied by an
/// effective fan-in `I`: the infected population multiplies by `(1 + I)`
/// per round [25, 14], so reaching `n` processes takes about
/// `ln(n) / ln(1 + I)` rounds.
///
/// This is the quantity Lemma 1's proof appeals to ("a constant fan-out
/// and a constant group size entail a constant propagation time"); it is a
/// coarse estimate, useful for sanity checks and capacity planning rather
/// than exact prediction.
///
/// # Panics
///
/// Panics if `fan_in <= 0` or `n < 2`.
pub fn propagation_estimate(n: usize, fan_in: f64) -> f64 {
    assert!(n >= 2, "need at least two processes");
    assert!(fan_in > 0.0, "fan-in must be positive");
    (n as f64).ln() / fan_in.ln_1p()
}

/// Lemma-1-style estimate for Drum under an `(α, x)` attack: plugs the
/// worst (attacked) effective fan-in into [`propagation_estimate`].
pub fn drum_propagation_estimate(n: usize, fan_out: usize, alpha: f64, x: u64) -> f64 {
    let rates = effective_rates_for(Proto::Drum, n, fan_out, alpha, x);
    propagation_estimate(n, rates.fan_in_attacked.min(rates.fan_in_unattacked))
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1000;
    const F: usize = 4;

    #[test]
    fn lemma1_drum_rates_bounded_below_independent_of_x() {
        // For fixed α < 1, Drum's effective rates stay above a constant as
        // x grows (Lemma 1): the p_u term does not vanish.
        let alpha = 0.1;
        let pu = p_u(N, F);
        let floor_attacked = F as f64 * (1.0 - alpha) / 2.0 * pu * 0.999;
        for &x in &[32u64, 128, 512, 4096] {
            let r = effective_rates_for(Proto::Drum, N, F, alpha, x);
            assert!(r.fan_in_attacked > floor_attacked, "x = {x}: {r:?}");
            assert!(r.fan_in_unattacked > floor_attacked);
        }
    }

    #[test]
    fn push_attacked_fan_in_vanishes_with_x() {
        let alpha = 0.1;
        let r1 = effective_rates_for(Proto::Push, N, F, alpha, 32);
        let r2 = effective_rates_for(Proto::Push, N, F, alpha, 512);
        assert!(r2.fan_in_attacked < r1.fan_in_attacked / 4.0);
    }

    #[test]
    fn pull_attacked_fan_out_vanishes_with_x() {
        let alpha = 0.1;
        let r1 = effective_rates_for(Proto::Pull, N, F, alpha, 32);
        let r2 = effective_rates_for(Proto::Pull, N, F, alpha, 512);
        assert!(r2.fan_out_attacked < r1.fan_out_attacked / 4.0);
    }

    #[test]
    fn corollary1_push_bound_grows_linearly() {
        let alpha = 0.1;
        let b128 = push_propagation_lower_bound(N, F, alpha, 128);
        let b256 = push_propagation_lower_bound(N, F, alpha, 256);
        let b512 = push_propagation_lower_bound(N, F, alpha, 512);
        // Doubling x roughly doubles the bound (within 25% slack).
        assert!((b256 / b128 - 2.0).abs() < 0.5, "ratio = {}", b256 / b128);
        assert!((b512 / b256 - 2.0).abs() < 0.5, "ratio = {}", b512 / b256);
    }

    #[test]
    fn corollary2_pull_bound_grows_linearly() {
        // The Lemma-6 over-estimate assumes all n-1 processes pull the
        // source each round, so the Ω(x) regime starts around x ≈ F·n.
        let b1 = pull_source_exit_lower_bound(N, F, 12_800);
        let b2 = pull_source_exit_lower_bound(N, F, 25_600);
        assert!(b2 > 1.5 * b1, "{b1} -> {b2}");
        assert!(b1 > 1.0);
        // Small-group check: growth visible already at moderate x.
        let s1 = pull_source_exit_lower_bound(10, F, 128);
        let s2 = pull_source_exit_lower_bound(10, F, 256);
        assert!(s2 > 1.5 * s1, "{s1} -> {s2}");
    }

    #[test]
    fn lemma2_drum_rates_decrease_with_alpha_when_c_large() {
        // c > 5: attacking more processes (bigger α, same B) hurts Drum
        // *less* per attacked process but more overall: rates decrease in α.
        let c = 10.0;
        let mut prev_attacked = f64::INFINITY;
        let mut prev_unattacked = f64::INFINITY;
        for &alpha in &[0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let x = (c * F as f64 / alpha).round() as u64;
            let r = effective_rates_for(Proto::Drum, N, F, alpha, x);
            assert!(r.fan_in_attacked < prev_attacked + 1e-9, "alpha = {alpha}");
            assert!(
                r.fan_in_unattacked < prev_unattacked + 1e-9,
                "alpha = {alpha}"
            );
            prev_attacked = r.fan_in_attacked;
            prev_unattacked = r.fan_in_unattacked;
        }
    }

    #[test]
    fn attack_intensity_examples() {
        // §7.3: B = 7.2n with F = 4 is c = 1.8... no: c = B/(F n) = 7.2/4 = 1.8?
        // The paper says B = 7.2n corresponds to c = 2 with its rounding of
        // per-target rates; our exact normalization gives α·x/F.
        assert!((attack_intensity(4, 0.1, 72) - 1.8).abs() < 1e-12);
        assert!((attack_intensity(4, 1.0, 8) - 2.0).abs() < 1e-12);
        assert!((attack_intensity(4, 0.1, 360) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn drum_equals_push_pull_at_full_alpha() {
        // When every process is attacked the three protocols face the same
        // mixed probability; Drum's split fan-out gives the same totals.
        let x = 64;
        let d = effective_rates_for(Proto::Drum, N, F, 1.0, x);
        let p = effective_rates_for(Proto::Push, N, F, 1.0, x);
        assert!((d.fan_in_attacked - p.fan_in_attacked).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "x > F")]
    fn pull_bound_requires_strong_attack() {
        pull_source_exit_lower_bound(N, F, 4);
    }

    #[test]
    fn propagation_estimate_basics() {
        // Logarithmic in n.
        let t100 = propagation_estimate(100, 2.0);
        let t10000 = propagation_estimate(10_000, 2.0);
        assert!((t10000 / t100 - 2.0).abs() < 1e-9, "log growth");
        // Larger fan-in → faster.
        assert!(propagation_estimate(1000, 4.0) < propagation_estimate(1000, 1.0));
    }

    #[test]
    fn drum_estimate_is_flat_in_attack_strength() {
        // Lemma 1 via the estimate: 16x the attack rate moves Drum's
        // estimated propagation time by only a small constant.
        let weak = drum_propagation_estimate(N, F, 0.1, 32);
        let strong = drum_propagation_estimate(N, F, 0.1, 512);
        assert!(
            strong < weak + 2.0,
            "estimate should be flat: {weak:.1} -> {strong:.1}"
        );
        // And it lands in the plausible range the simulations show.
        assert!((3.0..15.0).contains(&strong), "estimate {strong:.1}");
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn estimate_rejects_zero_fan_in() {
        propagation_estimate(100, 0.0);
    }
}
