//! DoS attack traffic generation.
//!
//! Emulates the paper's adversary: each attacked process receives `x`
//! fabricated messages per round — `x/2` push-offers to its well-known push
//! port and `x/2` pull-requests to its well-known pull port for Drum, or
//! all `x` on the single channel for Push/Pull (§5). The messages are
//! syntactically valid (they decode and consume reception budget slots —
//! the application-level attack the paper studies) but carry bogus reply
//! ports and no authenticable data, so everything downstream of the budget
//! is wasted work for the victim.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use drum_core::config::ProtocolVariant;
use drum_core::digest::Digest;
use drum_core::ids::ProcessId;
use drum_core::message::{GossipMessage, PortRef};
use drum_trace::{names, trace_event, Tracer};

use crate::codec;
use crate::transport::{bind_ephemeral, BatchTx, WellKnownAddrs};

/// How the flood is aimed and shaped — the wire-level mirror of
/// `drum_sim::AdversaryKind` (the net crate deliberately does not depend
/// on the simulator; the two enums are kept in sync by the shared
/// `DRUM_ADVERSARY` spellings).
///
/// Every strategy conserves the adversary's total send budget
/// (`x_per_round × targets`): adaptive strategies redistribute it, they do
/// not get more of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloodStrategy {
    /// The paper's adversary: a fixed per-target flood, split across the
    /// victim protocol's well-known channels (`x/2 + x/2` for Drum).
    Static,
    /// Rotates the whole group budget onto one victim at a time, moving to
    /// the next target every `every` rounds — chasing the victims the way
    /// an adaptive attacker chases port rotation.
    TargetChasing {
        /// Rounds between focus shifts (≥ 1).
        every: u32,
    },
    /// Concentrates the whole group budget on the first target forever,
    /// trying to eclipse that one process from the group.
    Eclipse,
    /// Spends the entire budget on pull-requests: each one costs the
    /// victim a reply-budget slot, not just a reception slot.
    PullAbuse,
    /// Resends previously captured wire datagrams verbatim instead of
    /// fabricating fresh ones. With an empty corpus the attacker replays
    /// its own first fabrication — either way the victim sees identical
    /// fan-in, the case batched MAC verification collapses.
    Replay {
        /// Captured datagrams to cycle through (may be empty).
        corpus: Vec<Vec<u8>>,
    },
}

impl FloodStrategy {
    /// Stable name, matching the `DRUM_ADVERSARY` spellings.
    pub fn name(&self) -> &'static str {
        match self {
            FloodStrategy::Static => "static",
            FloodStrategy::TargetChasing { .. } => "chase",
            FloodStrategy::Eclipse => "eclipse",
            FloodStrategy::PullAbuse => "pull-abuse",
            FloodStrategy::Replay { .. } => "replay",
        }
    }

    /// Parses a `DRUM_ADVERSARY` value (`static`, `chase`, `chase:N`,
    /// `eclipse`, `pull-abuse`, `replay`). Returns `None` for unknown
    /// names and `chase:0`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(FloodStrategy::Static),
            "chase" => Some(FloodStrategy::TargetChasing { every: 1 }),
            "eclipse" => Some(FloodStrategy::Eclipse),
            "pull-abuse" => Some(FloodStrategy::PullAbuse),
            "replay" => Some(FloodStrategy::Replay { corpus: Vec::new() }),
            _ => {
                let every: u32 = s.strip_prefix("chase:")?.parse().ok()?;
                (every > 0).then_some(FloodStrategy::TargetChasing { every })
            }
        }
    }

    /// Reads `DRUM_ADVERSARY`, defaulting to [`FloodStrategy::Static`]
    /// when unset or unparseable.
    pub fn from_env() -> Self {
        std::env::var("DRUM_ADVERSARY")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or(FloodStrategy::Static)
    }
}

/// Configuration of one attacker.
#[derive(Debug, Clone)]
pub struct AttackerConfig {
    /// Fabricated messages per target per round.
    pub x_per_round: f64,
    /// Round duration the rate is defined against.
    pub round: Duration,
    /// Which protocol's channels to flood (determines the push/pull split).
    pub victim_protocol: ProtocolVariant,
    /// Fixed pull-reply ports of the targets, when the victims run the
    /// no-random-ports ablation (Figure 12(a)). When set (aligned with the
    /// target list), the pull budget is split evenly between each target's
    /// pull-request port and its pull-reply port, as in §9.
    pub reply_port_targets: Vec<std::net::SocketAddr>,
    /// Bursts per round: the per-round budget is sent in this many evenly
    /// spaced batches so victims see pressure throughout their (unaligned)
    /// rounds. Higher values smooth the flood; `1` concentrates it into one
    /// burst per round (the harshest shape for a fixed-cadence receiver).
    /// Defaults to 10.
    pub batches_per_round: u32,
    /// Observability: per-batch `attack.batch` events (attack traffic
    /// classification) plus the `attack_sent` registry counter. Disabled
    /// by default.
    pub tracer: Tracer,
    /// How the flood is aimed ([`FloodStrategy::Static`] is the paper's
    /// adversary; [`AttackerConfig::new`] pins it explicitly so the
    /// `DRUM_ADVERSARY` environment never silently reshapes a
    /// statically-configured experiment).
    pub strategy: FloodStrategy,
}

impl AttackerConfig {
    /// Standard attacker: floods only the well-known ports.
    pub fn new(x_per_round: f64, round: Duration, victim_protocol: ProtocolVariant) -> Self {
        AttackerConfig {
            x_per_round,
            round,
            victim_protocol,
            reply_port_targets: Vec::new(),
            batches_per_round: 10,
            tracer: Tracer::disabled(),
            strategy: FloodStrategy::Static,
        }
    }

    /// Like [`AttackerConfig::new`], but honoring the `DRUM_ADVERSARY`
    /// environment knob — the entry point the CLI and CI matrix use.
    pub fn new_from_env(
        x_per_round: f64,
        round: Duration,
        victim_protocol: ProtocolVariant,
    ) -> Self {
        let mut config = Self::new(x_per_round, round, victim_protocol);
        config.strategy = FloodStrategy::from_env();
        config
    }
}

/// A fabricated pull-request: decodes fine, claims a bogus sender and
/// directs any reply to a dead port.
pub fn fabricated_pull_request(seq: u64) -> GossipMessage {
    GossipMessage::PullRequest {
        from: ProcessId(0xDEAD_0000 + (seq & 0xFFFF)),
        digest: Digest::new(),
        reply_port: PortRef::Plain(1),
        nonce: seq,
    }
}

/// A fabricated push-offer with a dead reply port.
pub fn fabricated_push_offer(seq: u64) -> GossipMessage {
    GossipMessage::PushOffer {
        from: ProcessId(0xDEAD_0000 + (seq & 0xFFFF)),
        reply_port: PortRef::Plain(1),
        nonce: seq,
    }
}

/// A fabricated pull-reply carrying one unauthenticated data message —
/// useless to the victim, but it consumes a reply-channel acceptance slot
/// when the reply port is knowable (the Figure 12(a) ablation).
pub fn fabricated_pull_reply(seq: u64) -> GossipMessage {
    use drum_core::ids::MessageId;
    GossipMessage::PullReply {
        from: ProcessId(0xDEAD_0000 + (seq & 0xFFFF)),
        messages: vec![drum_core::message::DataMessage {
            id: MessageId::new(ProcessId(0xDEAD_0000 + (seq & 0xFFFF)), seq),
            hops: 0,
            payload: drum_core::bytes::Bytes::from(vec![0u8; 50]),
            auth: drum_crypto::auth::AuthTag::zero(),
        }],
    }
}

/// A fabricated MTU-packed gossip frame wrapping one bogus pull-reply. It
/// parses as a frame, but its tag can never verify — the adversary holds
/// no group key — so receivers drop it whole (one HMAC of wasted work for
/// arbitrarily many packed messages) and count it in `frames_rejected`.
pub fn fabricated_frame(seq: u64) -> Vec<u8> {
    let mut builder = codec::FrameBuilder::new();
    builder.push(&fabricated_pull_reply(seq));
    let mut wire = drum_core::bytes::BytesMut::with_capacity(64);
    builder.finish_into(
        ProcessId(0xDEAD_0000 + (seq & 0xFFFF)),
        seq,
        |_| drum_crypto::auth::AuthTag::zero(),
        &mut wire,
    );
    wire[..].to_vec()
}

/// Handle to a running attacker thread.
#[derive(Debug)]
pub struct AttackerHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<u64>>,
}

impl AttackerHandle {
    /// Stops the attacker; returns the number of datagrams it sent.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .take()
            .expect("shutdown called once")
            .join()
            .unwrap_or(0)
    }
}

impl Drop for AttackerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Spawns a thread flooding `targets` with fabricated traffic at the
/// configured per-round rate, spread uniformly across each round.
///
/// # Errors
///
/// Returns an [`std::io::Error`] if the attacker's send socket cannot be
/// bound.
pub fn spawn_attacker(
    targets: Vec<WellKnownAddrs>,
    config: AttackerConfig,
) -> std::io::Result<AttackerHandle> {
    let socket = bind_ephemeral()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();

    let join = std::thread::Builder::new()
        .name("drum-attacker".into())
        .spawn(move || {
            let mut sent = 0u64;
            let mut seq = 0u64;
            // Flooding is the attacker's hot path: reuse one wire buffer
            // for every fabricated datagram instead of allocating per send,
            // and hand bursts to the kernel through `sendmmsg` so the
            // attacker can sustain paper-scale rates from one thread
            // (per-datagram `send_to` under `DRUM_NET_NO_BATCH=1`).
            let mut wire = drum_core::bytes::BytesMut::with_capacity(codec::MAX_WIRE_LEN);
            let mut tx = BatchTx::new();
            // Per-round per-target counts on each channel.
            let (mut x_push, mut x_pull) = match config.victim_protocol {
                ProtocolVariant::Drum => (config.x_per_round / 2.0, config.x_per_round / 2.0),
                ProtocolVariant::Push => (config.x_per_round, 0.0),
                ProtocolVariant::Pull => (0.0, config.x_per_round),
            };
            // Adaptive strategies redistribute — never enlarge — the total
            // send budget: focused floods multiply the per-target rate by
            // the number of targets they stop flooding; pull-abuse shifts
            // the push half onto the pull channel.
            match &config.strategy {
                FloodStrategy::PullAbuse => {
                    x_pull += x_push;
                    x_push = 0.0;
                }
                FloodStrategy::Eclipse | FloodStrategy::TargetChasing { .. } => {
                    let scale = targets.len() as f64;
                    x_push *= scale;
                    x_pull *= scale;
                }
                FloodStrategy::Static | FloodStrategy::Replay { .. } => {}
            }
            // Replay ammunition: captured datagrams, or — with an empty
            // corpus — the attacker's own first fabrications, resent
            // verbatim (identical fan-in either way).
            let replay_corpus: Option<Vec<Vec<u8>>> = match &config.strategy {
                FloodStrategy::Replay { corpus } if !corpus.is_empty() => Some(corpus.clone()),
                FloodStrategy::Replay { .. } => Some(vec![
                    codec::encode(&fabricated_pull_request(1)).to_vec(),
                    codec::encode(&fabricated_push_offer(2)).to_vec(),
                ]),
                _ => None,
            };
            // Against the no-random-ports ablation the pull budget is split
            // between the request port and the (knowable) reply port (§9).
            let attack_replies = !config.reply_port_targets.is_empty();
            let (x_pull_req, x_pull_reply) = if attack_replies {
                (x_pull / 2.0, x_pull / 2.0)
            } else {
                (x_pull, 0.0)
            };
            let batches = config.batches_per_round.max(1);
            let batch_interval = config.round / batches;
            let per_batch_push = x_push / batches as f64;
            let per_batch_pull = x_pull_req / batches as f64;
            let per_batch_reply = x_pull_reply / batches as f64;
            let mut carry_push = 0.0f64;
            let mut carry_pull = 0.0f64;
            let mut carry_reply = 0.0f64;
            let tracer = config.tracer.clone();
            let c_attack = tracer.registry().counter(names::ATTACK_SENT);
            trace_event!(
                tracer,
                "attack",
                "start",
                tracer.wall_now(),
                targets = targets.len(),
                x_per_round = config.x_per_round,
                protocol = config.victim_protocol.to_string(),
                strategy = config.strategy.name(),
                reply_ports = attack_replies
            );

            let mut batch_no: u64 = 0;
            while !stop_flag.load(Ordering::Relaxed) {
                let batch_deadline = Instant::now() + batch_interval;
                carry_push += per_batch_push;
                carry_pull += per_batch_pull;
                carry_reply += per_batch_reply;
                let n_push = carry_push as usize;
                let n_pull = carry_pull as usize;
                let n_reply = carry_reply as usize;
                carry_push -= n_push as f64;
                carry_pull -= n_pull as f64;
                carry_reply -= n_reply as f64;

                // Focused strategies aim the whole (scaled) budget at one
                // target; target-chasing moves that focus every `every`
                // rounds (batches_per_round batches ≈ one victim round).
                let round_no = batch_no / u64::from(batches);
                batch_no += 1;
                let focus = match &config.strategy {
                    FloodStrategy::Eclipse => Some(0),
                    FloodStrategy::TargetChasing { every } => Some(
                        ((round_no / u64::from(*every)) % targets.len().max(1) as u64) as usize,
                    ),
                    _ => None,
                };

                let mut batch_total = 0u64;
                for (i, target) in targets.iter().enumerate() {
                    if focus.is_some_and(|f| f != i) {
                        continue;
                    }
                    for _ in 0..n_pull {
                        seq += 1;
                        match &replay_corpus {
                            Some(corpus) => {
                                let dg = &corpus[seq as usize % corpus.len()];
                                tx.push(&socket, target.pull, dg, false);
                            }
                            None => {
                                codec::encode_into(&fabricated_pull_request(seq), &mut wire);
                                tx.push(&socket, target.pull, &wire[..], false);
                            }
                        }
                        batch_total += 1;
                    }
                    for _ in 0..n_push {
                        seq += 1;
                        match &replay_corpus {
                            Some(corpus) => {
                                let dg = &corpus[seq as usize % corpus.len()];
                                tx.push(&socket, target.push, dg, false);
                            }
                            None => {
                                codec::encode_into(&fabricated_push_offer(seq), &mut wire);
                                tx.push(&socket, target.push, &wire[..], false);
                            }
                        }
                        batch_total += 1;
                    }
                    if let Some(reply_addr) = config.reply_port_targets.get(i) {
                        for _ in 0..n_reply {
                            seq += 1;
                            codec::encode_into(&fabricated_pull_reply(seq), &mut wire);
                            tx.push(&socket, *reply_addr, &wire[..], false);
                            batch_total += 1;
                        }
                    }
                }
                sent += tx.finish(&socket);

                if batch_total > 0 {
                    c_attack.add(batch_total);
                    trace_event!(
                        tracer,
                        "attack",
                        "batch",
                        tracer.wall_now(),
                        push = n_push,
                        pull = n_pull,
                        reply = n_reply,
                        targets = targets.len()
                    );
                }

                let now = Instant::now();
                if now < batch_deadline {
                    std::thread::sleep(batch_deadline - now);
                }
            }
            sent
        })
        .expect("failed to spawn attacker thread");

    Ok(AttackerHandle {
        stop,
        join: Some(join),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::WellKnownSockets;

    #[test]
    fn fabricated_messages_decode() {
        for msg in [fabricated_pull_request(1), fabricated_push_offer(2)] {
            let bytes = codec::encode(&msg);
            assert_eq!(codec::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn fabricated_frame_parses_but_never_authenticates() {
        use drum_crypto::keys::KeyStore;

        let bytes = fabricated_frame(3);
        assert!(codec::is_frame(&bytes));
        let frame = codec::decode_frame(&bytes).unwrap();
        assert_eq!(frame.messages.len(), 1);
        // The claimed sender is not a group member, so verification fails
        // with UnknownSource; even a registered id would yield Forged.
        let store = KeyStore::new(1);
        store.register(7);
        let body = codec::frame_signed_body(&bytes).unwrap();
        assert!(drum_crypto::verify_frame(
            &store,
            frame.sender.as_u64(),
            frame.nonce,
            body,
            &frame.auth
        )
        .is_err());
    }

    #[test]
    fn attacker_floods_target_at_roughly_the_configured_rate() {
        let (sockets, addrs) = WellKnownSockets::bind().unwrap();
        let config = AttackerConfig::new(100.0, Duration::from_millis(100), ProtocolVariant::Drum);
        let attacker = spawn_attacker(vec![addrs], config).unwrap();
        std::thread::sleep(Duration::from_millis(450));
        let sent = attacker.shutdown();

        // ~4.5 rounds × 100 msgs ≈ 450; allow generous slack for timing.
        assert!(sent > 150, "sent only {sent}");

        // The datagrams actually arrived and split across both ports.
        let mut buf = [0u8; 2048];
        let mut pull_count = 0;
        while let Ok((len, _)) = sockets.pull.recv_from(&mut buf) {
            assert!(matches!(
                codec::decode(&buf[..len]).unwrap(),
                GossipMessage::PullRequest { .. }
            ));
            pull_count += 1;
        }
        let mut push_count = 0;
        while let Ok((len, _)) = sockets.push.recv_from(&mut buf) {
            assert!(matches!(
                codec::decode(&buf[..len]).unwrap(),
                GossipMessage::PushOffer { .. }
            ));
            push_count += 1;
        }
        assert!(pull_count > 0, "no fabricated pull-requests arrived");
        assert!(push_count > 0, "no fabricated push-offers arrived");
    }

    #[test]
    fn single_burst_attack_sends_full_round_budget_at_once() {
        let (sockets, addrs) = WellKnownSockets::bind().unwrap();
        let mut config =
            AttackerConfig::new(40.0, Duration::from_millis(100), ProtocolVariant::Drum);
        config.batches_per_round = 1;
        let attacker = spawn_attacker(vec![addrs], config).unwrap();
        // Wait well past the first burst, before the second round ends.
        std::thread::sleep(Duration::from_millis(60));
        let mut buf = [0u8; 2048];
        let mut first_burst = 0;
        while sockets.pull.recv_from(&mut buf).is_ok() {
            first_burst += 1;
        }
        attacker.shutdown();
        // One burst must carry the whole per-round pull budget (x/2 = 20),
        // not the smoothed default's 1/10 slice.
        assert!(
            first_burst >= 20,
            "first burst carried only {first_burst} datagrams"
        );
    }

    #[test]
    fn strategy_names_parse_round_trip() {
        for name in ["static", "chase", "eclipse", "pull-abuse", "replay"] {
            let s = FloodStrategy::parse(name).unwrap();
            assert_eq!(s.name(), name);
        }
        assert_eq!(
            FloodStrategy::parse("chase:4"),
            Some(FloodStrategy::TargetChasing { every: 4 })
        );
        assert_eq!(FloodStrategy::parse("chase:0"), None);
        assert_eq!(FloodStrategy::parse("nonsense"), None);
    }

    #[test]
    fn eclipse_attack_floods_only_the_first_target() {
        let (sockets_a, addrs_a) = WellKnownSockets::bind().unwrap();
        let (sockets_b, addrs_b) = WellKnownSockets::bind().unwrap();
        let mut config =
            AttackerConfig::new(60.0, Duration::from_millis(50), ProtocolVariant::Drum);
        config.strategy = FloodStrategy::Eclipse;
        let attacker = spawn_attacker(vec![addrs_a, addrs_b], config).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        attacker.shutdown();

        let mut buf = [0u8; 2048];
        let mut eclipsed = 0;
        while sockets_a.pull.recv_from(&mut buf).is_ok() {
            eclipsed += 1;
        }
        while sockets_a.push.recv_from(&mut buf).is_ok() {
            eclipsed += 1;
        }
        assert!(eclipsed > 0, "eclipse sent nothing to its victim");
        // The second target must be left entirely alone: the whole group
        // budget lands on the eclipsed process.
        assert!(sockets_b.pull.recv_from(&mut buf).is_err());
        assert!(sockets_b.push.recv_from(&mut buf).is_err());
    }

    #[test]
    fn pull_abuse_attack_spares_push_port_for_drum_victims() {
        let (sockets, addrs) = WellKnownSockets::bind().unwrap();
        let mut config =
            AttackerConfig::new(50.0, Duration::from_millis(50), ProtocolVariant::Drum);
        config.strategy = FloodStrategy::PullAbuse;
        let attacker = spawn_attacker(vec![addrs], config).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        attacker.shutdown();

        let mut buf = [0u8; 2048];
        let mut push_count = 0;
        while sockets.push.recv_from(&mut buf).is_ok() {
            push_count += 1;
        }
        assert_eq!(
            push_count, 0,
            "pull-abuse must spend the whole budget on the pull channel"
        );
        let mut pull_count = 0;
        while sockets.pull.recv_from(&mut buf).is_ok() {
            pull_count += 1;
        }
        assert!(pull_count > 0);
    }

    #[test]
    fn replay_attack_resends_captured_bytes_verbatim() {
        let (sockets, addrs) = WellKnownSockets::bind().unwrap();
        // "Capture" one authentic-looking wire datagram and hand it to the
        // replay strategy as its corpus.
        let captured = codec::encode(&fabricated_pull_request(42)).to_vec();
        let mut config =
            AttackerConfig::new(40.0, Duration::from_millis(50), ProtocolVariant::Drum);
        config.strategy = FloodStrategy::Replay {
            corpus: vec![captured.clone()],
        };
        let attacker = spawn_attacker(vec![addrs], config).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        attacker.shutdown();

        let mut buf = [0u8; 2048];
        let mut replayed = 0;
        while let Ok((len, _)) = sockets.pull.recv_from(&mut buf) {
            assert_eq!(
                &buf[..len],
                &captured[..],
                "replayed datagram must be byte-identical to the capture"
            );
            replayed += 1;
        }
        assert!(replayed > 1, "expected identical fan-in, got {replayed}");
    }

    #[test]
    fn pull_only_attack_spares_push_port() {
        let (sockets, addrs) = WellKnownSockets::bind().unwrap();
        let config = AttackerConfig::new(50.0, Duration::from_millis(50), ProtocolVariant::Pull);
        let attacker = spawn_attacker(vec![addrs], config).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        attacker.shutdown();

        let mut buf = [0u8; 2048];
        let mut push_count = 0;
        while sockets.push.recv_from(&mut buf).is_ok() {
            push_count += 1;
        }
        assert_eq!(push_count, 0, "Pull attack must not touch the push port");
        let mut pull_count = 0;
        while sockets.pull.recv_from(&mut buf).is_ok() {
            pull_count += 1;
        }
        assert!(pull_count > 0);
    }
}
