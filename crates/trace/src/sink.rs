//! Pluggable event sinks: no-op (the near-zero-overhead default), an
//! in-memory buffer for tests, and a byte-stable JSON-lines writer.

use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::Event;

/// Receives trace events. Implementations must be thread-safe: the
/// networked runtime emits from many process threads at once.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: Event);
    /// Flushes any buffered output (default: nothing to do).
    fn flush(&self) {}
}

/// Discards everything. [`crate::Tracer::disabled`] never even constructs
/// events, so this sink only exists for code that wants a real sink object
/// with zero effect (e.g. the overhead benchmarks).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: Event) {}
}

/// Collects events in memory; the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Removes and returns all recorded events.
    pub fn take(&self) -> Vec<Event> {
        core::mem::take(&mut *self.lock())
    }

    /// Clones the current event list without draining it.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        self.lock().push(event);
    }
}

/// Writes one JSON object per line. Serialization goes through
/// `drum_metrics::json`, whose fixed key order makes identical event
/// sequences produce byte-identical output — the property the golden-trace
/// CI check relies on.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&self, event: Event) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // A full pipe / closed file is not worth panicking a gossip round
        // over; the write result is intentionally dropped.
        let _ = writeln!(out, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self
            .out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
    }
}

/// A cheaply clonable shared byte buffer implementing [`Write`], for
/// capturing [`JsonLinesSink`] output in tests and golden-trace fixtures.
#[derive(Debug, Default, Clone)]
pub struct SharedBuf {
    inner: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The bytes written so far, as UTF-8 (lossy).
    pub fn contents_string(&self) -> String {
        String::from_utf8_lossy(&self.contents()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Timestamp;

    #[test]
    fn memory_sink_records_and_takes() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(Event::new("t", "a", Timestamp::Round(1)));
        sink.record(Event::new("t", "b", Timestamp::Round(2)));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.snapshot().len(), 2);
        let taken = sink.take();
        assert_eq!(taken[1].name, "b");
        assert!(sink.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let buf = SharedBuf::new();
        let sink = JsonLinesSink::new(buf.clone());
        sink.record(Event::new("t", "x", Timestamp::Round(1)).with("k", 9u64));
        sink.record(Event::new("t", "y", Timestamp::None));
        sink.flush();
        let text = buf.contents_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"target":"t","event":"x","round":1,"fields":{"k":9}}"#
        );
    }

    #[test]
    fn identical_sequences_are_byte_identical() {
        let run = || {
            let buf = SharedBuf::new();
            let sink = JsonLinesSink::new(buf.clone());
            for r in 0..5u64 {
                sink.record(Event::new("sim", "round", Timestamp::Round(r)).with("n", r * 2));
            }
            buf.contents()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noop_sink_discards() {
        NoopSink.record(Event::new("t", "x", Timestamp::None));
        NoopSink.flush();
    }
}
