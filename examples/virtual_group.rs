//! Deterministic protocol exploration with the testkit: the *real* engine
//! (full push-offer handshake, sealed ports, budgets) on a virtual network
//! with partitions, loss and a targeted attack — fully reproducible.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p drum --example virtual_group
//! ```

use drum::core::config::GossipConfig;
use drum::testkit::{NetworkConfig, VirtualNetwork};
use drum_core::bytes::Bytes;

fn main() {
    // 1. Plain dissemination.
    println!("1) 20 engines, no failures:");
    let mut net = VirtualNetwork::new(NetworkConfig::drum(20), 1);
    let id = net.publish(0, Bytes::from_static(b"hello"));
    let rounds = net.run_until_spread(id, 1.0, 50).expect("spread");
    println!("   message reached all 20 engines in {rounds} rounds\n");

    // 2. A partition heals.
    println!("2) engine 5 partitioned, then healed:");
    let config = NetworkConfig::drum(10).with_gossip(GossipConfig::drum().with_buffer_rounds(0));
    let mut net = VirtualNetwork::new(config, 2);
    for other in 0..10 {
        if other != 5 {
            net.partition(5, other);
        }
    }
    let id = net.publish(0, Bytes::from_static(b"survivor"));
    net.run_rounds(12);
    println!(
        "   while partitioned: {}/10 engines have the message",
        net.holders(id)
    );
    for other in 0..10 {
        if other != 5 {
            net.heal(5, other);
        }
    }
    net.run_rounds(6);
    println!(
        "   after healing:     {}/10 engines have the message\n",
        net.holders(id)
    );

    // 3. The headline result with the REAL handshake: attack 10% hard.
    println!("3) targeted attack (3 of 30 engines flooded), real push-offer handshake:");
    for (label, x) in [("x =  32", 32.0), ("x = 256", 256.0)] {
        let mut total = 0u32;
        let trials = 10;
        for seed in 0..trials {
            let cfg = NetworkConfig::drum(30)
                .with_attack(vec![0, 1, 2], x)
                .with_loss(0.01);
            let mut net = VirtualNetwork::new(cfg, seed);
            let id = net.publish(0, Bytes::from_static(b"m"));
            total += net.run_until_spread(id, 0.99, 300).unwrap_or(300);
        }
        println!(
            "   Drum, {label}: {:.1} rounds to 99%",
            total as f64 / trials as f64
        );
    }
    println!("   (flat in x — the full handshake preserves the paper's result)");
}
