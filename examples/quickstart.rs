//! Quickstart: a small Drum group multicasting over loopback UDP.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p drum --example quickstart
//! ```
//!
//! Spawns 8 processes (one thread group each), publishes 20 messages from
//! a single source, and prints per-process delivery counts, latencies and
//! the group-wide observability counters collected by `drum::trace`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use drum::core::config::ProtocolVariant;
use drum::net::experiment::{decode_payload, paper_cluster_config, Cluster};
use drum::trace::{names, NoopSink, Tracer};

fn main() -> std::io::Result<()> {
    let n = 8;
    let round = Duration::from_millis(100);
    println!("starting a {n}-process Drum group (round = {round:?})...");

    // Attach a tracer to the whole cluster. The sink receives structured
    // events (swap `NoopSink` for `JsonLinesSink` to stream a .jsonl
    // trace); the registry aggregates counters across every process
    // thread either way.
    let tracer = Tracer::new(Arc::new(NoopSink));
    let mut config = paper_cluster_config(ProtocolVariant::Drum, n, 0, 0.0, round, 42);
    config.net = config.net.with_tracer(tracer.clone());
    let correct = config.correct();
    let cluster = Cluster::start(config)?;
    let epoch = cluster.epoch();

    // Publish 20 messages at 20 msg/s from process 0.
    let total = 20u64;
    for seq in 0..total {
        cluster.publish_from_source(seq, 50);
        std::thread::sleep(Duration::from_millis(50));
    }

    // Collect deliveries for a few seconds.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut received = vec![0u64; correct];
    let mut latency_sum_ms = vec![0.0f64; correct];
    while Instant::now() < deadline {
        for (i, h) in cluster.handles().iter().enumerate() {
            for d in h.take_delivered() {
                if let Some((_seq, sent_micros)) = decode_payload(&d.message.payload) {
                    let now = epoch.elapsed().as_micros() as u64;
                    latency_sum_ms[i] += (now - sent_micros) as f64 / 1000.0;
                    received[i] += 1;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    println!("\nprocess  received  mean latency");
    println!("-------------------------------");
    for i in 1..correct {
        let mean = if received[i] > 0 {
            latency_sum_ms[i] / received[i] as f64
        } else {
            f64::NAN
        };
        println!("p{i:<7} {:>8}  {mean:>9.1} ms", received[i]);
    }

    let stats = cluster.shutdown();
    let rounds: u64 = stats.iter().map(|s| s.rounds).sum();
    println!("\ntotal rounds executed across the group: {rounds}");
    let delivered: u64 = received[1..].iter().sum();
    println!(
        "total deliveries: {delivered} / {}",
        total * (correct as u64 - 1)
    );

    // Group-wide counters from the shared trace registry.
    let reg = tracer.registry();
    println!("\nobservability counters (whole group):");
    for name in [
        names::MESSAGES_SENT,
        names::MESSAGES_RECEIVED,
        names::DROPPED_BY_BOUND,
        names::PORT_ROTATIONS,
        names::SYSCALLS_RECV,
        names::SYSCALLS_SEND,
        names::BATCH_FILL,
        names::FRAMES_SENT,
        names::MSGS_PER_FRAME,
        names::MAC_FULL_VERIFIES,
        names::MAC_BATCH_HITS,
        names::CRYPTO_COMPRESS_CALLS,
        names::CRYPTO_LANES_FILLED,
        names::BUFFER_BYTES_PEAK,
        names::STREAM_BACKPRESSURE,
    ] {
        println!("  {name:<20} {}", reg.counter(name).get());
    }
    Ok(())
}
