//! Figure 8: weak fixed-strength attacks against Drum
//!
//! Thin wrapper over [`drum_bench::figures::fig08`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig08(&mut out).expect("write fig08 to stdout");
}
