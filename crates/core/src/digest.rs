//! Message digests exchanged during gossip.
//!
//! A pull-request carries "a digest of the messages [the requester] has
//! received"; a push-reply carries a digest of the messages the push target
//! has (§4). A digest is a compact summary of a set of [`MessageId`]s: per
//! source, the owned sequence numbers are kept as a sorted list of closed
//! intervals, so long runs of consecutively numbered messages cost O(1).

use crate::ids::{MessageId, ProcessId};
use std::collections::BTreeMap;

/// A compact set of [`MessageId`]s.
///
/// # Examples
///
/// ```
/// use drum_core::digest::Digest;
/// use drum_core::ids::{MessageId, ProcessId};
///
/// let mut d = Digest::new();
/// d.insert(MessageId::new(ProcessId(1), 0));
/// d.insert(MessageId::new(ProcessId(1), 1));
/// d.insert(MessageId::new(ProcessId(1), 2));
/// assert!(d.contains(MessageId::new(ProcessId(1), 1)));
/// assert_eq!(d.len(), 3);
/// // Three consecutive seqs collapse into one interval.
/// assert_eq!(d.interval_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Digest {
    /// Per source: sorted, disjoint, non-adjacent closed intervals
    /// `[lo, hi]` of owned sequence numbers.
    ranges: BTreeMap<ProcessId, Vec<(u64, u64)>>,
}

impl Digest {
    /// Creates an empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one id. Returns `true` if it was not already present.
    pub fn insert(&mut self, id: MessageId) -> bool {
        let intervals = self.ranges.entry(id.source).or_default();
        let seq = id.seq;
        // Find the first interval with lo > seq.
        let pos = intervals.partition_point(|&(lo, _)| lo <= seq);
        // Check containment in the preceding interval.
        if pos > 0 {
            let (lo, hi) = intervals[pos - 1];
            if seq >= lo && seq <= hi {
                return false;
            }
        }
        // Can we extend the preceding interval? (checked: hi may be u64::MAX)
        let extends_prev = pos > 0 && intervals[pos - 1].1.checked_add(1) == Some(seq);
        // Can we extend the following interval? (checked: seq may be u64::MAX)
        let extends_next = pos < intervals.len() && seq.checked_add(1) == Some(intervals[pos].0);
        match (extends_prev, extends_next) {
            (true, true) => {
                intervals[pos - 1].1 = intervals[pos].1;
                intervals.remove(pos);
            }
            (true, false) => intervals[pos - 1].1 = seq,
            (false, true) => intervals[pos].0 = seq,
            (false, false) => intervals.insert(pos, (seq, seq)),
        }
        true
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: MessageId) -> bool {
        self.ranges
            .get(&id.source)
            .map(|intervals| {
                let pos = intervals.partition_point(|&(lo, _)| lo <= id.seq);
                pos > 0 && id.seq <= intervals[pos - 1].1
            })
            .unwrap_or(false)
    }

    /// Removes one id. Returns `true` if it was present.
    ///
    /// Removal from the middle of an interval splits it in two, so a digest
    /// under point removals stays canonical (sorted, disjoint, non-adjacent)
    /// and round-trips through [`Digest::from_intervals`] unchanged. This is
    /// what lets a round-windowed "seen" set evict expired ids without
    /// rebuilding the whole digest.
    pub fn remove(&mut self, id: MessageId) -> bool {
        let Some(intervals) = self.ranges.get_mut(&id.source) else {
            return false;
        };
        let seq = id.seq;
        let pos = intervals.partition_point(|&(lo, _)| lo <= seq);
        if pos == 0 {
            return false;
        }
        let (lo, hi) = intervals[pos - 1];
        if seq < lo || seq > hi {
            return false;
        }
        match (seq == lo, seq == hi) {
            (true, true) => {
                intervals.remove(pos - 1);
            }
            (true, false) => intervals[pos - 1].0 = seq + 1,
            (false, true) => intervals[pos - 1].1 = seq - 1,
            (false, false) => {
                intervals[pos - 1].1 = seq - 1;
                intervals.insert(pos, (seq + 1, hi));
            }
        }
        if intervals.is_empty() {
            self.ranges.remove(&id.source);
        }
        true
    }

    /// Total number of ids in the digest.
    pub fn len(&self) -> usize {
        self.ranges
            .values()
            .flat_map(|v| v.iter())
            .map(|&(lo, hi)| (hi - lo + 1) as usize)
            .sum()
    }

    /// Whether the digest is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of stored intervals (compactness measure).
    pub fn interval_count(&self) -> usize {
        self.ranges.values().map(Vec::len).sum()
    }

    /// Iterates over all ids (expanded from intervals) in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.ranges.iter().flat_map(|(&source, intervals)| {
            intervals
                .iter()
                .flat_map(move |&(lo, hi)| (lo..=hi).map(move |seq| MessageId::new(source, seq)))
        })
    }

    /// The sources that appear in the digest.
    pub fn sources(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.ranges.keys().copied()
    }

    /// Raw interval view for wire encoding: `(source, &[(lo, hi)])`.
    pub fn intervals(&self) -> impl Iterator<Item = (ProcessId, &[(u64, u64)])> + '_ {
        self.ranges.iter().map(|(&s, v)| (s, v.as_slice()))
    }

    /// Reconstructs a digest from raw intervals (wire decoding).
    ///
    /// # Errors
    ///
    /// Returns [`DigestError`] if intervals are unsorted, overlapping,
    /// adjacent (should have been merged) or inverted.
    pub fn from_intervals<I>(entries: I) -> Result<Self, DigestError>
    where
        I: IntoIterator<Item = (ProcessId, Vec<(u64, u64)>)>,
    {
        let mut ranges = BTreeMap::new();
        for (source, intervals) in entries {
            for &(lo, hi) in &intervals {
                if lo > hi {
                    return Err(DigestError::InvertedInterval { source, lo, hi });
                }
            }
            for w in intervals.windows(2) {
                // Next interval must start at least 2 past the previous end,
                // otherwise they overlap or should have been merged.
                // (saturating: the previous end may be u64::MAX, in which
                // case nothing can legally follow it.)
                if w[1].0 <= w[0].1.saturating_add(1) {
                    return Err(DigestError::UnsortedIntervals { source });
                }
            }
            if !intervals.is_empty() && ranges.insert(source, intervals).is_some() {
                return Err(DigestError::DuplicateSource { source });
            }
        }
        Ok(Digest { ranges })
    }
}

impl FromIterator<MessageId> for Digest {
    fn from_iter<T: IntoIterator<Item = MessageId>>(iter: T) -> Self {
        let mut d = Digest::new();
        for id in iter {
            d.insert(id);
        }
        d
    }
}

impl Extend<MessageId> for Digest {
    fn extend<T: IntoIterator<Item = MessageId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Errors decoding a [`Digest`] from raw intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigestError {
    /// An interval had `lo > hi`.
    InvertedInterval {
        /// Source the interval belongs to.
        source: ProcessId,
        /// Interval start.
        lo: u64,
        /// Interval end.
        hi: u64,
    },
    /// Intervals for a source were unsorted, overlapping or unmerged.
    UnsortedIntervals {
        /// Offending source.
        source: ProcessId,
    },
    /// The same source appeared twice.
    DuplicateSource {
        /// Offending source.
        source: ProcessId,
    },
}

impl core::fmt::Display for DigestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DigestError::InvertedInterval { source, lo, hi } => {
                write!(f, "inverted interval [{lo}, {hi}] for {source}")
            }
            DigestError::UnsortedIntervals { source } => {
                write!(f, "unsorted or overlapping intervals for {source}")
            }
            DigestError::DuplicateSource { source } => {
                write!(f, "source {source} appears twice")
            }
        }
    }
}

impl std::error::Error for DigestError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: u64, q: u64) -> MessageId {
        MessageId::new(ProcessId(s), q)
    }

    #[test]
    fn empty_digest() {
        let d = Digest::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(!d.contains(id(0, 0)));
        assert_eq!(d.iter().count(), 0);
    }

    #[test]
    fn insert_and_contains() {
        let mut d = Digest::new();
        assert!(d.insert(id(1, 5)));
        assert!(!d.insert(id(1, 5)));
        assert!(d.contains(id(1, 5)));
        assert!(!d.contains(id(1, 4)));
        assert!(!d.contains(id(2, 5)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn consecutive_seqs_merge() {
        let mut d = Digest::new();
        d.insert(id(1, 0));
        d.insert(id(1, 2));
        assert_eq!(d.interval_count(), 2);
        d.insert(id(1, 1)); // bridges the gap
        assert_eq!(d.interval_count(), 1);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn extend_forward_and_backward() {
        let mut d = Digest::new();
        d.insert(id(1, 5));
        d.insert(id(1, 6)); // extend forward
        d.insert(id(1, 4)); // extend backward
        assert_eq!(d.interval_count(), 1);
        assert_eq!(d.len(), 3);
        assert!(d.contains(id(1, 4)));
        assert!(d.contains(id(1, 6)));
    }

    #[test]
    fn multiple_sources() {
        let mut d = Digest::new();
        d.insert(id(1, 0));
        d.insert(id(2, 0));
        assert_eq!(d.sources().count(), 2);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let ids = [id(2, 3), id(1, 0), id(1, 1), id(1, 7), id(2, 4)];
        let d: Digest = ids.into_iter().collect();
        let collected: Vec<MessageId> = d.iter().collect();
        assert_eq!(
            collected,
            vec![id(1, 0), id(1, 1), id(1, 7), id(2, 3), id(2, 4)]
        );
    }

    #[test]
    fn interval_round_trip() {
        let ids = [id(1, 0), id(1, 1), id(1, 5), id(3, 2)];
        let d: Digest = ids.into_iter().collect();
        let raw: Vec<(ProcessId, Vec<(u64, u64)>)> =
            d.intervals().map(|(s, v)| (s, v.to_vec())).collect();
        let d2 = Digest::from_intervals(raw).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn from_intervals_rejects_bad_input() {
        let p = ProcessId(1);
        assert!(matches!(
            Digest::from_intervals([(p, vec![(5, 3)])]),
            Err(DigestError::InvertedInterval { .. })
        ));
        assert!(matches!(
            Digest::from_intervals([(p, vec![(0, 2), (2, 4)])]),
            Err(DigestError::UnsortedIntervals { .. })
        ));
        // Adjacent intervals should have been merged.
        assert!(matches!(
            Digest::from_intervals([(p, vec![(0, 2), (3, 4)])]),
            Err(DigestError::UnsortedIntervals { .. })
        ));
        assert!(matches!(
            Digest::from_intervals(vec![(p, vec![(0, 1)]), (p, vec![(5, 6)])]),
            Err(DigestError::DuplicateSource { .. })
        ));
    }

    #[test]
    fn from_intervals_skips_empty_sources() {
        let d = Digest::from_intervals([(ProcessId(1), vec![])]).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn large_run_is_compact() {
        let mut d = Digest::new();
        for seq in 0..10_000 {
            d.insert(id(1, seq));
        }
        assert_eq!(d.interval_count(), 1);
        assert_eq!(d.len(), 10_000);
    }

    #[test]
    fn error_display() {
        let e = DigestError::InvertedInterval {
            source: ProcessId(1),
            lo: 5,
            hi: 3,
        };
        assert!(e.to_string().contains("p1"));
    }

    #[test]
    fn remove_shrinks_splits_and_drops_intervals() {
        let mut d: Digest = [id(1, 0), id(1, 1), id(1, 2), id(1, 3), id(2, 7)]
            .into_iter()
            .collect();
        // Absent ids are a no-op.
        assert!(!d.remove(id(1, 9)));
        assert!(!d.remove(id(3, 0)));
        // Middle removal splits one interval into two.
        assert!(d.remove(id(1, 2)));
        assert!(!d.contains(id(1, 2)));
        assert_eq!(d.interval_count(), 3);
        // Edge removals shrink.
        assert!(d.remove(id(1, 0)));
        assert!(d.remove(id(1, 3)));
        assert!(d.contains(id(1, 1)));
        // Singleton removal drops the source entirely.
        assert!(d.remove(id(2, 7)));
        assert!(!d.sources().any(|s| s == ProcessId(2)));
        assert!(d.remove(id(1, 1)));
        assert!(d.is_empty());
        // Removal never leaves non-canonical intervals behind: round-trip.
        let mut d2: Digest = (0..10).map(|q| id(1, q)).collect();
        d2.remove(id(1, 4));
        let raw: Vec<(ProcessId, Vec<(u64, u64)>)> =
            d2.intervals().map(|(s, v)| (s, v.to_vec())).collect();
        assert_eq!(Digest::from_intervals(raw).unwrap(), d2);
    }

    #[test]
    fn remove_then_insert_round_trips() {
        let mut d: Digest = (0..8).map(|q| id(1, q)).collect();
        assert!(d.remove(id(1, 3)));
        assert!(d.insert(id(1, 3)));
        assert_eq!(d.interval_count(), 1);
        assert_eq!(d.len(), 8);
    }

    #[test]
    fn u64_max_sequence_numbers() {
        // The extreme end of the sequence space must not overflow the
        // interval arithmetic.
        let mut d = Digest::new();
        assert!(d.insert(id(1, u64::MAX)));
        assert!(d.contains(id(1, u64::MAX)));
        assert!(!d.insert(id(1, u64::MAX)));
        d.insert(id(1, u64::MAX - 1)); // extends backward into the max
        assert_eq!(d.interval_count(), 1);
        assert!(d.contains(id(1, u64::MAX - 1)));

        // Wire form with an interval ending at u64::MAX.
        let raw: Vec<(ProcessId, Vec<(u64, u64)>)> =
            d.intervals().map(|(s, v)| (s, v.to_vec())).collect();
        assert_eq!(Digest::from_intervals(raw).unwrap(), d);
        // An interval "following" u64::MAX is always invalid.
        assert!(
            Digest::from_intervals([(ProcessId(1), vec![(u64::MAX, u64::MAX), (0, 1)])]).is_err()
        );
    }
}
