//! The certification authority (CA).
//!
//! §10.1: "In order to join the group, a process must be authorized by the
//! CA. Once the CA authorizes the process according to its credentials, the
//! CA grants the process with a timestamped certificate, which expires (and
//! so must be renewed) after a certain period of time." The CA also revokes
//! certificates (log-out or suspicion of misbehavior) and hands newcomers
//! an initial membership list.
//!
//! This is an in-process, thread-safe CA suitable for experiments and
//! tests; the paper notes that distributed Byzantine-fault-tolerant CA
//! implementations exist and are orthogonal to Drum itself.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use drum_core::ids::ProcessId;
use drum_crypto::hmac::HmacKey;
use drum_crypto::keys::{KeyStore, SecretKey};

use crate::cert::{Certificate, Timestamp};

/// Errors returned by CA operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaError {
    /// The process already holds a current certificate.
    AlreadyMember(ProcessId),
    /// The process is not a member.
    NotMember(ProcessId),
    /// Zero-length validity requested.
    EmptyValidity,
}

impl core::fmt::Display for CaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CaError::AlreadyMember(p) => write!(f, "{p} is already a member"),
            CaError::NotMember(p) => write!(f, "{p} is not a member"),
            CaError::EmptyValidity => write!(f, "certificate validity must be positive"),
        }
    }
}

impl std::error::Error for CaError {}

struct CaInner {
    serial: u64,
    /// Current certificate per member.
    members: HashMap<ProcessId, Certificate>,
    /// Revoked serial numbers (CRL).
    revoked: HashSet<u64>,
}

/// A thread-safe certification authority.
///
/// Cloning yields a handle to the same CA.
///
/// # Examples
///
/// ```
/// use drum_core::ids::ProcessId;
/// use drum_crypto::keys::KeyStore;
/// use drum_membership::ca::CertificateAuthority;
///
/// let pki = KeyStore::new(1);
/// let ca = CertificateAuthority::new([7u8; 32], pki);
/// let cert = ca.join(ProcessId(1), 0, 100).unwrap();
/// assert!(ca.is_member(ProcessId(1)));
/// assert!(cert.verify(&ca.verification_key()));
/// ```
#[derive(Clone)]
pub struct CertificateAuthority {
    key: SecretKey,
    /// Precomputed HMAC schedule for `key`; issuing a certificate pays no
    /// key-schedule cost.
    signing_key: HmacKey,
    /// The PKI stand-in: joining registers the member's key here so other
    /// members can authenticate its messages and seal ports for it.
    key_store: KeyStore,
    inner: Arc<Mutex<CaInner>>,
}

impl core::fmt::Debug for CertificateAuthority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.lock();
        f.debug_struct("CertificateAuthority")
            .field("members", &inner.members.len())
            .field("revoked", &inner.revoked.len())
            .finish_non_exhaustive()
    }
}

impl From<[u8; 32]> for SecretKeyWrapper {
    fn from(b: [u8; 32]) -> Self {
        SecretKeyWrapper(SecretKey::from_bytes(b))
    }
}

/// Conversion helper so `[u8; 32]` literals can seed a CA ergonomically.
pub struct SecretKeyWrapper(pub SecretKey);

impl From<SecretKey> for SecretKeyWrapper {
    fn from(k: SecretKey) -> Self {
        SecretKeyWrapper(k)
    }
}

impl CertificateAuthority {
    /// Creates a CA with the given signing key and PKI registry.
    pub fn new(key: impl Into<SecretKeyWrapper>, key_store: KeyStore) -> Self {
        let key = key.into().0;
        let signing_key = key.hmac_key();
        CertificateAuthority {
            key,
            signing_key,
            key_store,
            inner: Arc::new(Mutex::new(CaInner {
                serial: 0,
                members: HashMap::new(),
                revoked: HashSet::new(),
            })),
        }
    }

    // CA state stays consistent operation-by-operation, so a lock poisoned
    // by a panicking test thread is recovered rather than propagated.
    fn lock(&self) -> MutexGuard<'_, CaInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The key other processes use to verify certificates. (With HMAC this
    /// equals the signing key; with real signatures it would be the public
    /// half.)
    pub fn verification_key(&self) -> SecretKey {
        self.key.clone()
    }

    /// The PKI registry joined members are added to.
    pub fn key_store(&self) -> &KeyStore {
        &self.key_store
    }

    fn sign(
        &self,
        subject: ProcessId,
        serial: u64,
        issued: Timestamp,
        expires: Timestamp,
    ) -> Certificate {
        let signature =
            Certificate::signature_over(&self.signing_key, subject, serial, issued, expires);
        Certificate {
            subject,
            serial,
            issued_at: issued,
            expires_at: expires,
            signature,
        }
    }

    /// Admits `subject` to the group at time `now` with the given validity,
    /// registering a fresh key for it in the PKI.
    ///
    /// # Errors
    ///
    /// * [`CaError::AlreadyMember`] if it holds a current certificate.
    /// * [`CaError::EmptyValidity`] if `validity == 0`.
    pub fn join(
        &self,
        subject: ProcessId,
        now: Timestamp,
        validity: u64,
    ) -> Result<Certificate, CaError> {
        if validity == 0 {
            return Err(CaError::EmptyValidity);
        }
        let mut inner = self.lock();
        if let Some(existing) = inner.members.get(&subject) {
            if existing.is_current(now) && !inner.revoked.contains(&existing.serial) {
                return Err(CaError::AlreadyMember(subject));
            }
        }
        inner.serial += 1;
        let serial = inner.serial;
        let cert = self.sign(subject, serial, now, now + validity);
        inner.members.insert(subject, cert.clone());
        drop(inner);
        self.key_store.register(subject.as_u64());
        Ok(cert)
    }

    /// Renews `subject`'s certificate (§10.1: "when a process's certificate
    /// is about to expire, the process must request a new certificate").
    ///
    /// # Errors
    ///
    /// [`CaError::NotMember`] if the subject holds no certificate, or
    /// [`CaError::EmptyValidity`].
    pub fn renew(
        &self,
        subject: ProcessId,
        now: Timestamp,
        validity: u64,
    ) -> Result<Certificate, CaError> {
        if validity == 0 {
            return Err(CaError::EmptyValidity);
        }
        let mut inner = self.lock();
        if !inner.members.contains_key(&subject) {
            return Err(CaError::NotMember(subject));
        }
        inner.serial += 1;
        let serial = inner.serial;
        let cert = self.sign(subject, serial, now, now + validity);
        inner.members.insert(subject, cert.clone());
        Ok(cert)
    }

    /// Voluntary log-out: revokes the member's certificate and removes its
    /// key from the PKI.
    ///
    /// # Errors
    ///
    /// [`CaError::NotMember`] if the subject is unknown.
    pub fn leave(&self, subject: ProcessId) -> Result<(), CaError> {
        self.expel(subject)
    }

    /// Expels a member (revocation "due to suspicion of malbehavior").
    ///
    /// # Errors
    ///
    /// [`CaError::NotMember`] if the subject is unknown.
    pub fn expel(&self, subject: ProcessId) -> Result<(), CaError> {
        let mut inner = self.lock();
        let Some(cert) = inner.members.remove(&subject) else {
            return Err(CaError::NotMember(subject));
        };
        inner.revoked.insert(cert.serial);
        drop(inner);
        self.key_store.revoke(subject.as_u64());
        Ok(())
    }

    /// Whether `serial` is on the revocation list.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.lock().revoked.contains(&serial)
    }

    /// Whether `subject` currently holds an (unrevoked) certificate.
    pub fn is_member(&self, subject: ProcessId) -> bool {
        let inner = self.lock();
        inner
            .members
            .get(&subject)
            .map(|c| !inner.revoked.contains(&c.serial))
            .unwrap_or(false)
    }

    /// The current membership list with certificates — what the CA hands a
    /// newcomer ("the CA provides the newcomer with an initial list of the
    /// other processes in the group"). `limit` truncates the list to model
    /// a *partial* initial view; `None` returns everyone.
    pub fn member_list(&self, limit: Option<usize>) -> Vec<Certificate> {
        let inner = self.lock();
        let mut list: Vec<Certificate> = inner.members.values().cloned().collect();
        list.sort_by_key(|c| c.subject);
        if let Some(l) = limit {
            list.truncate(l);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new([3u8; 32], KeyStore::new(5))
    }

    #[test]
    fn join_issues_verifiable_cert() {
        let ca = ca();
        let cert = ca.join(ProcessId(1), 10, 100).unwrap();
        assert!(cert.verify(&ca.verification_key()));
        assert_eq!(cert.subject, ProcessId(1));
        assert!(cert.is_current(50));
        assert!(ca.is_member(ProcessId(1)));
        assert!(ca.key_store().contains(1));
    }

    #[test]
    fn double_join_rejected_while_current() {
        let ca = ca();
        ca.join(ProcessId(1), 0, 100).unwrap();
        assert_eq!(
            ca.join(ProcessId(1), 50, 100),
            Err(CaError::AlreadyMember(ProcessId(1)))
        );
        // After expiry a re-join succeeds.
        assert!(ca.join(ProcessId(1), 150, 100).is_ok());
    }

    #[test]
    fn renew_extends_validity_with_new_serial() {
        let ca = ca();
        let c1 = ca.join(ProcessId(1), 0, 100).unwrap();
        let c2 = ca.renew(ProcessId(1), 90, 100).unwrap();
        assert!(c2.serial > c1.serial);
        assert!(c2.is_current(150));
        assert!(c2.verify(&ca.verification_key()));
    }

    #[test]
    fn renew_requires_membership() {
        assert_eq!(
            ca().renew(ProcessId(9), 0, 10),
            Err(CaError::NotMember(ProcessId(9)))
        );
    }

    #[test]
    fn leave_revokes_and_removes_key() {
        let ca = ca();
        let cert = ca.join(ProcessId(1), 0, 100).unwrap();
        ca.leave(ProcessId(1)).unwrap();
        assert!(!ca.is_member(ProcessId(1)));
        assert!(ca.is_revoked(cert.serial));
        assert!(!ca.key_store().contains(1));
        assert_eq!(
            ca.leave(ProcessId(1)),
            Err(CaError::NotMember(ProcessId(1)))
        );
    }

    #[test]
    fn member_list_sorted_and_truncatable() {
        let ca = ca();
        for id in [5u64, 1, 3] {
            ca.join(ProcessId(id), 0, 100).unwrap();
        }
        let all = ca.member_list(None);
        assert_eq!(
            all.iter().map(|c| c.subject.as_u64()).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(ca.member_list(Some(2)).len(), 2);
    }

    #[test]
    fn empty_validity_rejected() {
        let ca = ca();
        assert_eq!(ca.join(ProcessId(1), 0, 0), Err(CaError::EmptyValidity));
    }

    #[test]
    fn clones_share_state() {
        let ca = ca();
        let clone = ca.clone();
        ca.join(ProcessId(1), 0, 100).unwrap();
        assert!(clone.is_member(ProcessId(1)));
    }

    #[test]
    fn error_display() {
        assert!(CaError::AlreadyMember(ProcessId(1))
            .to_string()
            .contains("p1"));
        assert!(CaError::NotMember(ProcessId(2)).to_string().contains("p2"));
    }
}
