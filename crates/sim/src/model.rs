//! The round-synchronized simulation model (§7 and Appendix C of the
//! paper), tracking the propagation of a single message `M`.
//!
//! Model recap:
//!
//! * rounds are synchronized; every correct process gossips every round
//!   (buffers always hold *some* messages, so contention for reception
//!   slots exists whether or not a process holds `M`);
//! * push is modeled without push-offers, as in the paper's analysis and
//!   simulations;
//! * each transmission is independently lost with probability `loss`;
//! * a process accepts at most `F_in-push` push messages and `F_in-pull`
//!   pull-requests per round, chosen uniformly among valid + fabricated
//!   arrivals — this is where the DoS attack bites;
//! * pull-replies are always received thanks to random ports, except in the
//!   no-random-ports ablation where the adversary splits its pull budget
//!   between the request and reply ports (Figure 12(a));
//! * crashed and malicious processes transmit nothing and drop everything
//!   sent to them (correct processes still waste fan-out on them).
//!
//! # Two steppers
//!
//! [`SimState::step`] is the seed serial stepper: one RNG stream, one
//! thread, O(n) per round — kept bit-for-bit intact as the oracle
//! (`DRUM_SIM_SHARDS=1`). [`SimState::step_sharded`] is the intra-trial
//! parallel stepper that makes n = 10^6 trials practical: every
//! `(trial_seed, round, phase, process)` tuple owns a counter-derived
//! [`SmallRng`] stream ([`SmallRng::from_key`]), so a shard of the process
//! range draws independently of its neighbours and the result is a pure
//! function of the key material — byte-identical across worker counts
//! *and* shard counts. Per-shard partials (`u16` tallies, a `new_m`
//! bitset fragment, a pull-request list) are merged in ascending shard
//! order: tallies by saturating sums, requests by a CSR count/prefix/fill
//! pass that preserves ascending requester order per target, fragments by
//! word-level OR ([`BitSet::or_with`]).

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rand::rngs::{key_fold, SmallRng};
use rand::SeedableRng;

use drum_core::BitSet;
use drum_pool::Pool;
use drum_trace::{trace_event, Timestamp, Tracer};

use crate::adversary::{AdversaryStrategy, TargetView};
use crate::config::SimConfig;
use crate::sampling::{
    accepted_valid, any_interesting, binomial, randomized_round, sample_targets, sample_targets_any,
};

/// Phase tags for the counter-derived stream keys. Tag lives in the top
/// byte, process id in the low 56 bits: `key_fold(round_key, tag<<56 | p)`.
const STREAM_CONTROL: u64 = 1;
const STREAM_PUSH_SEND: u64 = 2;
const STREAM_PUSH_ACCEPT: u64 = 3;
const STREAM_PULL_REQUEST: u64 = 4;
const STREAM_PULL_SERVE: u64 = 5;
const STREAM_REPLY_ACCEPT: u64 = 6;

/// The per-`(phase, process)` stream for a round whose common prefix
/// `(trial_seed, round)` was folded into `round_key` once.
#[inline]
fn stream(round_key: u64, tag: u64, process: usize) -> SmallRng {
    debug_assert!(process < (1usize << 56));
    SmallRng::seed_from_u64(key_fold(round_key, (tag << 56) | process as u64))
}

/// Half-open range of processes owned by shard `s` of `shards` over `0..n`
/// (contiguous, ascending, difference in size at most one).
#[inline]
pub fn shard_range(n: usize, shards: usize, s: usize) -> (usize, usize) {
    (s * n / shards, (s + 1) * n / shards)
}

#[inline]
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[inline]
fn lock_mut<T>(m: &mut Mutex<T>) -> &mut T {
    m.get_mut().unwrap_or_else(PoisonError::into_inner)
}

#[inline]
fn read<T>(m: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    m.read().unwrap_or_else(PoisonError::into_inner)
}

#[inline]
fn write<T>(m: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    m.write().unwrap_or_else(PoisonError::into_inner)
}

#[inline]
fn rw_mut<T>(m: &mut RwLock<T>) -> &mut T {
    m.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// Read-only per-round parameters shared by every shard.
#[derive(Clone, Copy)]
struct RoundCtx {
    round_key: u64,
    /// `1 - loss`: per-transmission survival probability.
    ok: f64,
    x_push: f64,
    /// Pull budget on the request port (full `x_pull` with random ports,
    /// half without — §9).
    x_req: f64,
    /// Pull budget on the well-known reply port (0 with random ports).
    x_reply: f64,
}

/// Sender-side partial for one shard: what its senders pushed (per-target
/// tallies) and requested (pull-request list). Grow-once scratch, reused
/// across rounds and trials.
#[derive(Debug)]
struct APart {
    /// Valid push arrivals per target (`u16` saturating; a target would
    /// need 65 535 simultaneous senders to clip, far beyond any scenario).
    push_valid: Vec<u16>,
    push_with_m: Vec<u16>,
    /// `(target, requester)` pull-request pairs in ascending requester
    /// order (the sender loop is ascending and targets are distinct per
    /// sender).
    requests: Vec<(u32, u32)>,
    /// Fan-out sampling scratch.
    targets: Vec<usize>,
}

/// Receiver-side partial for one shard: its targets' acceptance outcomes.
#[derive(Debug)]
struct BPart {
    /// Processes that learned `M` this round, discovered by this shard
    /// (push-accept for owned targets; pull-serve may set *any* requester's
    /// bit, which is why fragments are full-length and OR-merged).
    new_m: BitSet,
    /// Valid pull-replies per requester on the well-known port
    /// (no-random-ports ablation only).
    reply_valid: Vec<u16>,
    reply_with_m: Vec<u16>,
    /// Per-target serve scratch: the CSR request segment being shuffled.
    serve_buf: Vec<u32>,
    /// Push tallies for the owned target range, summed over every sender
    /// shard at the top of phase B (saturating adds are order-independent,
    /// so the merge is partition-independent). Grow-once, range-local.
    sum_valid: Vec<u16>,
    sum_with_m: Vec<u16>,
    fakes_push: u64,
    fakes_pull: u64,
}

/// Mutable state of one simulated trial.
///
/// Struct-of-arrays layout: the per-member hot state is two bits
/// (`has_m`, `attacked`) plus `u16` phase tallies, so a 10^6-member trial
/// keeps its whole per-round working set in a few megabytes of cache
/// instead of the pointer-heavy per-member records a naive AoS would use.
#[derive(Debug)]
pub struct SimState {
    cfg: SimConfig,
    /// Whether process `i` holds `M` — word-packed so the per-round
    /// delivery bookkeeping runs on popcount/trailing-zeros word ops.
    has_m: BitSet,
    /// Whether process `i` is currently under attack (dynamic when the
    /// adversary rotates its target set). One bit per member; the old
    /// `Vec<bool>` spent a byte.
    attacked: BitSet,
    /// Current round number (0 = initial state, only the source holds `M`).
    round: u32,
    /// Structured-event emitter; round-stamped, so fixed-seed runs trace
    /// byte-identically (the golden-trace CI oracle).
    tracer: Tracer,
    /// Incrementally maintained `correct_with_m` — the per-round trace event
    /// and the experiment loop both query it every round, so a full O(n)
    /// scan per query would dominate large-n sweeps.
    n_correct_with_m: usize,
    /// Incrementally maintained `attacked_with_m`; rebuilt on target
    /// rotation, bumped at delivery time otherwise.
    n_attacked_with_m: usize,
    /// The adversary strategy driving targeting; consulted at the top of
    /// every round. [`crate::adversary::StaticFlood`] for unattacked runs.
    strategy: Box<dyn AdversaryStrategy>,
    /// Per-target per-round channel rates `(push, pull)` chosen by the
    /// strategy. Constant for a trial's lifetime, so computed once.
    adv_x_push: f64,
    adv_x_pull: f64,

    // Serial-stepper scratch, sized lazily on the first `step()` so a
    // sharded-only trial never pays for it.
    push_valid: Vec<u16>,
    push_with_m: Vec<u16>,
    pull_requests: Vec<Vec<u32>>,
    reply_valid: Vec<u16>,
    reply_with_m: Vec<u16>,
    new_m: BitSet,
    targets: Vec<usize>,
    rotation_picks: Vec<usize>,

    // Sharded-stepper scratch, sized lazily on the first `step_sharded()`.
    // Sender partials live behind `RwLock`: phase A writes each shard's
    // part exclusively; phase B workers then read *all* parts
    // concurrently (shared read locks) without collecting a per-round
    // reference vector — the stepper stays allocation-free per round.
    a_parts: Vec<RwLock<APart>>,
    b_parts: Vec<Mutex<BPart>>,
    csr_offsets: Vec<u32>,
    csr_cursor: Vec<u32>,
    csr_data: Vec<u32>,
    reply_merge_valid: Vec<u16>,
    reply_merge_with_m: Vec<u16>,
}

impl SimState {
    /// Initializes a trial: the source (process 0) holds `M`, nobody else.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation config");
        let n = cfg.n;
        let mut attacked = BitSet::new(n);
        for i in 0..cfg.attacked() {
            attacked.set(i);
        }
        let mut has_m = BitSet::new(n);
        has_m.set(0);
        // Only the source holds `M` initially; under the fixed role layout
        // it is correct (validate() guarantees correct() >= 1) and attacked
        // exactly when an attack is configured.
        let n_correct_with_m = usize::from(cfg.correct() > 0);
        let n_attacked_with_m = usize::from(cfg.attacked() > 0);
        let strategy = cfg.adversary().strategy();
        let (adv_x_push, adv_x_pull) = strategy.rates(&cfg);
        SimState {
            cfg,
            has_m,
            attacked,
            round: 0,
            tracer: Tracer::disabled(),
            n_correct_with_m,
            n_attacked_with_m,
            strategy,
            adv_x_push,
            adv_x_pull,
            push_valid: Vec::new(),
            push_with_m: Vec::new(),
            pull_requests: Vec::new(),
            reply_valid: Vec::new(),
            reply_with_m: Vec::new(),
            new_m: BitSet::new(n),
            targets: Vec::new(),
            rotation_picks: Vec::new(),
            a_parts: Vec::new(),
            b_parts: Vec::new(),
            csr_offsets: Vec::new(),
            csr_cursor: Vec::new(),
            csr_data: Vec::new(),
            reply_merge_valid: Vec::new(),
            reply_merge_with_m: Vec::new(),
        }
    }

    /// Rewinds to the round-0 state (source holds `M`, static targets,
    /// fresh strategy) while keeping every scratch buffer's capacity —
    /// the cross-trial reuse hook that makes a 10^6-member sweep allocate
    /// its working set once instead of once per trial.
    pub fn reset(&mut self) {
        self.has_m.clear_all();
        self.has_m.set(0);
        self.attacked.clear_all();
        for i in 0..self.cfg.attacked() {
            self.attacked.set(i);
        }
        self.round = 0;
        self.tracer = Tracer::disabled();
        self.n_correct_with_m = usize::from(self.cfg.correct() > 0);
        self.n_attacked_with_m = usize::from(self.cfg.attacked() > 0);
        self.strategy = self.cfg.adversary().strategy();
        let (adv_x_push, adv_x_pull) = self.strategy.rates(&self.cfg);
        self.adv_x_push = adv_x_push;
        self.adv_x_pull = adv_x_pull;
    }

    /// The scenario being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Attaches a tracer and emits a `sim.start` scenario event. Tracing
    /// never touches the RNG, so traced and untraced runs of the same seed
    /// evolve identically.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        trace_event!(
            self.tracer,
            "sim",
            "sim.start",
            Timestamp::Round(0),
            n = self.cfg.n,
            protocol = self.cfg.protocol.to_string(),
            malicious = self.cfg.malicious,
            crashed = self.cfg.crashed,
            attacked = self.cfg.attacked(),
            x_per_round = self.cfg.attack.map_or(0.0, |a| a.x_per_round),
            random_ports = self.cfg.random_ports,
            adversary = self.strategy.name()
        );
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current round number.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether process `i` currently holds `M`.
    pub fn has_m(&self, i: usize) -> bool {
        self.has_m.get(i)
    }

    /// Correct processes occupy the id prefix `0..correct()` under the
    /// fixed role layout, so correctness is an index comparison — no
    /// per-member role array needed.
    #[inline]
    fn is_correct(&self, i: usize) -> bool {
        i < self.cfg.correct()
    }

    /// Whether process `i` is currently under attack. Unlike the static
    /// [`SimConfig::role_of`], this tracks adversarial target rotation.
    pub fn is_attacked(&self, i: usize) -> bool {
        self.attacked.get(i)
    }

    /// Re-draws the attacked set uniformly among correct processes
    /// (rotating-adversary extension). The pick buffer is reused, so
    /// rotation allocates nothing after the first call.
    fn rotate_targets(&mut self, rng: &mut SmallRng) {
        let k = self.cfg.attacked();
        let mut picked = core::mem::take(&mut self.rotation_picks);
        sample_targets_any(self.cfg.correct(), k, rng, &mut picked);
        self.apply_targets(&picked);
        self.rotation_picks = picked;
    }

    /// Replaces the attacked set with `picked` (correct process ids) and
    /// rebuilds the incremental attacked-with-`M` counter.
    fn apply_targets(&mut self, picked: &[usize]) {
        self.attacked.clear_all();
        self.n_attacked_with_m = 0;
        for &target in picked {
            self.attacked.set(target);
            if self.has_m.get(target) {
                self.n_attacked_with_m += 1;
            }
        }
    }

    /// Number of correct processes currently holding `M`.
    pub fn correct_with_m(&self) -> usize {
        debug_assert_eq!(
            self.n_correct_with_m,
            self.has_m.count_range(0, self.cfg.correct())
        );
        self.n_correct_with_m
    }

    /// Number of attacked correct processes holding `M`.
    pub fn attacked_with_m(&self) -> usize {
        debug_assert_eq!(
            self.n_attacked_with_m,
            (0..self.cfg.n)
                .filter(|&i| self.is_attacked(i) && self.has_m.get(i))
                .count()
        );
        self.n_attacked_with_m
    }

    /// Number of non-attacked correct processes holding `M`.
    pub fn unattacked_with_m(&self) -> usize {
        self.correct_with_m() - self.attacked_with_m()
    }

    /// Fraction of correct processes holding `M` (0.0 for the degenerate
    /// all-crashed/all-malicious population, not NaN).
    pub fn fraction_with_m(&self) -> f64 {
        self.cfg.fraction_of_correct(self.correct_with_m())
    }

    /// Top-of-round control work shared by both steppers: target rotation
    /// and adaptive-strategy retargeting. All randomness comes from `rng`
    /// (the caller's single stream in the serial stepper, the dedicated
    /// control stream in the sharded one).
    fn control_phase(&mut self, rng: &mut SmallRng) {
        if let Some(k) = self.cfg.attack.and_then(|a| a.rotate_every) {
            if k > 0 && self.round.is_multiple_of(k) {
                self.rotate_targets(rng);
                trace_event!(
                    self.tracer,
                    "sim",
                    "attack.rotate",
                    Timestamp::Round(u64::from(self.round)),
                    targets = self.cfg.attacked()
                );
            }
        }

        // Adaptive-strategy targeting. `StaticFlood` (the paper's model and
        // the default) always declines, drawing nothing from the RNG, so
        // static scenarios keep their pre-strategy random stream.
        if self.cfg.attack.is_some() {
            let k = self.cfg.attacked();
            let mut picked = core::mem::take(&mut self.rotation_picks);
            let changed = self.strategy.retarget(
                &TargetView {
                    round: self.round,
                    k,
                    n_correct: self.cfg.correct(),
                    has_m: &self.has_m,
                },
                rng,
                &mut picked,
            );
            if changed {
                self.apply_targets(&picked);
                trace_event!(
                    self.tracer,
                    "sim",
                    "attack.retarget",
                    Timestamp::Round(u64::from(self.round)),
                    strategy = self.strategy.name(),
                    targets = picked.len()
                );
            }
            self.rotation_picks = picked;
        }
    }

    /// Simultaneous state update shared by both steppers: messages received
    /// this round are forwarded starting next round. Word-level popcount
    /// gives the delivery total; the per-delivery walk visits set bits
    /// only, in ascending order (trace byte-stability).
    fn deliver_and_trace(&mut self, fakes_push_total: u64, fakes_pull_total: u64) {
        let newly = self.new_m.count_ones() as u64;
        let new_m = core::mem::replace(&mut self.new_m, BitSet::new(0));
        for i in new_m.iter_ones() {
            self.has_m.set(i);
            // Delivery-time counter maintenance; only correct processes
            // ever have `new_m` set.
            self.n_correct_with_m += 1;
            if self.is_attacked(i) {
                self.n_attacked_with_m += 1;
            }
            trace_event!(
                self.tracer,
                "sim",
                "deliver",
                Timestamp::Round(u64::from(self.round)),
                process = i,
                attacked = self.is_attacked(i)
            );
        }
        self.new_m = new_m;
        trace_event!(
            self.tracer,
            "sim",
            "round",
            Timestamp::Round(u64::from(self.round)),
            with_m = self.correct_with_m(),
            new = newly,
            attacked_with_m = self.attacked_with_m(),
            fakes_push = fakes_push_total,
            fakes_pull = fakes_pull_total
        );
    }

    fn ensure_serial_scratch(&mut self) {
        let n = self.cfg.n;
        if self.push_valid.len() != n {
            self.push_valid = vec![0; n];
            self.push_with_m = vec![0; n];
            self.pull_requests = vec![Vec::new(); n];
            self.reply_valid = vec![0; n];
            self.reply_with_m = vec![0; n];
        }
    }

    /// Executes one synchronized gossip round (serial oracle stepper: one
    /// caller-supplied RNG stream, draw order fixed since the seed
    /// implementation).
    pub fn step(&mut self, rng: &mut SmallRng) {
        let n = self.cfg.n;
        let ok = 1.0 - self.cfg.loss;
        self.round += 1;
        self.ensure_serial_scratch();

        self.control_phase(rng);

        self.new_m.clear_all();

        // Fabricated-message totals injected this round (attack tracing).
        let mut fakes_push_total = 0u64;
        let mut fakes_pull_total = 0u64;

        // ---------------- Push phase ----------------
        let view_push = self.cfg.view_push();
        if view_push > 0 {
            self.push_valid.iter_mut().for_each(|v| *v = 0);
            self.push_with_m.iter_mut().for_each(|v| *v = 0);
            for s in 0..n {
                if !self.is_correct(s) {
                    continue; // crashed/malicious send nothing valid
                }
                let mut targets = core::mem::take(&mut self.targets);
                sample_targets(n, s, view_push, rng, &mut targets);
                for &t in &targets {
                    // Crashed/malicious targets silently discard.
                    if self.is_correct(t) && rng_chance(rng, ok) {
                        self.push_valid[t] = self.push_valid[t].saturating_add(1);
                        if self.has_m.get(s) {
                            self.push_with_m[t] = self.push_with_m[t].saturating_add(1);
                        }
                    }
                }
                self.targets = targets;
            }
            let f_in_push = self.cfg.view_push();
            let x_push = self.adv_x_push;
            for t in 0..n {
                if !self.is_correct(t) || self.has_m.get(t) {
                    continue;
                }
                let fakes = if self.is_attacked(t) && x_push > 0.0 {
                    binomial(randomized_round(x_push, rng), ok, rng)
                } else {
                    0
                };
                fakes_push_total += fakes as u64;
                let valid = self.push_valid[t] as usize;
                let with_m = self.push_with_m[t] as usize;
                let acc = accepted_valid(valid, fakes, f_in_push, rng);
                if with_m > 0 && any_interesting(with_m, valid - with_m, acc, rng) {
                    self.new_m.set(t);
                }
            }
        }

        // ---------------- Pull phase ----------------
        let view_pull = self.cfg.view_pull();
        if view_pull > 0 {
            for q in &mut self.pull_requests {
                q.clear();
            }
            self.reply_valid.iter_mut().for_each(|v| *v = 0);
            self.reply_with_m.iter_mut().for_each(|v| *v = 0);

            for p in 0..n {
                if !self.is_correct(p) {
                    continue;
                }
                let mut targets = core::mem::take(&mut self.targets);
                sample_targets(n, p, view_pull, rng, &mut targets);
                for &t in &targets {
                    if self.is_correct(t) && rng_chance(rng, ok) {
                        self.pull_requests[t].push(p as u32);
                    }
                }
                self.targets = targets;
            }

            let f_in_pull = self.cfg.view_pull();
            // In the no-random-ports variant the pull attack budget is split
            // evenly between the request port and the reply port (§9).
            let (x_req, x_reply) = if self.cfg.random_ports {
                (self.adv_x_pull, 0.0)
            } else {
                (self.adv_x_pull / 2.0, self.adv_x_pull / 2.0)
            };

            for t in 0..n {
                if !self.is_correct(t) {
                    continue;
                }
                let reqs = core::mem::take(&mut self.pull_requests[t]);
                let fakes = if self.is_attacked(t) && x_req > 0.0 {
                    binomial(randomized_round(x_req, rng), ok, rng)
                } else {
                    0
                };
                fakes_pull_total += fakes as u64;
                let acc = accepted_valid(reqs.len(), fakes, f_in_pull, rng);
                // Choose which `acc` requests are served: partial
                // Fisher-Yates over the request list.
                let mut reqs = reqs;
                partial_shuffle(&mut reqs, acc, rng);
                for &p in reqs.iter().take(acc) {
                    let p = p as usize;
                    // The reply travels back; subject to link loss.
                    if !rng_chance(rng, ok) {
                        continue;
                    }
                    if self.cfg.random_ports {
                        // Random reply port: always processed.
                        if self.has_m.get(t) && !self.has_m.get(p) {
                            self.new_m.set(p);
                        }
                    } else {
                        // Well-known reply port: contends with fakes below.
                        self.reply_valid[p] = self.reply_valid[p].saturating_add(1);
                        if self.has_m.get(t) {
                            self.reply_with_m[p] = self.reply_with_m[p].saturating_add(1);
                        }
                    }
                }
                self.pull_requests[t] = reqs;
            }

            if !self.cfg.random_ports {
                for p in 0..n {
                    if !self.is_correct(p) || self.has_m.get(p) {
                        continue;
                    }
                    let fakes = if self.is_attacked(p) && x_reply > 0.0 {
                        binomial(randomized_round(x_reply, rng), ok, rng)
                    } else {
                        0
                    };
                    fakes_pull_total += fakes as u64;
                    let valid = self.reply_valid[p] as usize;
                    let with_m = self.reply_with_m[p] as usize;
                    let acc = accepted_valid(valid, fakes, f_in_pull, rng);
                    if with_m > 0 && any_interesting(with_m, valid - with_m, acc, rng) {
                        self.new_m.set(p);
                    }
                }
            }
        }

        self.deliver_and_trace(fakes_push_total, fakes_pull_total);
    }

    fn ensure_sharded_scratch(&mut self, shards: usize) {
        let n = self.cfg.n;
        let n_correct = self.cfg.correct();
        let view_push = self.cfg.view_push();
        let view_pull = self.cfg.view_pull();
        let tally_len = if view_push > 0 { n_correct } else { 0 };
        let reply_len = if !self.cfg.random_ports && view_pull > 0 {
            n_correct
        } else {
            0
        };
        if self.a_parts.len() != shards {
            self.a_parts = (0..shards)
                .map(|s| {
                    let (lo, hi) = shard_range(n, shards, s);
                    // Exact per-round upper bound (loss only removes
                    // requests), so the list never regrows mid-trial.
                    let req_cap = (hi.min(n_correct).saturating_sub(lo)) * view_pull;
                    RwLock::new(APart {
                        push_valid: vec![0; tally_len],
                        push_with_m: vec![0; tally_len],
                        requests: Vec::with_capacity(req_cap),
                        targets: Vec::new(),
                    })
                })
                .collect();
            self.b_parts = (0..shards)
                .map(|_| {
                    Mutex::new(BPart {
                        new_m: BitSet::new(n),
                        reply_valid: vec![0; reply_len],
                        reply_with_m: vec![0; reply_len],
                        // One target's requesters: mean `view_pull`, so 64
                        // covers the per-round max at any n without ever
                        // regrowing mid-trial (the zero-alloc gate).
                        serve_buf: Vec::with_capacity(64),
                        sum_valid: Vec::new(),
                        sum_with_m: Vec::new(),
                        fakes_push: 0,
                        fakes_pull: 0,
                    })
                })
                .collect();
        }
        if view_pull > 0 && self.csr_offsets.capacity() < n_correct + 1 {
            // Grow-once CSR scratch: the request total per round is bounded
            // by `n_correct * view_pull`, so one reservation covers every
            // round of every trial at this configuration.
            self.csr_offsets = Vec::with_capacity(n_correct + 1);
            self.csr_cursor = Vec::with_capacity(n_correct);
            self.csr_data = Vec::with_capacity(n_correct * view_pull);
        }
    }

    /// Sender-side phase for one shard: push transmissions and pull
    /// requests for the owned sender range `lo..hi`, each sender drawing
    /// from its own counter-derived streams.
    fn phase_a(&self, ctx: RoundCtx, lo: usize, hi: usize, part: &mut APart) {
        let n = self.cfg.n;
        let n_correct = self.cfg.correct();
        let view_push = self.cfg.view_push();
        let view_pull = self.cfg.view_pull();
        if view_push > 0 {
            part.push_valid.fill(0);
            part.push_with_m.fill(0);
        }
        part.requests.clear();
        let mut targets = core::mem::take(&mut part.targets);
        // Crashed/malicious senders (ids >= n_correct) send nothing valid.
        for s in lo..hi.min(n_correct) {
            if view_push > 0 {
                let mut rng = stream(ctx.round_key, STREAM_PUSH_SEND, s);
                sample_targets(n, s, view_push, &mut rng, &mut targets);
                let sender_has_m = self.has_m.get(s);
                for &t in &targets {
                    // Crashed/malicious targets silently discard.
                    if t < n_correct && rng_chance(&mut rng, ctx.ok) {
                        part.push_valid[t] = part.push_valid[t].saturating_add(1);
                        if sender_has_m {
                            part.push_with_m[t] = part.push_with_m[t].saturating_add(1);
                        }
                    }
                }
            }
            if view_pull > 0 {
                let mut rng = stream(ctx.round_key, STREAM_PULL_REQUEST, s);
                sample_targets(n, s, view_pull, &mut rng, &mut targets);
                for &t in &targets {
                    if t < n_correct && rng_chance(&mut rng, ctx.ok) {
                        part.requests.push((t as u32, s as u32));
                    }
                }
            }
        }
        part.targets = targets;
    }

    /// Receiver-side phase for one shard: push acceptance and pull serving
    /// for the owned target range `lo..hi`. `a_parts` are all shards'
    /// sender partials (read-locked per sweep, never collected into a
    /// per-round vector); `csr_offsets`/`csr_data` index the merged pull
    /// requests by target.
    #[allow(clippy::too_many_arguments)]
    fn phase_b(
        &self,
        ctx: RoundCtx,
        lo: usize,
        hi: usize,
        a_parts: &[RwLock<APart>],
        csr_offsets: &[u32],
        csr_data: &[u32],
        part: &mut BPart,
    ) {
        let n_correct = self.cfg.correct();
        let view_push = self.cfg.view_push();
        let view_pull = self.cfg.view_pull();
        let hi_c = hi.min(n_correct);
        part.new_m.clear_all();
        part.fakes_push = 0;
        part.fakes_pull = 0;
        if !part.reply_valid.is_empty() {
            part.reply_valid.fill(0);
            part.reply_with_m.fill(0);
        }
        if view_push > 0 {
            // Pre-merge the per-sender-shard push tallies for the owned
            // range: one sequential sweep per sender shard (read locks are
            // shared, so every receiver shard sweeps concurrently) instead
            // of a strided gather per target. Saturating adds commute, so
            // the sums are independent of both sweep and shard order.
            let lo_c = lo.min(hi_c);
            part.sum_valid.clear();
            part.sum_valid.resize(hi_c - lo_c, 0);
            part.sum_with_m.clear();
            part.sum_with_m.resize(hi_c - lo_c, 0);
            for a in a_parts {
                let a = read(a);
                for (dst, &src) in part.sum_valid.iter_mut().zip(&a.push_valid[lo_c..hi_c]) {
                    *dst = dst.saturating_add(src);
                }
                for (dst, &src) in part.sum_with_m.iter_mut().zip(&a.push_with_m[lo_c..hi_c]) {
                    *dst = dst.saturating_add(src);
                }
            }
        }
        for t in lo..hi_c {
            if view_push > 0 && !self.has_m.get(t) {
                let mut rng = stream(ctx.round_key, STREAM_PUSH_ACCEPT, t);
                let fakes = if self.attacked.get(t) && ctx.x_push > 0.0 {
                    binomial(randomized_round(ctx.x_push, &mut rng), ctx.ok, &mut rng)
                } else {
                    0
                };
                part.fakes_push += fakes as u64;
                let valid = part.sum_valid[t - lo] as usize;
                let with_m = part.sum_with_m[t - lo] as usize;
                let acc = accepted_valid(valid, fakes, view_push, &mut rng);
                if with_m > 0 && any_interesting(with_m, valid - with_m, acc, &mut rng) {
                    part.new_m.set(t);
                }
            }
            if view_pull > 0 {
                let mut rng = stream(ctx.round_key, STREAM_PULL_SERVE, t);
                let (start, end) = (csr_offsets[t] as usize, csr_offsets[t + 1] as usize);
                part.serve_buf.clear();
                part.serve_buf.extend_from_slice(&csr_data[start..end]);
                let fakes = if self.attacked.get(t) && ctx.x_req > 0.0 {
                    binomial(randomized_round(ctx.x_req, &mut rng), ctx.ok, &mut rng)
                } else {
                    0
                };
                part.fakes_pull += fakes as u64;
                let acc = accepted_valid(part.serve_buf.len(), fakes, view_pull, &mut rng);
                partial_shuffle(&mut part.serve_buf, acc, &mut rng);
                let target_has_m = self.has_m.get(t);
                for i in 0..acc.min(part.serve_buf.len()) {
                    let p = part.serve_buf[i] as usize;
                    // The reply travels back; subject to link loss.
                    if !rng_chance(&mut rng, ctx.ok) {
                        continue;
                    }
                    if self.cfg.random_ports {
                        // Random reply port: always processed. `p` may live
                        // in any shard's range; fragments are full-length
                        // and OR-merged, so cross-shard sets are fine.
                        if target_has_m && !self.has_m.get(p) {
                            part.new_m.set(p);
                        }
                    } else {
                        // Well-known reply port: contends with fakes in
                        // phase C after a cross-shard tally merge.
                        part.reply_valid[p] = part.reply_valid[p].saturating_add(1);
                        if target_has_m {
                            part.reply_with_m[p] = part.reply_with_m[p].saturating_add(1);
                        }
                    }
                }
            }
        }
    }

    /// Reply-acceptance phase for one shard (no-random-ports ablation
    /// only): the owned requesters contend fabricated reply-port traffic
    /// against the merged valid-reply tallies.
    fn phase_c(
        &self,
        ctx: RoundCtx,
        lo: usize,
        hi: usize,
        reply_valid: &[u16],
        reply_with_m: &[u16],
        part: &mut BPart,
    ) {
        let n_correct = self.cfg.correct();
        let view_pull = self.cfg.view_pull();
        for p in lo..hi.min(n_correct) {
            if self.has_m.get(p) {
                continue;
            }
            let mut rng = stream(ctx.round_key, STREAM_REPLY_ACCEPT, p);
            let fakes = if self.attacked.get(p) && ctx.x_reply > 0.0 {
                binomial(randomized_round(ctx.x_reply, &mut rng), ctx.ok, &mut rng)
            } else {
                0
            };
            part.fakes_pull += fakes as u64;
            let valid = reply_valid[p] as usize;
            let with_m = reply_with_m[p] as usize;
            let acc = accepted_valid(valid, fakes, view_pull, &mut rng);
            if with_m > 0 && any_interesting(with_m, valid - with_m, acc, &mut rng) {
                part.new_m.set(p);
            }
        }
    }

    /// Executes one synchronized gossip round with the process range
    /// sharded across `pool` workers.
    ///
    /// Every `(phase, process)` pair draws from its own counter-derived
    /// stream keyed on `(trial_seed, round)`, and partials merge in fixed
    /// ascending shard order, so the outcome is byte-identical for any
    /// worker count *and* any shard count — `DRUM_POOL_THREADS=1` with
    /// `shards=1` is a valid oracle for a 16-way parallel run. (The stream
    /// differs from the serial [`SimState::step`], which remains the
    /// seed-implementation oracle behind `DRUM_SIM_SHARDS=1`.)
    pub fn step_sharded(&mut self, trial_seed: u64, shards: usize, pool: &Pool) {
        let n = self.cfg.n;
        let shards = shards.clamp(1, n);
        let ok = 1.0 - self.cfg.loss;
        self.round += 1;

        let round_key = rand::rngs::derive_stream_key(&[trial_seed, u64::from(self.round)]);
        let mut control = stream(round_key, STREAM_CONTROL, 0);
        self.control_phase(&mut control);

        self.new_m.clear_all();
        self.ensure_sharded_scratch(shards);

        let (x_req, x_reply) = if self.cfg.random_ports {
            (self.adv_x_pull, 0.0)
        } else {
            (self.adv_x_pull / 2.0, self.adv_x_pull / 2.0)
        };
        let ctx = RoundCtx {
            round_key,
            ok,
            x_push: self.adv_x_push,
            x_req,
            x_reply,
        };
        let n_correct = self.cfg.correct();
        let view_pull = self.cfg.view_pull();

        // Detach the scratch from `self` so the pool jobs can borrow the
        // rest of the state immutably while each writes its own partial.
        let mut a_parts = core::mem::take(&mut self.a_parts);
        let mut b_parts = core::mem::take(&mut self.b_parts);
        let mut csr_offsets = core::mem::take(&mut self.csr_offsets);
        let mut csr_cursor = core::mem::take(&mut self.csr_cursor);
        let mut csr_data = core::mem::take(&mut self.csr_data);

        // --- Phase A: sender-side draws, sharded over the sender range.
        {
            let state = &*self;
            let a_parts = &a_parts;
            pool.run(shards, &|s| {
                let (lo, hi) = shard_range(n, shards, s);
                state.phase_a(ctx, lo, hi, &mut write(&a_parts[s]));
            });
        }

        // --- Deterministic CSR merge of pull requests: count, prefix-sum,
        // fill, walking shards in ascending order. Contiguous ascending
        // shard ranges + ascending senders within a shard give a globally
        // ascending requester order per target, independent of the shard
        // count — the same request list the serial stepper would build.
        if view_pull > 0 {
            csr_offsets.clear();
            csr_offsets.resize(n_correct + 1, 0);
            for m in &mut a_parts {
                for &(t, _) in &rw_mut(m).requests {
                    csr_offsets[t as usize + 1] += 1;
                }
            }
            for i in 0..n_correct {
                csr_offsets[i + 1] += csr_offsets[i];
            }
            csr_cursor.clear();
            csr_cursor.extend_from_slice(&csr_offsets[..n_correct]);
            csr_data.clear();
            csr_data.resize(csr_offsets[n_correct] as usize, 0);
            for m in &mut a_parts {
                for &(t, p) in &rw_mut(m).requests {
                    let slot = &mut csr_cursor[t as usize];
                    csr_data[*slot as usize] = p;
                    *slot += 1;
                }
            }
        }

        // --- Phase B: receiver-side acceptance, sharded over targets.
        {
            let state = &*self;
            let a_parts = a_parts.as_slice();
            let b_parts = &b_parts;
            let csr_offsets = csr_offsets.as_slice();
            let csr_data = csr_data.as_slice();
            pool.run(shards, &|s| {
                let (lo, hi) = shard_range(n, shards, s);
                state.phase_b(
                    ctx,
                    lo,
                    hi,
                    a_parts,
                    csr_offsets,
                    csr_data,
                    &mut lock(&b_parts[s]),
                );
            });
        }

        // --- Phase C (no-random-ports only): merge reply tallies across
        // shards in ascending order, then contend reply-port fakes.
        if !self.cfg.random_ports && view_pull > 0 {
            let mut rv = core::mem::take(&mut self.reply_merge_valid);
            let mut rw = core::mem::take(&mut self.reply_merge_with_m);
            rv.clear();
            rv.resize(n_correct, 0);
            rw.clear();
            rw.resize(n_correct, 0);
            for m in &mut b_parts {
                let part = lock_mut(m);
                for (dst, &src) in rv.iter_mut().zip(&part.reply_valid) {
                    *dst = dst.saturating_add(src);
                }
                for (dst, &src) in rw.iter_mut().zip(&part.reply_with_m) {
                    *dst = dst.saturating_add(src);
                }
            }
            {
                let state = &*self;
                let b_parts = &b_parts;
                let rv = rv.as_slice();
                let rw = rw.as_slice();
                pool.run(shards, &|s| {
                    let (lo, hi) = shard_range(n, shards, s);
                    state.phase_c(ctx, lo, hi, rv, rw, &mut lock(&b_parts[s]));
                });
            }
            self.reply_merge_valid = rv;
            self.reply_merge_with_m = rw;
        }

        // --- Final merge: OR the delivery fragments and sum the fake
        // totals in ascending shard order.
        let mut fakes_push_total = 0u64;
        let mut fakes_pull_total = 0u64;
        for m in &mut b_parts {
            let part = lock_mut(m);
            self.new_m.or_with(&part.new_m);
            fakes_push_total += part.fakes_push;
            fakes_pull_total += part.fakes_pull;
        }

        self.a_parts = a_parts;
        self.b_parts = b_parts;
        self.csr_offsets = csr_offsets;
        self.csr_cursor = csr_cursor;
        self.csr_data = csr_data;

        self.deliver_and_trace(fakes_push_total, fakes_pull_total);
    }
}

#[inline]
fn rng_chance(rng: &mut SmallRng, p: f64) -> bool {
    use rand::RngExt;
    p >= 1.0 || rng.random_bool(p)
}

/// Moves a uniform random `k`-subset to the front of `v` (partial
/// Fisher-Yates).
fn partial_shuffle(v: &mut [u32], k: usize, rng: &mut SmallRng) {
    use rand::RngExt;
    let k = k.min(v.len());
    for i in 0..k {
        let j = rng.random_range(i..v.len());
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Role;
    use drum_core::ProtocolVariant;

    fn run(cfg: SimConfig, seed: u64, max_rounds: u32) -> (SimState, u32) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut state = SimState::new(cfg);
        let mut rounds = 0;
        while state.fraction_with_m() < state.config().threshold && rounds < max_rounds {
            state.step(&mut rng);
            rounds += 1;
        }
        (state, rounds)
    }

    fn run_sharded(
        cfg: SimConfig,
        seed: u64,
        max_rounds: u32,
        shards: usize,
        pool: &Pool,
    ) -> (SimState, u32) {
        let mut state = SimState::new(cfg);
        let mut rounds = 0;
        while state.fraction_with_m() < state.config().threshold && rounds < max_rounds {
            state.step_sharded(seed, shards, pool);
            rounds += 1;
        }
        (state, rounds)
    }

    /// Byte-comparable digest of a trial's observable end state.
    fn fingerprint(state: &SimState) -> (u32, usize, usize, Vec<u64>) {
        (
            state.round(),
            state.correct_with_m(),
            state.attacked_with_m(),
            state.has_m.words().to_vec(),
        )
    }

    #[test]
    fn initial_state_only_source() {
        let state = SimState::new(SimConfig::baseline(ProtocolVariant::Drum, 50));
        assert_eq!(state.correct_with_m(), 1);
        assert!(state.has_m(0));
        assert!(!state.has_m(1));
        assert_eq!(state.round(), 0);
    }

    #[test]
    fn all_protocols_disseminate_without_failures() {
        for p in [
            ProtocolVariant::Drum,
            ProtocolVariant::Push,
            ProtocolVariant::Pull,
        ] {
            let (state, rounds) = run(SimConfig::baseline(p, 120), 7, 100);
            assert!(
                state.fraction_with_m() >= 0.99,
                "{p} stuck at {}",
                state.fraction_with_m()
            );
            assert!(rounds <= 20, "{p} took {rounds} rounds");
        }
    }

    #[test]
    fn propagation_is_logarithmic_ish() {
        // Figure 2(a): rounds grow slowly (log) with n.
        let r = |n| {
            let mut total = 0;
            for seed in 0..5 {
                total += run(SimConfig::baseline(ProtocolVariant::Drum, n), seed, 200).1;
            }
            total as f64 / 5.0
        };
        let r50 = r(50);
        let r800 = r(800);
        assert!(r800 < r50 * 3.0, "r50={r50} r800={r800}");
    }

    #[test]
    fn crashes_degrade_gracefully() {
        // Figure 2(b): even 40% crashed processes only slow things down.
        let mut cfg = SimConfig::baseline(ProtocolVariant::Drum, 200);
        cfg.crashed = 80;
        let (state, rounds) = run(cfg, 3, 200);
        assert!(
            state.fraction_with_m() >= 0.99,
            "stuck at {}",
            state.fraction_with_m()
        );
        assert!(rounds < 40);
    }

    #[test]
    fn malicious_members_do_not_block_dissemination() {
        let mut cfg = SimConfig::baseline(ProtocolVariant::Drum, 200);
        cfg.malicious = 20;
        let (state, _) = run(cfg, 3, 200);
        assert!(state.fraction_with_m() >= 0.99);
    }

    #[test]
    fn targeted_attack_slows_push_much_more_than_drum() {
        // The core claim (Figure 3(a)) at small scale: α=10%, strong x.
        let avg = |proto| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let cfg = SimConfig::paper_attack(proto, 120, 256.0);
                run(cfg, seed, 400).1 as f64
            })
        };
        let drum = avg(ProtocolVariant::Drum);
        let push = avg(ProtocolVariant::Push);
        assert!(
            push > drum * 2.0,
            "push {push} should be much slower than drum {drum}"
        );
    }

    #[test]
    fn attacked_source_blocks_pull_exit() {
        // Under a strong attack on the source, Pull takes many rounds for M
        // to leave the source at all (geometric with small p̃).
        let cfg = SimConfig::paper_attack(ProtocolVariant::Pull, 120, 256.0);
        let mut slow_exits = 0;
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut state = SimState::new(cfg.clone());
            let mut exit_round = None;
            for r in 1..=100 {
                state.step(&mut rng);
                if state.correct_with_m() > 1 {
                    exit_round = Some(r);
                    break;
                }
            }
            if exit_round.unwrap_or(101) > 3 {
                slow_exits += 1;
            }
        }
        assert!(
            slow_exits >= 3,
            "expected several slow source exits, got {slow_exits}"
        );
    }

    #[test]
    fn no_random_ports_variant_is_slower_under_attack() {
        let avg = |random_ports: bool| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 256.0);
                cfg.random_ports = random_ports;
                run(cfg, seed, 400).1 as f64
            })
        };
        let with_ports = avg(true);
        let without = avg(false);
        assert!(
            without > with_ports * 1.3,
            "no-random-ports {without} should be slower than {with_ports}"
        );
    }

    #[test]
    fn attacked_and_unattacked_counts_consistent() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 64.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut state = SimState::new(cfg);
        for _ in 0..10 {
            state.step(&mut rng);
            assert_eq!(
                state.correct_with_m(),
                state.attacked_with_m() + state.unattacked_with_m()
            );
        }
    }

    #[test]
    fn incremental_counters_match_full_recount() {
        // The counters are maintained at delivery time and rebuilt on
        // rotation; they must agree with a from-scratch scan at every
        // round, including across rotation boundaries.
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 80, 64.0);
        cfg.attack.as_mut().unwrap().rotate_every = Some(2);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut state = SimState::new(cfg);
        for _ in 0..20 {
            state.step(&mut rng);
            let correct: usize = (0..state.config().n)
                .filter(|&i| state.is_correct(i) && state.has_m(i))
                .count();
            let attacked: usize = (0..state.config().n)
                .filter(|&i| state.is_attacked(i) && state.has_m(i))
                .count();
            assert_eq!(state.correct_with_m(), correct);
            assert_eq!(state.attacked_with_m(), attacked);
        }
    }

    #[test]
    fn partial_shuffle_selects_uniform_prefix() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let mut v = [0u32, 1, 2, 3, 4];
            partial_shuffle(&mut v, 2, &mut rng);
            counts[v[0] as usize] += 1;
            counts[v[1] as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let p = *c as f64 / 100_000.0;
            assert!((p - 0.2).abs() < 0.01, "element {i}: {p}");
        }
    }

    #[test]
    fn rotating_adversary_moves_targets() {
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 60, 64.0);
        cfg.attack.as_mut().unwrap().rotate_every = Some(2);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut state = SimState::new(cfg.clone());
        let initial: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
        assert_eq!(initial.len(), 6);
        // Run past a rotation boundary; the attacked set should change at
        // some point (probability of re-drawing the same 6-subset is ~0).
        let mut changed = false;
        for _ in 0..10 {
            state.step(&mut rng);
            let now: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
            assert_eq!(now.len(), 6, "target count must be preserved");
            // Targets are always correct processes.
            for &t in &now {
                assert!(matches!(
                    cfg.role_of(t),
                    Role::AttackedCorrect | Role::Correct
                ));
            }
            if now != initial {
                changed = true;
            }
        }
        assert!(changed, "rotation never changed the target set");
    }

    #[test]
    fn rotating_attack_does_not_beat_static_against_drum() {
        // The extension's finding: moving the attack around gains nothing.
        let mean = |rotate: Option<u32>| {
            drum_testkit::mean_over_seeds(0..10, |seed| {
                let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
                cfg.attack.as_mut().unwrap().rotate_every = rotate;
                run(cfg, seed, 400).1 as f64
            })
        };
        let static_attack = mean(None);
        let rotating = mean(Some(1));
        assert!(
            rotating < static_attack + 3.0,
            "rotation should not help the adversary: static {static_attack:.1} vs rotating {rotating:.1}"
        );
    }

    #[test]
    fn eclipse_attacks_only_the_source() {
        use crate::adversary::AdversaryKind;
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 60, 64.0)
            .with_adversary(AdversaryKind::Eclipse);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut state = SimState::new(cfg);
        for _ in 0..5 {
            state.step(&mut rng);
            let attacked: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
            assert_eq!(attacked, vec![0], "eclipse must pin the source alone");
        }
    }

    #[test]
    fn chasing_adversary_tracks_the_frontier() {
        use crate::adversary::AdversaryKind;
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 60, 64.0)
            .with_adversary(AdversaryKind::TargetChasing { every: 1 });
        let mut rng = SmallRng::seed_from_u64(11);
        let mut state = SimState::new(cfg.clone());
        // Early rounds: far more than 6 processes lack M, so every chased
        // target must be one of them. Targets are re-drawn at the top of
        // the round, so check against the *pre-step* frontier.
        for _ in 0..3 {
            let frontier: Vec<usize> = (0..60)
                .filter(|&i| state.is_correct(i) && !state.has_m(i))
                .collect();
            assert!(frontier.len() > 6);
            state.step(&mut rng);
            let targets: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
            assert_eq!(targets.len(), 6, "target count must be preserved");
            for &t in &targets {
                assert!(
                    frontier.contains(&t),
                    "chased target {t} already held M at round start"
                );
            }
        }
    }

    #[test]
    fn adaptive_adversaries_do_not_break_drum_bounds() {
        use crate::adversary::AdversaryKind;
        // The tentpole claim (extension beyond the paper): none of the
        // adaptive strategies slows Drum catastrophically relative to the
        // paper's static flood at the same total budget.
        let mean = |kind: AdversaryKind| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let cfg =
                    SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0).with_adversary(kind);
                run(cfg, seed, 400).1 as f64
            })
        };
        let static_rounds = mean(AdversaryKind::Static);
        for kind in [
            AdversaryKind::TargetChasing { every: 1 },
            AdversaryKind::Eclipse,
            AdversaryKind::PullAbuse,
            AdversaryKind::Replay,
        ] {
            let adaptive = mean(kind);
            assert!(
                adaptive < static_rounds * 2.0 + 5.0,
                "{} broke Drum's bound: {adaptive:.1} rounds vs static {static_rounds:.1}",
                kind.name()
            );
        }
    }

    #[test]
    fn pull_abuse_hurts_pull_more_than_drum() {
        use crate::adversary::AdversaryKind;
        // Where the bound story differs by protocol: the all-pull budget
        // lands on Pull's only channel but just one of Drum's two.
        let mean = |proto| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let cfg = SimConfig::paper_attack(proto, 120, 128.0)
                    .with_adversary(AdversaryKind::PullAbuse);
                run(cfg, seed, 400).1 as f64
            })
        };
        let drum = mean(ProtocolVariant::Drum);
        let pull = mean(ProtocolVariant::Pull);
        assert!(
            pull > drum * 1.5,
            "pull-abuse should hurt Pull ({pull:.1}) more than Drum ({drum:.1})"
        );
    }

    #[test]
    fn fraction_never_decreases() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut state = SimState::new(cfg);
        let mut prev = state.fraction_with_m();
        for _ in 0..30 {
            state.step(&mut rng);
            let now = state.fraction_with_m();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn fraction_with_m_zero_correct_is_zero_not_nan() {
        // Degenerate all-crashed/all-malicious population: `validate()`
        // rejects it, but experiment code can build such a config directly
        // (the fields are public). The fraction must clamp to 0.0, not NaN.
        let mut cfg = SimConfig::baseline(ProtocolVariant::Drum, 10);
        cfg.crashed = 6;
        cfg.malicious = 4;
        assert_eq!(cfg.correct(), 0);
        assert_eq!(cfg.fraction_of_correct(0), 0.0);
        assert!(cfg.fraction_of_correct(0).is_finite());
    }

    #[test]
    fn reset_restores_round_zero_state() {
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 80, 64.0);
        cfg.attack.as_mut().unwrap().rotate_every = Some(2);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut state = SimState::new(cfg.clone());
        for _ in 0..8 {
            state.step(&mut rng);
        }
        state.reset();
        // Round-0 invariants hold again...
        assert_eq!(state.round(), 0);
        assert_eq!(state.correct_with_m(), 1);
        assert!(state.has_m(0));
        let attacked: Vec<usize> = (0..80).filter(|&i| state.is_attacked(i)).collect();
        assert_eq!(attacked, (0..8).collect::<Vec<_>>());
        // ...and a re-run from the same seed is byte-identical to a fresh
        // state (scratch reuse must not leak between trials).
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let mut fresh = SimState::new(cfg);
        for _ in 0..12 {
            state.step(&mut rng_a);
            fresh.step(&mut rng_b);
        }
        assert_eq!(fingerprint(&state), fingerprint(&fresh));
    }

    #[test]
    fn sharded_reset_reuse_matches_fresh_state() {
        let pool = Pool::new(3);
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 90, 64.0);
        let mut reused = SimState::new(cfg.clone());
        for _ in 0..6 {
            reused.step_sharded(111, 4, &pool);
        }
        reused.reset();
        let mut fresh = SimState::new(cfg);
        for _ in 0..10 {
            reused.step_sharded(222, 4, &pool);
            fresh.step_sharded(222, 4, &pool);
        }
        assert_eq!(fingerprint(&reused), fingerprint(&fresh));
    }

    #[test]
    fn sharded_matches_across_shard_counts() {
        // The tentpole invariant: the sharded stepper is a pure function of
        // (config, trial_seed) — the shard count never shows through.
        let pool = Pool::new(2);
        for cfg in [
            SimConfig::baseline(ProtocolVariant::Drum, 150),
            SimConfig::paper_attack(ProtocolVariant::Drum, 150, 64.0),
            SimConfig::paper_attack(ProtocolVariant::Push, 150, 64.0),
            SimConfig::paper_attack(ProtocolVariant::Pull, 150, 64.0),
        ] {
            let reference = run_sharded(cfg.clone(), 42, 60, 1, &pool);
            for shards in [2, 3, 7, 16, 150] {
                let other = run_sharded(cfg.clone(), 42, 60, shards, &pool);
                assert_eq!(
                    fingerprint(&reference.0),
                    fingerprint(&other.0),
                    "{:?} diverged at {shards} shards",
                    cfg.protocol
                );
                assert_eq!(reference.1, other.1);
            }
        }
    }

    #[test]
    fn sharded_matches_across_shard_counts_no_random_ports() {
        // The reply-accept phase (phase C) only runs in the
        // no-random-ports ablation; cover its merge path too.
        let pool = Pool::new(3);
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 64.0);
        cfg.random_ports = false;
        let reference = run_sharded(cfg.clone(), 7, 80, 1, &pool);
        for shards in [3, 5, 16] {
            let other = run_sharded(cfg.clone(), 7, 80, shards, &pool);
            assert_eq!(fingerprint(&reference.0), fingerprint(&other.0));
        }
    }

    #[test]
    fn sharded_matches_with_rotation_and_adversaries() {
        use crate::adversary::AdversaryKind;
        // Mid-trial rotate_targets and adaptive retargeting draw from the
        // control stream only; the partition must still never show.
        let pool = Pool::new(3);
        let mut rotating = SimConfig::paper_attack(ProtocolVariant::Drum, 100, 64.0);
        rotating.attack.as_mut().unwrap().rotate_every = Some(3);
        let chasing = SimConfig::paper_attack(ProtocolVariant::Drum, 100, 64.0)
            .with_adversary(AdversaryKind::TargetChasing { every: 2 });
        for cfg in [rotating, chasing] {
            let reference = run_sharded(cfg.clone(), 13, 60, 1, &pool);
            for shards in [4, 9] {
                let other = run_sharded(cfg.clone(), 13, 60, shards, &pool);
                assert_eq!(fingerprint(&reference.0), fingerprint(&other.0));
            }
        }
    }

    #[test]
    fn sharded_disseminates_like_serial() {
        // Different streams, same distribution: both steppers must reach
        // the 99% threshold in a comparable number of rounds.
        let pool = Pool::new(2);
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 150, 64.0);
        let serial =
            drum_testkit::mean_over_seeds(0..6, |seed| run(cfg.clone(), seed, 200).1 as f64);
        let sharded = drum_testkit::mean_over_seeds(0..6, |seed| {
            run_sharded(cfg.clone(), seed, 200, 4, &pool).1 as f64
        });
        assert!(
            (serial - sharded).abs() < serial.max(sharded) * 0.5 + 3.0,
            "steppers statistically diverged: serial {serial:.1} vs sharded {sharded:.1}"
        );
    }

    #[test]
    fn sharded_counters_match_full_recount() {
        let pool = Pool::new(3);
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 110, 64.0);
        cfg.attack.as_mut().unwrap().rotate_every = Some(2);
        let mut state = SimState::new(cfg);
        for _ in 0..15 {
            state.step_sharded(5, 6, &pool);
            let correct = state.has_m.count_range(0, state.config().correct());
            let attacked: usize = (0..state.config().n)
                .filter(|&i| state.is_attacked(i) && state.has_m(i))
                .count();
            assert_eq!(state.correct_with_m(), correct);
            assert_eq!(state.attacked_with_m(), attacked);
        }
    }

    #[test]
    fn shard_range_partitions_exactly() {
        for n in [1usize, 7, 64, 65, 1000] {
            for shards in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                for s in 0..shards {
                    let (lo, hi) = shard_range(n, shards, s);
                    assert!(lo <= hi && hi <= n);
                    assert_eq!(lo, covered, "gap at shard {s} of {shards} over {n}");
                    covered = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
