//! Figure 9: simulations vs measurements, n = 50.
//!
//! Runs the same attacked scenarios through (i) the round-synchronized
//! simulator and (ii) the real threaded UDP runtime with unsynchronized
//! rounds and the full push-offer handshake, and compares the average
//! propagation time (in rounds) to 99% of the correct processes.
//!
//! The measured rounds use the paper's §8.1 round-counter accounting.

use std::time::Duration;

use drum_bench::{banner, scaled, trials, PROTOCOLS, PROTOCOL_NAMES, SEED};
use drum_metrics::table::Table;
use drum_net::experiment::{paper_cluster_config, propagation_experiment};
use drum_sim::config::SimConfig;
use drum_sim::runner::run_experiment;

fn main() {
    banner("Figure 9", "simulation vs measurement, n = 50");
    let n = 50;
    let sim_trials = trials();
    let messages = scaled(5, 40);
    let round = Duration::from_millis(scaled(80, 150));

    let xs: Vec<f64> = scaled(vec![0.0, 64.0, 128.0], vec![0.0, 32.0, 64.0, 128.0, 256.0]);
    println!("(a) alpha = 10%, rounds to 99% vs x  [sim | measured]");
    let mut table = Table::new(
        std::iter::once("x".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|p| format!("{p} sim/net")))
            .collect(),
    );
    for &x in &xs {
        let mut cells = vec![format!("{x:.0}")];
        for &p in &PROTOCOLS {
            let sim_cfg = if x == 0.0 {
                let mut c = SimConfig::baseline(p, n);
                c.malicious = n / 10;
                c
            } else {
                SimConfig::paper_attack(p, n, x)
            };
            let sim = run_experiment(&sim_cfg, sim_trials, SEED, 0).mean_rounds();

            let net_cfg =
                paper_cluster_config(p, n, if x == 0.0 { 0 } else { n / 10 }, x, round, SEED);
            let report =
                propagation_experiment(net_cfg, messages, 2, Duration::from_secs(scaled(15, 120)))
                    .expect("cluster failed");
            let net = if report.rounds_to_99.count() > 0 {
                format!("{:.1}", report.rounds_to_99.mean())
            } else {
                ">to".into()
            };
            cells.push(format!("{sim:.1} / {net}"));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("paper: measurement tracks simulation closely for all protocols\n");

    let alphas: Vec<f64> = scaled(vec![0.1, 0.4], vec![0.1, 0.2, 0.4, 0.6, 0.8]);
    println!("(b) x = 128, rounds to 99% vs alpha  [sim | measured]");
    let mut table = Table::new(
        std::iter::once("alpha".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|p| format!("{p} sim/net")))
            .collect(),
    );
    for &alpha in &alphas {
        let mut cells = vec![format!("{alpha}")];
        let attacked = ((n as f64) * alpha).round() as usize;
        for &p in &PROTOCOLS {
            let sim_cfg = SimConfig::attack_alpha(p, n, alpha, 128.0);
            let sim = run_experiment(&sim_cfg, sim_trials, SEED, 0).mean_rounds();

            let net_cfg = paper_cluster_config(p, n, attacked, 128.0, round, SEED);
            let report =
                propagation_experiment(net_cfg, messages, 2, Duration::from_secs(scaled(20, 180)))
                    .expect("cluster failed");
            let net = if report.rounds_to_99.count() > 0 {
                format!("{:.1}", report.rounds_to_99.mean())
            } else {
                ">to".into()
            };
            cells.push(format!("{sim:.1} / {net}"));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("('>to' marks timed-out measurements — Pull under heavy source attack)");
}
