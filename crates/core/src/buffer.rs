//! The per-process message buffer.
//!
//! Upon delivering a new data message a process "saves it in its message
//! buffer for a number of rounds" (§4); in the measurement configuration
//! messages are purged after 10 rounds and at most 80 randomly chosen new
//! messages are sent to each gossip partner per round (§8.2).

use rand::seq::index;
use rand::Rng;
use std::collections::HashMap;

use crate::digest::Digest;
use crate::ids::{MessageId, Round};
use crate::message::DataMessage;

/// A bounded, age-purged store of data messages.
///
/// # Examples
///
/// ```
/// use drum_core::bytes::Bytes;
/// use drum_core::buffer::MessageBuffer;
/// use drum_core::ids::{MessageId, ProcessId, Round};
/// use drum_core::message::DataMessage;
/// use drum_crypto::auth::AuthTag;
///
/// let mut buf = MessageBuffer::new(10);
/// let msg = DataMessage {
///     id: MessageId::new(ProcessId(1), 0),
///     hops: 0,
///     payload: Bytes::from_static(b"hello"),
///     auth: AuthTag::zero(),
/// };
/// assert!(buf.insert(msg, Round(0)));
/// assert_eq!(buf.len(), 1);
/// buf.purge(Round(11));
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageBuffer {
    /// Stored messages with the round they were inserted.
    entries: HashMap<MessageId, (DataMessage, Round)>,
    /// Digest of everything *ever* inserted (survives purging), used to
    /// avoid re-delivering a purged message that gossips back in.
    seen: Digest,
    /// Messages are purged once `now - inserted >= max_age` rounds.
    max_age: u64,
}

impl MessageBuffer {
    /// Creates a buffer that retains messages for `max_age` rounds.
    /// `max_age = 0` means "never purge" (the analysis/simulation setting
    /// where `M` is never purged).
    pub fn new(max_age: u64) -> Self {
        MessageBuffer {
            entries: HashMap::new(),
            seen: Digest::new(),
            max_age,
        }
    }

    /// Inserts a message at local round `now`.
    ///
    /// Returns `true` if the message is *new* (never seen before); `false`
    /// if it is a duplicate or was already seen and purged. Duplicates are
    /// not re-inserted.
    pub fn insert(&mut self, msg: DataMessage, now: Round) -> bool {
        if !self.seen.insert(msg.id) {
            return false;
        }
        self.entries.insert(msg.id, (msg, now));
        true
    }

    /// Whether `id` has ever been seen (even if since purged).
    pub fn seen(&self, id: MessageId) -> bool {
        self.seen.contains(id)
    }

    /// Whether `id` is currently buffered.
    pub fn contains(&self, id: MessageId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Fetches a buffered message.
    pub fn get(&self, id: MessageId) -> Option<&DataMessage> {
        self.entries.get(&id).map(|(m, _)| m)
    }

    /// Number of currently buffered messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Digest of the currently buffered messages (what a pull-request or
    /// push-reply advertises).
    pub fn digest(&self) -> Digest {
        self.entries.keys().copied().collect()
    }

    /// Digest of everything ever seen.
    pub fn seen_digest(&self) -> &Digest {
        &self.seen
    }

    /// Removes messages older than the retention age. Returns how many were
    /// purged. A `max_age` of 0 disables purging.
    pub fn purge(&mut self, now: Round) -> usize {
        if self.max_age == 0 {
            return 0;
        }
        let max_age = self.max_age;
        let before = self.entries.len();
        self.entries
            .retain(|_, (_, inserted)| now.since(*inserted) < max_age);
        before - self.entries.len()
    }

    /// Increments the round counter (`hops`) of every buffered message —
    /// the paper's §8.1 accounting, performed once per local round.
    pub fn increment_hops(&mut self) {
        for (msg, _) in self.entries.values_mut() {
            msg.hops = msg.hops.saturating_add(1);
        }
    }

    /// Selects up to `max` random buffered messages that are *missing* from
    /// `their_digest` — the messages to push or to include in a pull-reply.
    pub fn select_missing<R: Rng + ?Sized>(
        &self,
        their_digest: &Digest,
        max: usize,
        rng: &mut R,
    ) -> Vec<DataMessage> {
        let candidates: Vec<&DataMessage> = self
            .entries
            .values()
            .map(|(m, _)| m)
            .filter(|m| !their_digest.contains(m.id))
            .collect();
        if candidates.len() <= max {
            return candidates.into_iter().cloned().collect();
        }
        index::sample(rng, candidates.len(), max)
            .iter()
            .map(|i| candidates[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::ids::ProcessId;
    use drum_crypto::auth::AuthTag;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn msg(source: u64, seq: u64) -> DataMessage {
        DataMessage {
            id: MessageId::new(ProcessId(source), seq),
            hops: 0,
            payload: Bytes::from_static(b"x"),
            auth: AuthTag::zero(),
        }
    }

    #[test]
    fn insert_and_duplicate() {
        let mut buf = MessageBuffer::new(10);
        assert!(buf.insert(msg(1, 0), Round(0)));
        assert!(!buf.insert(msg(1, 0), Round(0)));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn purge_by_age() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(1, 1), Round(5));
        assert_eq!(buf.purge(Round(9)), 0);
        assert_eq!(buf.purge(Round(10)), 1); // seq 0 is 10 rounds old
        assert!(buf.contains(MessageId::new(ProcessId(1), 1)));
        assert_eq!(buf.purge(Round(15)), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn zero_age_never_purges() {
        let mut buf = MessageBuffer::new(0);
        buf.insert(msg(1, 0), Round(0));
        assert_eq!(buf.purge(Round(1_000_000)), 0);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn purged_message_not_reinserted() {
        let mut buf = MessageBuffer::new(1);
        buf.insert(msg(1, 0), Round(0));
        buf.purge(Round(5));
        assert!(buf.is_empty());
        // Gossip brings the old message back: it must be recognized as seen.
        assert!(!buf.insert(msg(1, 0), Round(5)));
        assert!(buf.is_empty());
        assert!(buf.seen(MessageId::new(ProcessId(1), 0)));
    }

    #[test]
    fn digest_reflects_buffer() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(2, 3), Round(0));
        let d = buf.digest();
        assert!(d.contains(MessageId::new(ProcessId(1), 0)));
        assert!(d.contains(MessageId::new(ProcessId(2), 3)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn select_missing_excludes_known() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(1, 1), Round(0));
        let mut their = Digest::new();
        their.insert(MessageId::new(ProcessId(1), 0));
        let mut rng = SmallRng::seed_from_u64(1);
        let selected = buf.select_missing(&their, 10, &mut rng);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].id, MessageId::new(ProcessId(1), 1));
    }

    #[test]
    fn select_missing_respects_max() {
        let mut buf = MessageBuffer::new(10);
        for seq in 0..100 {
            buf.insert(msg(1, seq), Round(0));
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let selected = buf.select_missing(&Digest::new(), 7, &mut rng);
        assert_eq!(selected.len(), 7);
        // All distinct.
        let mut ids: Vec<MessageId> = selected.iter().map(|m| m.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn select_missing_random_subset_varies() {
        let mut buf = MessageBuffer::new(10);
        for seq in 0..50 {
            buf.insert(msg(1, seq), Round(0));
        }
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(2);
        let s1: Vec<MessageId> = buf
            .select_missing(&Digest::new(), 5, &mut rng1)
            .iter()
            .map(|m| m.id)
            .collect();
        let s2: Vec<MessageId> = buf
            .select_missing(&Digest::new(), 5, &mut rng2)
            .iter()
            .map(|m| m.id)
            .collect();
        // Overwhelmingly likely to differ for 50-choose-5.
        assert_ne!(s1, s2);
    }

    #[test]
    fn hops_increment() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.increment_hops();
        buf.increment_hops();
        assert_eq!(buf.get(MessageId::new(ProcessId(1), 0)).unwrap().hops, 2);
    }
}
