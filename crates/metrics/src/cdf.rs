//! Empirical cumulative distribution functions.
//!
//! The paper presents several CDFs: the fraction of correct processes that
//! received message `M` by each round (Figures 5, 13, 14) and the
//! distribution of per-process average latency (Figure 11). [`Cdf`] supports
//! both: it maps a monotonically increasing x-axis to cumulative fractions.

use crate::json::{Json, JsonError};

/// An empirical CDF: a sequence of `(x, fraction)` points with
/// non-decreasing `x` and non-decreasing `fraction ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use drum_metrics::cdf::Cdf;
///
/// let cdf = Cdf::from_samples(&[1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.fraction_at(0.5), 0.0);
/// assert_eq!(cdf.fraction_at(2.0), 0.75);
/// assert_eq!(cdf.fraction_at(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cdf {
    points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Builds an empirical CDF from raw samples.
    ///
    /// NaN samples are ignored. An empty input yields an empty CDF whose
    /// [`Cdf::fraction_at`] is `0.0` everywhere.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut xs: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        let n = xs.len() as f64;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.0 == *x => last.1 = frac,
                _ => points.push((*x, frac)),
            }
        }
        Cdf { points }
    }

    /// Builds a CDF directly from `(x, fraction)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CdfError`] if `x` values are not strictly increasing or
    /// fractions are not non-decreasing within `[0, 1]`.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self, CdfError> {
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(CdfError::NonIncreasingX { x: w[1].0 });
            }
            if w[1].1 < w[0].1 {
                return Err(CdfError::DecreasingFraction { x: w[1].0 });
            }
        }
        if let Some(bad) = points.iter().find(|(_, f)| !(0.0..=1.0).contains(f)) {
            return Err(CdfError::FractionOutOfRange { fraction: bad.1 });
        }
        Ok(Cdf { points })
    }

    /// The cumulative fraction at `x` (step interpolation).
    pub fn fraction_at(&self, x: f64) -> f64 {
        match self.points.partition_point(|(px, _)| *px <= x) {
            0 => 0.0,
            i => self.points[i - 1].1,
        }
    }

    /// Smallest `x` whose cumulative fraction is at least `q`.
    ///
    /// Returns `None` if the CDF never reaches `q` (e.g. empty CDF).
    pub fn inverse(&self, q: f64) -> Option<f64> {
        self.points.iter().find(|(_, f)| *f >= q).map(|(x, _)| *x)
    }

    /// The underlying `(x, fraction)` points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the CDF has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Serializes the CDF as a JSON array of `[x, fraction]` pairs.
    pub fn to_json(&self) -> String {
        Json::Arr(
            self.points
                .iter()
                .map(|(x, f)| Json::Arr(vec![Json::num(*x), Json::num(*f)]))
                .collect(),
        )
        .to_string()
    }

    /// Restores a CDF from [`Cdf::to_json`] output, re-validating the
    /// monotonicity invariants.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input, or [`CdfError`] (wrapped in
    /// the `Result`'s `Err` via [`JsonError::MissingField`]) if the points
    /// violate the CDF invariants.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        let items = v
            .as_array()
            .ok_or(JsonError::MissingField { name: "points" })?;
        let mut points = Vec::with_capacity(items.len());
        for item in items {
            let pair = item
                .as_array()
                .ok_or(JsonError::MissingField { name: "point" })?;
            if pair.len() != 2 {
                return Err(JsonError::MissingField { name: "point" });
            }
            let x = pair[0]
                .as_f64()
                .ok_or(JsonError::MissingField { name: "x" })?;
            let f = pair[1]
                .as_f64()
                .ok_or(JsonError::MissingField { name: "fraction" })?;
            points.push((x, f));
        }
        Cdf::from_points(points).map_err(|_| JsonError::MissingField {
            name: "valid points",
        })
    }

    /// Maximum absolute difference to another CDF evaluated on the union of
    /// both x-grids (Kolmogorov–Smirnov statistic). Used by the
    /// analysis-vs-simulation comparisons (Figures 13–14).
    pub fn ks_distance(&self, other: &Cdf) -> f64 {
        let mut xs: Vec<f64> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|(x, _)| *x)
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in CDF"));
        xs.dedup();
        xs.iter()
            .map(|x| (self.fraction_at(*x) - other.fraction_at(*x)).abs())
            .fold(0.0, f64::max)
    }
}

/// Errors building a [`Cdf`] from explicit points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CdfError {
    /// The x axis was not strictly increasing at `x`.
    NonIncreasingX {
        /// Offending x value.
        x: f64,
    },
    /// The cumulative fraction decreased at `x`.
    DecreasingFraction {
        /// Offending x value.
        x: f64,
    },
    /// A fraction fell outside `[0, 1]`.
    FractionOutOfRange {
        /// Offending fraction.
        fraction: f64,
    },
}

impl core::fmt::Display for CdfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CdfError::NonIncreasingX { x } => write!(f, "x axis not strictly increasing at {x}"),
            CdfError::DecreasingFraction { x } => write!(f, "cumulative fraction decreases at {x}"),
            CdfError::FractionOutOfRange { fraction } => {
                write!(f, "fraction {fraction} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for CdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_basics() {
        let cdf = Cdf::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.fraction_at(0.0), 0.0);
        assert!((cdf.fraction_at(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.fraction_at(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_at(3.0), 1.0);
    }

    #[test]
    fn duplicate_samples_collapse() {
        let cdf = Cdf::from_samples(&[2.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf.fraction_at(2.0), 1.0);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at(100.0), 0.0);
        assert_eq!(cdf.inverse(0.5), None);
    }

    #[test]
    fn nan_samples_ignored() {
        let cdf = Cdf::from_samples(&[1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.fraction_at(2.0), 1.0);
    }

    #[test]
    fn inverse() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.inverse(0.0), Some(1.0));
        assert_eq!(cdf.inverse(0.5), Some(2.0));
        assert_eq!(cdf.inverse(0.99), Some(4.0));
        assert_eq!(cdf.inverse(1.0), Some(4.0));
    }

    #[test]
    fn from_points_validation() {
        assert!(Cdf::from_points(vec![(1.0, 0.5), (2.0, 1.0)]).is_ok());
        assert_eq!(
            Cdf::from_points(vec![(2.0, 0.5), (1.0, 1.0)]),
            Err(CdfError::NonIncreasingX { x: 1.0 })
        );
        assert_eq!(
            Cdf::from_points(vec![(1.0, 0.9), (2.0, 0.5)]),
            Err(CdfError::DecreasingFraction { x: 2.0 })
        );
        assert_eq!(
            Cdf::from_points(vec![(1.0, 1.5)]),
            Err(CdfError::FractionOutOfRange { fraction: 1.5 })
        );
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(cdf.ks_distance(&cdf.clone()), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Cdf::from_samples(&[1.0]);
        let b = Cdf::from_samples(&[10.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    #[test]
    fn error_display() {
        assert!(CdfError::NonIncreasingX { x: 1.0 }
            .to_string()
            .contains('1'));
    }
}
