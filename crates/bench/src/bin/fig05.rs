//! Figure 5: CDF — average fraction of correct processes that received
//! `M` by each round, under three targeted attacks.

use drum_bench::{banner, cdf_table, scaled, trials, PROTOCOLS, PROTOCOL_NAMES, SEED};
use drum_sim::config::SimConfig;
use drum_sim::experiments::cdf_curve;

fn main() {
    banner(
        "Figure 5",
        "CDF of the fraction of correct processes holding M per round",
    );
    let trials = trials();
    let n = scaled(120, 1000);
    let rounds = 40;

    for (alpha_label, alpha, x) in [("10%", 0.1, 64.0), ("10%", 0.1, 128.0), ("40%", 0.4, 128.0)] {
        println!("alpha = {alpha_label}, x = {x}, n = {n} ({trials} trials)");
        let curves: Vec<Vec<f64>> = PROTOCOLS
            .iter()
            .map(|&p| {
                let cfg = SimConfig::attack_alpha(p, n, alpha, x);
                cdf_curve(&cfg, trials, SEED, rounds)
            })
            .collect();
        println!("{}", cdf_table(&PROTOCOL_NAMES, &curves, rounds));
        println!(
            "paper: Push rises fastest early (non-attacked processes) but stalls on the\n\
             attacked tail; Pull's average is dragged down by runs stuck at the source;\n\
             Drum dominates throughout.\n"
        );
    }
}
