//! **drum-trace** — structured observability for the Drum workspace.
//!
//! The paper's results are statements about *per-round internal behaviour*:
//! how many pushes/pulls a target accepts under attack, which resource
//! bound dropped a message, when a message first reached each process.
//! This crate makes that behaviour observable without `println!`
//! archaeology, and — because fixed-seed runs serialize byte-identically —
//! turns traces themselves into a regression oracle (see the golden-trace
//! integration test).
//!
//! Three pieces, all hermetic (no external dependencies):
//!
//! * **Events** — [`Event`] with typed [`Field`]s and a [`Timestamp`] in
//!   sim-rounds (deterministic) or wall-clock microseconds;
//! * **Sinks** — [`NoopSink`] (near-zero overhead), [`MemorySink`]
//!   (tests), [`JsonLinesSink`] (byte-stable JSON lines via
//!   `drum_metrics::json`), and the mpsc-backed [`ChannelSink`] +
//!   [`Collector`] pair for multi-threaded runtimes;
//! * **Registry** — [`Registry`] of lock-free [`Counter`]s/[`Gauge`]s
//!   (messages sent/received, bound drops, port rotations, ...) that
//!   snapshots into `drum_metrics` tables and JSON.
//!
//! The [`Tracer`] handle bundles a sink and a registry; the disabled
//! default costs one branch per emission site (measured ≤ a few percent on
//! the engine-round micro-bench even with a no-op sink attached — see
//! DESIGN.md §Observability).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use drum_trace::{trace_event, MemorySink, Timestamp, Tracer};
//!
//! let sink = Arc::new(MemorySink::new());
//! let tracer = Tracer::new(sink.clone());
//! trace_event!(tracer, "sim", "round", Timestamp::Round(1), with_m = 5usize);
//! tracer.registry().counter("messages_sent").add(3);
//!
//! assert_eq!(sink.take().len(), 1);
//! assert_eq!(tracer.registry().snapshot(), vec![("messages_sent".into(), 3)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod event;
pub mod registry;
pub mod sink;
pub mod tracer;

pub use collector::{ChannelSink, Collector};
pub use event::{Event, Field, Timestamp, Value};
pub use registry::{names, Counter, Gauge, Registry};
pub use sink::{JsonLinesSink, MemorySink, NoopSink, SharedBuf, Sink};
pub use tracer::{Span, Tracer};

#[cfg(test)]
mod integration {
    use super::*;
    use std::sync::Arc;

    /// End-to-end: multi-threaded emission through the collector into a
    /// JSON-lines sink, counters snapshotting alongside.
    #[test]
    fn threads_to_jsonl_through_collector() {
        let buf = SharedBuf::new();
        let jsonl: Arc<dyn Sink> = Arc::new(JsonLinesSink::new(buf.clone()));
        let (collector, channel) = Collector::spawn(jsonl);
        let tracer = Tracer::new(Arc::new(channel));
        let sent = tracer.registry().counter(names::MESSAGES_SENT);

        std::thread::scope(|scope| {
            for t in 0..3u64 {
                let tracer = tracer.clone();
                let sent = sent.clone();
                scope.spawn(move || {
                    for r in 0..10u64 {
                        trace_event!(tracer, "net", "round.begin", Timestamp::Round(r), me = t);
                        sent.inc();
                    }
                });
            }
        });

        drop(tracer);
        assert_eq!(collector.finish(), 30);
        assert_eq!(buf.contents_string().lines().count(), 30);
        assert_eq!(sent.get(), 30);
    }
}
