//! Appendix A of the paper: the per-message acceptance probabilities
//! `p_u` (non-attacked process) and `p_a` (attacked process).
//!
//! Model: process `p_i` sends a message to `p_j`; every other process
//! independently includes `p_j` in its view with probability
//! `q = F/(n-1)`. Let `Y` be the number of valid messages `p_j` receives in
//! the round (including `p_i`'s); `p_j` accepts a uniformly random `F`-sized
//! subset when more than `F` arrive. An attacked process additionally
//! receives `x` fabricated messages that compete for the same slots.
//!
//! Key facts proved in the paper and checked by the unit tests here:
//! `p_u > 0.6` for every `F ≥ 1` (Lemma 8 and Figure 1(a)), and
//! `p_a < F/x` (used throughout §6).

use crate::logmath::LogFactorial;

/// Distribution of `Y` given that `p_i` sent to `p_j`:
/// `Y - 1 ~ Binomial(n-2, F/(n-1))`.
///
/// Returns `Pr(Y = y)` for `y = 1..=n-1` at index `y-1`.
fn y_distribution(lf: &LogFactorial, n: usize, fan_out: usize) -> Vec<f64> {
    let q = fan_out as f64 / (n - 1) as f64;
    (1..n).map(|y| lf.binom_pmf(n - 2, y - 1, q)).collect()
}

/// `p_u(n, F)`: probability that a non-attacked process accepts a given
/// valid incoming message (Eq. 8 of the paper).
///
/// # Panics
///
/// Panics if `n < 2` or `fan_out == 0`.
pub fn p_u(n: usize, fan_out: usize) -> f64 {
    assert!(n >= 2, "need at least two processes, got {n}");
    assert!(fan_out >= 1, "fan-out must be positive");
    let lf = LogFactorial::up_to(n);
    let dist = y_distribution(&lf, n, fan_out);
    let f = fan_out as f64;
    let mut acc = 0.0;
    for (idx, pr) in dist.iter().enumerate() {
        let y = (idx + 1) as f64;
        let accept = if y <= f { 1.0 } else { f / y };
        acc += accept * pr;
    }
    acc
}

/// `p_a(n, F, x)`: probability that a process attacked with `x` fabricated
/// messages per round accepts a given valid incoming message.
///
/// The paper derives the closed form for `x ≥ F`
/// (`p_a = Σ_y F/(y+x) · Pr(Y=y)`); for smaller `x` the acceptance
/// probability is clamped at 1, so `p_a(n, F, 0) = p_u`-like behaviour is
/// preserved continuously.
///
/// # Panics
///
/// Panics if `n < 2` or `fan_out == 0`.
pub fn p_a(n: usize, fan_out: usize, x: u64) -> f64 {
    assert!(n >= 2, "need at least two processes, got {n}");
    assert!(fan_out >= 1, "fan-out must be positive");
    let lf = LogFactorial::up_to(n);
    let dist = y_distribution(&lf, n, fan_out);
    let f = fan_out as f64;
    let mut acc = 0.0;
    for (idx, pr) in dist.iter().enumerate() {
        let y = (idx + 1) as f64;
        let accept = (f / (y + x as f64)).min(1.0);
        acc += accept * pr;
    }
    acc
}

/// The coarse upper bound `p_a < F/x` used by the asymptotic analysis.
pub fn p_a_upper_bound(fan_out: usize, x: u64) -> f64 {
    fan_out as f64 / x as f64
}

/// `dp_a/dx` (Lemma 7): always negative, bounded below by `-F/x²` term-wise;
/// the paper uses `dp_a/dα < F/(αx)` derived from it.
pub fn dp_a_dx(n: usize, fan_out: usize, x: u64) -> f64 {
    assert!(n >= 2);
    let lf = LogFactorial::up_to(n);
    let dist = y_distribution(&lf, n, fan_out);
    let f = fan_out as f64;
    let mut acc = 0.0;
    for (idx, pr) in dist.iter().enumerate() {
        let y = (idx + 1) as f64;
        let t = y + x as f64;
        acc += -f / (t * t) * pr;
    }
    acc
}

/// Series for Figure 1(a): `p_u` as a function of `F` for fixed `n`.
pub fn figure_1a(n: usize, fan_outs: &[usize]) -> Vec<(usize, f64)> {
    fan_outs.iter().map(|&f| (f, p_u(n, f))).collect()
}

/// Series for Figure 1(b): `p_a` vs. the bound `F/x` for fixed `n`, `F`.
pub fn figure_1b(n: usize, fan_out: usize, xs: &[u64]) -> Vec<(u64, f64, f64)> {
    xs.iter()
        .map(|&x| (x, p_a(n, fan_out, x), p_a_upper_bound(fan_out, x)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn y_distribution_sums_to_one() {
        let lf = LogFactorial::up_to(200);
        let dist = y_distribution(&lf, 200, 4);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn p_u_exceeds_0_6_for_all_fan_outs() {
        // Paper: exact calculation shows p_u > 0.6 for all F >= 1 (Fig 1(a)).
        for f in 1..=16 {
            let v = p_u(1000, f);
            assert!(v > 0.6, "p_u(1000, {f}) = {v}");
            assert!(v < 1.0);
        }
    }

    #[test]
    fn p_u_for_paper_settings() {
        // For F=4, n=1000, p_u is roughly 0.8 (Figure 1(a)).
        let v = p_u(1000, 4);
        assert!((0.70..0.90).contains(&v), "p_u = {v}");
    }

    #[test]
    fn p_a_below_coarse_bound() {
        for &x in &[4u64, 8, 32, 128, 512] {
            let pa = p_a(1000, 4, x);
            assert!(pa < p_a_upper_bound(4, x), "x = {x}");
            assert!(pa > 0.0);
        }
    }

    #[test]
    fn p_a_decreases_with_attack_strength() {
        let mut prev = 1.0;
        for &x in &[0u64, 4, 8, 16, 64, 256, 1024] {
            let pa = p_a(120, 4, x);
            assert!(pa < prev, "p_a not decreasing at x = {x}");
            prev = pa;
        }
    }

    #[test]
    fn p_a_at_zero_close_to_p_u() {
        // Without fabricated messages the clamped p_a formula is close to
        // p_u (it differs only in the sub-F acceptance accounting, where
        // p_u takes min(1, F/y) = 1 as well).
        let pa0 = p_a(500, 4, 0);
        let pu = p_u(500, 4);
        assert!((pa0 - pu).abs() < 1e-9, "pa0 = {pa0}, pu = {pu}");
    }

    #[test]
    fn derivative_is_negative_and_matches_finite_difference() {
        let x = 64u64;
        let d = dp_a_dx(120, 4, x);
        assert!(d < 0.0);
        let fd = p_a(120, 4, x + 1) - p_a(120, 4, x);
        assert!((d - fd).abs() < 5e-4, "analytic {d} vs finite diff {fd}");
    }

    #[test]
    fn lemma7_bound_on_derivative() {
        // |dp_a/dx| < F/x^2 term-wise implies the Lemma 7 chain.
        for &x in &[8u64, 32, 128] {
            let d = dp_a_dx(120, 4, x).abs();
            assert!(d < 4.0 / (x as f64 * x as f64) * 10.0, "slack check x={x}");
        }
    }

    #[test]
    fn figure_series_shapes() {
        let a = figure_1a(1000, &[1, 2, 4, 8]);
        assert_eq!(a.len(), 4);
        let b = figure_1b(1000, 4, &[8, 16, 32]);
        assert_eq!(b.len(), 3);
        for (_, pa, bound) in b {
            assert!(pa < bound);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_group() {
        p_u(1, 4);
    }
}
