//! Compares a fresh `hotpath` run against the checked-in baseline and
//! fails on regressions in the *machine-independent exact* metrics.
//!
//! ```text
//! bench_diff BENCH_hotpath.json /tmp/bench_current.json
//! ```
//!
//! The hotpath suite mixes two kinds of comparison (see its module docs):
//! timed paths, whose ns/op numbers track the host machine, and modeled
//! counts — syscalls per datagram, epoll wakeups per engine, MAC verifies
//! per datagram, scheduling spans — that are exact constants of the code
//! for a fixed scenario. Only the second kind is diffable across machines,
//! so this tool compares exactly those units and ignores the timed ones.
//! CI runs it against the committed `BENCH_hotpath.json`: any exact metric
//! getting *worse* than the baseline (beyond a float-formatting epsilon)
//! is a regression in the mechanism the number pins down — batching
//! silently disabled, a scheduler chunking change, a verifier cache miss —
//! and fails the job, while wall-clock noise on shared runners cannot.
//!
//! Exit status: 0 clean, 1 regression(s), 2 usage/parse errors. Baseline
//! benches missing from the current run (e.g. syscall benches skipped off
//! Linux) are reported and tolerated; a bench present in both must not
//! regress.

use std::process::ExitCode;

use drum_metrics::json::Json;

/// Units whose numbers are exact machine-independent counts (everything
/// else in the suite is wall-clock and excluded by design).
const EXACT_UNITS: &[&str] = &[
    "sys/dgram",
    "wakeups/engine",
    "verifies/dgram",
    "rounds",
    "idle/job",
    "split",
    "merge-ops",
    "dgrams/msg",
    "hmacs/msg",
    "compress-calls/block",
];

/// Slack for decimal round-tripping of the stored f64s; exact metrics
/// differ structurally (2x, 64x), never by 0.1%.
const EPSILON: f64 = 1e-3;

struct Entry {
    name: String,
    unit: String,
    current_per_op: f64,
    speedup: f64,
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let results = json
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: no results array"))?;
    results
        .iter()
        .map(|r| {
            let field = |k: &str| {
                r.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{path}: result missing '{k}'"))
            };
            let num = |k: &str| {
                r.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{path}: result missing '{k}'"))
            };
            Ok(Entry {
                name: field("name")?,
                unit: field("unit")?,
                current_per_op: num("current_per_op")?,
                speedup: num("speedup")?,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = match args.as_slice() {
        [b, c] => [b.clone(), c.clone()],
        _ => {
            eprintln!("usage: bench_diff <baseline.json> <current.json>");
            return ExitCode::from(2);
        }
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    println!("=== bench_diff: {baseline_path} -> {current_path} ===");
    println!(
        "  {:<24} {:>14} {:>14} {:>14}  status",
        "benchmark", "unit", "baseline", "current"
    );
    let mut regressions = 0u32;
    let mut compared = 0u32;
    for base in &baseline {
        if !EXACT_UNITS.contains(&base.unit.as_str()) {
            println!(
                "  {:<24} {:>14} {:>14} {:>14}  skipped (wall-clock)",
                base.name, base.unit, "-", "-"
            );
            continue;
        }
        let Some(cur) = current.iter().find(|c| c.name == base.name) else {
            println!(
                "  {:<24} {:>14} {:>14.4} {:>14}  missing in current run",
                base.name, base.unit, base.current_per_op, "-"
            );
            continue;
        };
        compared += 1;
        // "Worse" for every exact unit means: more of the cost per unit of
        // work (per_op up), or the seed/current ratio shrinking.
        let worse = cur.current_per_op > base.current_per_op + EPSILON
            || cur.speedup < base.speedup - EPSILON;
        println!(
            "  {:<24} {:>14} {:>14.4} {:>14.4}  {}",
            base.name,
            base.unit,
            base.current_per_op,
            cur.current_per_op,
            if worse { "REGRESSION" } else { "ok" }
        );
        if worse {
            regressions += 1;
        }
    }

    if compared == 0 {
        eprintln!("bench_diff: no exact metrics compared — is the current run complete?");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        eprintln!("bench_diff: {regressions} exact-metric regression(s)");
        return ExitCode::from(1);
    }
    println!("bench_diff: {compared} exact metric(s) clean");
    ExitCode::SUCCESS
}
