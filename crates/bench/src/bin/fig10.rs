//! Figure 10: received throughput under increasing attack strength
//!
//! Thin wrapper over [`drum_bench::figures::fig10`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig10(&mut out).expect("write fig10 to stdout");
}
