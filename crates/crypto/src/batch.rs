//! Batched verification of authentication tags under flood fan-in.
//!
//! The attacks in the Drum paper (and the MABS line of work on batch
//! signatures) exploit the asymmetry between *sending* a fabricated message
//! (cheap) and *verifying* it (an HMAC, or worse a signature, per packet).
//! A blind flood, however, is highly redundant: the attacker replays the
//! same fabricated — or previously authentic — datagram at every victim,
//! many times per round, and `recvmmsg` hands the receiver whole batches of
//! identical `(source, seq, tag)` triples.
//!
//! [`BatchVerifier`] amortizes that redundancy. It keeps a round-scoped
//! verdict cache keyed on the `(source, seq, tag)` triple: the first
//! occurrence pays the full HMAC (`full_verifies`), every identical
//! repetition — whether a duplicate of a valid message, a replayed
//! authentic datagram, or a repeated forgery — reuses the cached verdict
//! (`batch_hits`). Candidates are ordered cheapest-reject-first: the
//! unknown-source key lookup (a hash probe) runs before any HMAC is
//! computed, so datagrams claiming a nonexistent source never reach the
//! compression function at all.
//!
//! Because the tag is an HMAC over `(source, seq, payload)`, two distinct
//! payloads colliding on the same triple is cryptographically negligible —
//! but the cache does not *assume* it: each cache entry records the payload
//! it was verified against, and a mismatching payload under the same triple
//! pays its own full verification. The verifier is therefore *exactly*
//! equivalent, accept/reject-wise, to calling [`crate::auth::verify`] per
//! datagram; it only changes how often the HMAC is computed.
//!
//! The cache is cleared at every round boundary ([`BatchVerifier::begin_round`])
//! so its memory is bounded by one round's reception budget of *unique*
//! messages, and so verdicts never outlive the key-store state they were
//! computed under.

use std::collections::HashMap;
use std::sync::Arc;

use crate::auth::{
    frame_job, msg_job, verify_frame_with, verify_with, AuthError, AuthTag, AUTH_TAG_LEN,
};
use crate::hmac::HmacKey;
use crate::keys::KeyStore;
use crate::multiway::MultiMac;

/// Which HMAC domain a cached verdict was computed under. Message and frame
/// tags are domain-separated on the wire (see [`crate::auth`]), so their
/// verdicts must never answer for each other even when the visible
/// `(source, seq, tag, payload)` quadruple coincides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Domain {
    Message,
    Frame,
}

/// Cache key: the wire-visible identity of a datagram's authentication
/// claim. Everything an attacker can replay verbatim hashes to the same key.
type TripleKey = (Domain, u64, u64, [u8; AUTH_TAG_LEN]);

/// Verdicts recorded under one triple. The `Vec` disambiguates the
/// (negligible, but handled) case of distinct payloads under one triple;
/// in practice it holds exactly one entry.
type Verdicts = Vec<(Vec<u8>, Result<(), AuthError>)>;

/// Counters harvested from a [`BatchVerifier`] in one read, so per-round
/// emission does not re-read the underlying tallies twice: how many HMACs
/// actually ran, how many verdicts the round cache served, and the exact
/// multiway-kernel utilization behind the HMACs that did run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCounters {
    /// HMAC computations performed.
    pub full_verifies: u64,
    /// Verdicts served from the round cache (or aliased within one batch).
    pub batch_hits: u64,
    /// Compression-kernel invocations (8-wide or single-block) behind the
    /// full verifications.
    pub compress_calls: u64,
    /// Total kernel lanes those invocations advanced.
    pub lanes_filled: u64,
}

/// One datagram's authentication claim, for [`BatchVerifier::verify_many`]:
/// the same arguments `verify` / `verify_frame` take, by reference so a
/// whole poll-drain can be described without copying payloads.
#[derive(Debug, Clone, Copy)]
pub struct VerifyRequest<'a> {
    /// Frame-domain claim (`sender`/`nonce`/`body`) rather than a
    /// message-domain one (`source`/`seq`/`payload`).
    pub frame: bool,
    /// Claimed source (or frame sender).
    pub source: u64,
    /// Sequence number (or frame nonce).
    pub seq: u64,
    /// The authenticated bytes.
    pub payload: &'a [u8],
    /// The tag the datagram carried.
    pub tag: AuthTag,
}

/// A round-scoped, payload-checked verdict cache over `(source, seq, tag)`
/// triples. See the [module docs](self) for the design rationale.
#[derive(Debug, Default)]
pub struct BatchVerifier {
    cache: HashMap<TripleKey, Verdicts>,
    /// Multiway engine for [`Self::verify_many`]; its lane counters are
    /// folded into [`MacCounters`] at each harvest.
    mm: MultiMac,
    full_verifies: u64,
    batch_hits: u64,
}

impl BatchVerifier {
    /// Creates an empty verifier with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the verdict cache at a round boundary. Counters are
    /// cumulative across rounds; they are harvested with
    /// [`take_counters`](Self::take_counters).
    pub fn begin_round(&mut self) {
        self.cache.clear();
    }

    /// Verifies one datagram's tag, reusing this round's cached verdict for
    /// identical `(source, seq, tag, payload)` fan-in.
    ///
    /// Accept/reject behavior is bit-identical to [`crate::auth::verify`];
    /// only the number of HMAC computations differs.
    ///
    /// # Errors
    ///
    /// * [`AuthError::UnknownSource`] — `source` has no key in `store`
    ///   (rejected before any HMAC work, and never cached: the lookup is
    ///   already as cheap as the cache probe).
    /// * [`AuthError::Forged`] — the tag does not match.
    pub fn verify(
        &mut self,
        store: &KeyStore,
        source: u64,
        seq: u64,
        payload: &[u8],
        tag: &AuthTag,
    ) -> Result<(), AuthError> {
        self.verify_in(Domain::Message, store, source, seq, payload, tag)
    }

    /// Verifies one *frame* tag (see [`crate::auth::verify_frame`]) with the
    /// same round-scoped caching as [`verify`](Self::verify). A flooded
    /// receiver replaying identical captured frames pays one HMAC per unique
    /// frame per round, no matter how many data messages each frame carries.
    ///
    /// # Errors
    ///
    /// * [`AuthError::UnknownSource`] — `sender` has no key in `store`.
    /// * [`AuthError::Forged`] — the tag does not match.
    pub fn verify_frame(
        &mut self,
        store: &KeyStore,
        sender: u64,
        nonce: u64,
        body: &[u8],
        tag: &AuthTag,
    ) -> Result<(), AuthError> {
        self.verify_in(Domain::Frame, store, sender, nonce, body, tag)
    }

    fn verify_in(
        &mut self,
        domain: Domain,
        store: &KeyStore,
        source: u64,
        seq: u64,
        payload: &[u8],
        tag: &AuthTag,
    ) -> Result<(), AuthError> {
        // Cheapest reject first: an unregistered source is a hash probe,
        // not an HMAC. Checking it before the cache also keeps the cache
        // free of entries that a concurrent key-store change could stale.
        let key = match store.auth_key_of(source) {
            Ok(key) => key,
            Err(e) => return Err(AuthError::UnknownSource(e)),
        };

        let triple = (domain, source, seq, tag.0);
        if let Some(entries) = self.cache.get(&triple) {
            for (seen_payload, verdict) in entries {
                if seen_payload.as_slice() == payload {
                    self.batch_hits += 1;
                    return *verdict;
                }
            }
        }

        let verdict = match domain {
            Domain::Message => verify_with(&key, source, seq, payload, tag),
            Domain::Frame => verify_frame_with(&key, source, seq, payload, tag),
        };
        self.full_verifies += 1;
        self.cache
            .entry(triple)
            .or_default()
            .push((payload.to_vec(), verdict));
        verdict
    }

    /// Verifies a whole drain's worth of claims in one pass, appending the
    /// per-request verdicts to `verdicts` in request order.
    ///
    /// Decision- and counter-identical to calling [`verify`](Self::verify) /
    /// [`verify_frame`](Self::verify_frame) per request in order: unknown
    /// sources reject before any HMAC work, cached verdicts (including ones
    /// established *earlier in this same batch*) count as `batch_hits`, and
    /// each unique claim pays exactly one `full_verifies`. The difference is
    /// that all unique claims accumulate into multiway lanes and run through
    /// the 8-lane kernel together instead of one HMAC at a time.
    pub fn verify_many(
        &mut self,
        store: &KeyStore,
        reqs: &[VerifyRequest<'_>],
        verdicts: &mut Vec<Result<(), AuthError>>,
    ) {
        verdicts.clear();
        // Per-request resolution: a verdict already known (cache hit or
        // unknown source), or a lane index into this batch's unique claims.
        enum Slot {
            Done(Result<(), AuthError>),
            Lane(u32),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(reqs.len());
        // Unique claims: the key (held to keep the schedule borrow alive
        // through the kernel call), the request carrying the bytes, and a
        // within-batch index of claims sharing a triple.
        let mut lane_keys: Vec<Arc<HmacKey>> = Vec::new();
        let mut lane_req: Vec<u32> = Vec::new();
        let mut pending: HashMap<TripleKey, Vec<u32>> = HashMap::new();

        for req in reqs {
            // Cheapest reject first, exactly as in `verify_in`.
            let key = match store.auth_key_of(req.source) {
                Ok(key) => key,
                Err(e) => {
                    slots.push(Slot::Done(Err(AuthError::UnknownSource(e))));
                    continue;
                }
            };
            let domain = if req.frame {
                Domain::Frame
            } else {
                Domain::Message
            };
            let triple = (domain, req.source, req.seq, req.tag.0);
            if let Some(entries) = self.cache.get(&triple) {
                if let Some((_, verdict)) = entries
                    .iter()
                    .find(|(seen, _)| seen.as_slice() == req.payload)
                {
                    self.batch_hits += 1;
                    slots.push(Slot::Done(*verdict));
                    continue;
                }
            }
            // A claim identical to an earlier one in this batch aliases to
            // its lane — sequentially, the earlier one would have populated
            // the cache by now, so this is a batch hit there too.
            if let Some(lanes) = pending.get(&triple) {
                if let Some(&lane) = lanes
                    .iter()
                    .find(|&&lane| reqs[lane_req[lane as usize] as usize].payload == req.payload)
                {
                    self.batch_hits += 1;
                    slots.push(Slot::Lane(lane));
                    continue;
                }
            }
            self.full_verifies += 1;
            let lane = lane_keys.len() as u32;
            lane_keys.push(key);
            lane_req.push((slots.len()) as u32);
            pending.entry(triple).or_default().push(lane);
            slots.push(Slot::Lane(lane));
        }

        // One multiway pass over the unique claims.
        let jobs: Vec<_> = lane_req
            .iter()
            .zip(lane_keys.iter())
            .map(|(&i, key)| {
                let req = &reqs[i as usize];
                if req.frame {
                    frame_job(key, req.source, req.seq, req.payload)
                } else {
                    msg_job(key, req.source, req.seq, req.payload)
                }
            })
            .collect();
        let lane_verdicts: Vec<Result<(), AuthError>> = self
            .mm
            .mac_many(&jobs)
            .iter()
            .zip(lane_req.iter())
            .map(|(expected, &i)| {
                if AuthTag(*expected).ct_eq(&reqs[i as usize].tag) {
                    Ok(())
                } else {
                    Err(AuthError::Forged)
                }
            })
            .collect();

        // Record each unique claim's verdict in the round cache (first-
        // occurrence order, as the sequential path would), then emit the
        // per-request verdicts.
        for (lane, &i) in lane_req.iter().enumerate() {
            let req = &reqs[i as usize];
            let domain = if req.frame {
                Domain::Frame
            } else {
                Domain::Message
            };
            let triple = (domain, req.source, req.seq, req.tag.0);
            self.cache
                .entry(triple)
                .or_default()
                .push((req.payload.to_vec(), lane_verdicts[lane]));
        }
        verdicts.extend(slots.iter().map(|slot| match slot {
            Slot::Done(v) => *v,
            Slot::Lane(lane) => lane_verdicts[*lane as usize],
        }));
    }

    /// HMAC computations performed since the last counter harvest.
    pub fn full_verifies(&self) -> u64 {
        self.full_verifies
    }

    /// Verdicts served from the round cache since the last counter harvest.
    pub fn batch_hits(&self) -> u64 {
        self.batch_hits
    }

    /// Harvests all counters in one read and resets them, for periodic
    /// export into a metrics registry.
    pub fn take_counters(&mut self) -> MacCounters {
        let lanes = self.mm.take_stats();
        let out = MacCounters {
            full_verifies: self.full_verifies,
            batch_hits: self.batch_hits,
            compress_calls: lanes.compress_calls,
            lanes_filled: lanes.lanes_filled,
        };
        self.full_verifies = 0;
        self.batch_hits = 0;
        out
    }

    /// Number of distinct `(source, seq, tag)` triples cached this round.
    pub fn cached_triples(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{sign, verify};
    use crate::keys::SecretKey;

    fn store_with(source: u64) -> (KeyStore, SecretKey) {
        let store = KeyStore::new(123);
        let key = store.register(source);
        (store, key)
    }

    #[test]
    fn identical_fan_in_verifies_once() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 1, 7, b"payload");
        let mut bv = BatchVerifier::new();
        for _ in 0..64 {
            assert!(bv.verify(&store, 1, 7, b"payload", &tag).is_ok());
        }
        assert_eq!(bv.full_verifies(), 1);
        assert_eq!(bv.batch_hits(), 63);
    }

    #[test]
    fn repeated_forgery_rejected_from_cache() {
        let (store, _) = store_with(1);
        let mut bv = BatchVerifier::new();
        for _ in 0..10 {
            assert_eq!(
                bv.verify(&store, 1, 0, b"fake", &AuthTag::zero()),
                Err(AuthError::Forged)
            );
        }
        assert_eq!(bv.full_verifies(), 1);
        assert_eq!(bv.batch_hits(), 9);
    }

    #[test]
    fn unknown_source_rejected_without_hmac() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 9, 0, b"m");
        let mut bv = BatchVerifier::new();
        for _ in 0..5 {
            assert!(matches!(
                bv.verify(&store, 9, 0, b"m", &tag),
                Err(AuthError::UnknownSource(_))
            ));
        }
        assert_eq!(bv.full_verifies(), 0);
        assert_eq!(bv.batch_hits(), 0);
    }

    #[test]
    fn same_triple_different_payload_pays_its_own_verify() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 1, 3, b"real");
        let mut bv = BatchVerifier::new();
        assert!(bv.verify(&store, 1, 3, b"real", &tag).is_ok());
        // An attacker grafting a different payload under the same triple
        // must not inherit the cached accept.
        assert_eq!(
            bv.verify(&store, 1, 3, b"graft", &tag),
            Err(AuthError::Forged)
        );
        assert!(bv.verify(&store, 1, 3, b"real", &tag).is_ok());
        assert_eq!(bv.full_verifies(), 2);
        assert_eq!(bv.batch_hits(), 1);
        assert_eq!(bv.cached_triples(), 1);
    }

    #[test]
    fn round_boundary_clears_the_cache_but_not_counters() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 1, 0, b"m");
        let mut bv = BatchVerifier::new();
        assert!(bv.verify(&store, 1, 0, b"m", &tag).is_ok());
        bv.begin_round();
        assert_eq!(bv.cached_triples(), 0);
        assert!(bv.verify(&store, 1, 0, b"m", &tag).is_ok());
        assert_eq!(bv.full_verifies(), 2);
        assert_eq!(bv.batch_hits(), 0);
    }

    #[test]
    fn take_counters_resets() {
        let (store, key) = store_with(1);
        let tag = sign(&key, 1, 0, b"m");
        let mut bv = BatchVerifier::new();
        bv.verify(&store, 1, 0, b"m", &tag).unwrap();
        bv.verify(&store, 1, 0, b"m", &tag).unwrap();
        let c = bv.take_counters();
        assert_eq!((c.full_verifies, c.batch_hits), (1, 1));
        assert_eq!(bv.take_counters(), MacCounters::default());
    }

    #[test]
    fn frame_verdicts_cache_per_domain() {
        use crate::auth::sign_frame_with;
        let (store, key) = store_with(1);
        let schedule = key.hmac_key();
        let frame_tag = sign_frame_with(&schedule, 1, 7, b"body");
        let mut bv = BatchVerifier::new();
        // Identical frame fan-in pays one HMAC.
        for _ in 0..8 {
            assert!(bv.verify_frame(&store, 1, 7, b"body", &frame_tag).is_ok());
        }
        assert_eq!(bv.full_verifies(), 1);
        assert_eq!(bv.batch_hits(), 7);
        // The same quadruple replayed into the *message* verifier must not
        // inherit the frame verdict: it pays its own HMAC and is rejected.
        assert_eq!(
            bv.verify(&store, 1, 7, b"body", &frame_tag),
            Err(AuthError::Forged)
        );
        assert_eq!(bv.full_verifies(), 2);
        // Forged frames are rejected and the rejection is cached too.
        for _ in 0..3 {
            assert_eq!(
                bv.verify_frame(&store, 1, 9, b"body", &AuthTag::zero()),
                Err(AuthError::Forged)
            );
        }
        assert_eq!(bv.full_verifies(), 3);
    }

    /// The equivalence contract: on a hostile mixed batch (valid messages,
    /// forgeries, replays of authentic datagrams, duplicate fan-in, unknown
    /// sources), the batched path returns exactly the per-datagram verdicts.
    #[test]
    fn hostile_mixed_batch_matches_per_datagram_path() {
        let store = KeyStore::new(7);
        let k1 = store.register(1);
        let k2 = store.register(2);

        let real1 = sign(&k1, 1, 10, b"alpha");
        let real2 = sign(&k2, 2, 11, b"beta");
        let cross = sign(&k1, 2, 11, b"beta"); // wrong key for claimed source

        let batch: Vec<(u64, u64, &[u8], AuthTag)> = vec![
            (1, 10, b"alpha", real1),    // valid
            (1, 10, b"alpha", real1),    // duplicate fan-in
            (2, 11, b"beta", real2),     // valid, second source
            (1, 10, b"tampered", real1), // forged payload
            (2, 11, b"beta", cross),     // spoofed source
            (1, 10, b"alpha", real1),    // replayed authentic datagram
            (9, 10, b"alpha", real1),    // unknown source
            (1, 99, b"alpha", real1),    // wrong seq
            (1, 10, b"tampered", real1), // repeated forgery
        ];

        let mut bv = BatchVerifier::new();
        for (source, seq, payload, tag) in &batch {
            let batched = bv.verify(&store, *source, *seq, payload, tag);
            let reference = verify(&store, *source, *seq, payload, tag);
            assert_eq!(batched, reference);
        }
        // 5 unique registered-source claims paid an HMAC; 3 repeats hit the
        // cache; the unknown source touched neither counter.
        assert_eq!(bv.full_verifies(), 5);
        assert_eq!(bv.batch_hits(), 3);

        // The multiway batched entry point returns the same verdicts with
        // the same counters, whether the whole batch lands in one call or
        // the cache was warmed by earlier sequential calls.
        let reqs: Vec<VerifyRequest<'_>> = batch
            .iter()
            .map(|(source, seq, payload, tag)| VerifyRequest {
                frame: false,
                source: *source,
                seq: *seq,
                payload,
                tag: *tag,
            })
            .collect();
        let mut mv = BatchVerifier::new();
        let mut verdicts = Vec::new();
        mv.verify_many(&store, &reqs, &mut verdicts);
        for ((source, seq, payload, tag), got) in batch.iter().zip(verdicts.iter()) {
            assert_eq!(*got, verify(&store, *source, *seq, payload, tag));
        }
        let c = mv.take_counters();
        assert_eq!(c.full_verifies, 5);
        assert_eq!(c.batch_hits, 3);
        // 5 unique short claims = 10 blocks through the kernel.
        assert_eq!(c.lanes_filled, 10);

        // Warm-cache replay of the same batch: all registered claims hit.
        mv.verify_many(&store, &reqs, &mut verdicts);
        let c = mv.take_counters();
        assert_eq!(c.full_verifies, 0);
        assert_eq!(c.batch_hits, 8);
        assert_eq!(c.lanes_filled, 0);
    }

    #[test]
    fn verify_many_frames_and_messages_mixed() {
        use crate::auth::sign_frame_with;
        let (store, key) = store_with(1);
        let schedule = key.hmac_key();
        let msg_tag = sign(&key, 1, 7, b"bytes");
        let frame_tag = sign_frame_with(&schedule, 1, 7, b"bytes");
        // Same quadruple in both domains: each pays its own verify, and the
        // frame tag presented in the message domain is rejected.
        let reqs = [
            VerifyRequest {
                frame: false,
                source: 1,
                seq: 7,
                payload: b"bytes",
                tag: msg_tag,
            },
            VerifyRequest {
                frame: true,
                source: 1,
                seq: 7,
                payload: b"bytes",
                tag: frame_tag,
            },
            VerifyRequest {
                frame: false,
                source: 1,
                seq: 7,
                payload: b"bytes",
                tag: frame_tag,
            },
            VerifyRequest {
                frame: true,
                source: 1,
                seq: 7,
                payload: b"bytes",
                tag: frame_tag,
            },
            VerifyRequest {
                frame: false,
                source: 9,
                seq: 7,
                payload: b"bytes",
                tag: msg_tag,
            },
        ];
        let mut bv = BatchVerifier::new();
        let mut verdicts = Vec::new();
        bv.verify_many(&store, &reqs, &mut verdicts);
        assert_eq!(verdicts[0], Ok(()));
        assert_eq!(verdicts[1], Ok(()));
        assert_eq!(verdicts[2], Err(AuthError::Forged));
        assert_eq!(verdicts[3], Ok(())); // within-batch alias of [1]
        assert!(matches!(verdicts[4], Err(AuthError::UnknownSource(_))));
        let c = bv.take_counters();
        assert_eq!(c.full_verifies, 3);
        assert_eq!(c.batch_hits, 1);
    }
}
