//! Shared harness for the figure-regeneration binaries (`fig01`–`fig14`)
//! and the criterion benches.
//!
//! Every binary regenerates one figure of the paper and prints the same
//! series the paper plots. Two scales are supported:
//!
//! * **quick** (default): reduced group sizes / trial counts so a full
//!   `for f in fig*; cargo run --bin $f` pass completes in minutes;
//! * **full** (`--full` or `DRUM_BENCH_FULL=1`): the paper's parameters
//!   (n = 1000 simulations, 1000 trials per point, 50-process clusters).
//!
//! The *shape* of every result (who wins, linear vs. flat degradation,
//! crossovers) is already visible at the quick scale; `EXPERIMENTS.md`
//! records a full comparison against the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;

use std::sync::atomic::{AtomicU8, Ordering};

use drum_core::ProtocolVariant;
use drum_metrics::table::Table;
use drum_sim::experiments::SweepRow;

/// Sizing of a figure run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI smoke sizing (`drum-lab figures --quick`): the smallest runs
    /// that still exercise every figure's code path end to end.
    Smoke,
    /// Default: reduced group sizes / trial counts; every qualitative
    /// shape of the paper is already visible.
    Quick,
    /// The paper's parameters (`--full` / `DRUM_BENCH_FULL=1`).
    Full,
}

/// Process-wide scale. 255 = unset: fall back to the legacy `--full`
/// argv/env probe on first read, so the standalone fig binaries keep
/// their historical behaviour without calling [`set_scale`].
static SCALE: AtomicU8 = AtomicU8::new(255);

/// Overrides the scale for this process (used by `drum-lab figures`).
pub fn set_scale(scale: Scale) {
    let v = match scale {
        Scale::Smoke => 0,
        Scale::Quick => 1,
        Scale::Full => 2,
    };
    SCALE.store(v, Ordering::Relaxed);
}

/// The active scale.
pub fn scale() -> Scale {
    match SCALE.load(Ordering::Relaxed) {
        0 => Scale::Smoke,
        1 => Scale::Quick,
        2 => Scale::Full,
        _ => {
            if full_scale() {
                Scale::Full
            } else {
                Scale::Quick
            }
        }
    }
}

/// Whether the binary was invoked at full (paper) scale.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
        || std::env::var("DRUM_BENCH_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Picks between the quick and full value of a parameter. Smoke runs use
/// the quick value; parameters that must shrink further for CI take all
/// three via [`scaled3`].
pub fn scaled<T>(quick: T, full: T) -> T {
    match scale() {
        Scale::Full => full,
        Scale::Smoke | Scale::Quick => quick,
    }
}

/// Picks a parameter by scale, with an explicit smoke value.
pub fn scaled3<T>(smoke: T, quick: T, full: T) -> T {
    match scale() {
        Scale::Smoke => smoke,
        Scale::Quick => quick,
        Scale::Full => full,
    }
}

/// Simulation trial count: 1000 in the paper, 150 quick, 12 smoke.
pub fn trials() -> usize {
    scaled3(12, 150, 1000)
}

/// The standard experiment seed (fixed for reproducibility).
pub const SEED: u64 = 20040628; // DSN 2004 conference date

/// Writes the standard figure banner.
pub fn banner_to(w: &mut dyn std::io::Write, fig: &str, what: &str) -> std::io::Result<()> {
    writeln!(w, "=== {fig}: {what} ===")?;
    writeln!(
        w,
        "scale: {} (run with --full for the paper's parameters)\n",
        match scale() {
            Scale::Smoke => "smoke (CI)",
            Scale::Quick => "quick",
            Scale::Full => "FULL (paper)",
        }
    )
}

/// Prints the standard figure banner to stdout.
pub fn banner(fig: &str, what: &str) {
    banner_to(&mut std::io::stdout(), fig, what).expect("write to stdout");
}

/// Formats a sweep (x column + mean rounds per protocol) as a table.
pub fn sweep_table(x_label: &str, rows: &[SweepRow], columns: &[&str]) -> Table {
    let mut header = vec![x_label.to_string()];
    header.extend(columns.iter().map(|c| c.to_string()));
    let mut table = Table::new(header);
    for row in rows {
        let mut cells = vec![format!("{}", trim_float(row.x))];
        for r in &row.results {
            if r.failures > 0 {
                cells.push(format!("{:.1} ({}f)", r.mean_rounds(), r.failures));
            } else {
                cells.push(format!("{:.1}", r.mean_rounds()));
            }
        }
        table.row(cells);
    }
    table
}

/// Same but showing the standard deviation instead of the mean (Figure 4).
pub fn sweep_table_std(x_label: &str, rows: &[SweepRow], columns: &[&str]) -> Table {
    let mut header = vec![x_label.to_string()];
    header.extend(columns.iter().map(|c| c.to_string()));
    let mut table = Table::new(header);
    for row in rows {
        let mut cells = vec![format!("{}", trim_float(row.x))];
        for r in &row.results {
            cells.push(format!("{:.1}", r.std_rounds()));
        }
        table.row(cells);
    }
    table
}

/// Formats a float without a trailing `.0` for integer values.
pub fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Prints a per-round CDF comparison, one column per labeled curve.
pub fn cdf_table(labels: &[&str], curves: &[Vec<f64>], max_rounds: usize) -> Table {
    let mut header = vec!["round".to_string()];
    header.extend(labels.iter().map(|l| l.to_string()));
    let mut table = Table::new(header);
    for r in 0..max_rounds {
        let mut cells = vec![format!("{}", r + 1)];
        for curve in curves {
            let v = curve.get(r).copied().unwrap_or(f64::NAN);
            cells.push(format!("{:.3}", v));
        }
        table.row(cells);
    }
    table
}

/// The three protocols, in the display order used everywhere.
pub const PROTOCOL_NAMES: [&str; 3] = ["Drum", "Push", "Pull"];

/// The three protocol variants matching [`PROTOCOL_NAMES`].
pub const PROTOCOLS: [ProtocolVariant; 3] = [
    ProtocolVariant::Drum,
    ProtocolVariant::Push,
    ProtocolVariant::Pull,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(0.25), "0.25");
        assert_eq!(trim_float(128.0), "128");
    }

    #[test]
    fn scaled_picks_quick_by_default() {
        // Test binaries are not invoked with --full.
        assert_eq!(scaled(1, 2), 1);
        assert_eq!(trials(), 150);
    }

    #[test]
    fn cdf_table_handles_short_curves() {
        let t = cdf_table(&["a"], &[vec![0.5, 1.0]], 3);
        let out = t.render();
        assert!(out.contains("0.500"));
        assert!(out.contains("NaN"));
    }
}
