//! UDP socket management: well-known ports, random ephemeral ports and the
//! process address book.
//!
//! Every logical process owns two *well-known* sockets (pull-requests and
//! push-offers, §4) plus a pool of short-lived *random* sockets allocated
//! round by round for pull-replies, push-replies and push data. The random
//! sockets are the OS-assigned ephemeral ports that give Drum its
//! unpredictability; each one is tagged with the purpose it was allocated
//! for, and the runtime drops datagrams whose kind does not match the
//! port's purpose — an attacker cannot spend a data-channel budget through
//! a well-known port.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::Arc;

use drum_core::engine::{PortOracle, PortPurpose};
use drum_core::ids::{ProcessId, Round};

use crate::sys;

/// Batched datagram receiver with a per-datagram fallback.
///
/// In batched mode one `recvmmsg(2)` call drains up to [`sys::BATCH`]
/// datagrams into a fixed arena; in fallback mode (non-Linux targets, or
/// `DRUM_NET_NO_BATCH=1`) the same API loops `recv_from` one datagram per
/// syscall. Both modes hand datagrams to the caller in kernel queue order
/// and stop at the first `WouldBlock`, so every downstream accept/drop
/// decision is identical — only the syscall count differs, which is
/// exactly what the running totals expose.
///
/// The same `DRUM_NET_NO_BATCH` knob also selects the engine's MAC
/// verification path (`drum_crypto::batch`): in batched mode, the
/// identical-fan-in datagrams that one `recvmmsg` call drains are verified
/// once per unique `(source, seq, tag)` triple per round instead of once
/// per copy — syscall amortization and HMAC amortization degrade together
/// back to the per-datagram baseline.
#[derive(Debug)]
pub struct BatchRx {
    arena: Option<sys::RecvArena>,
    slot_len: usize,
    syscalls: u64,
    batched_datagrams: u64,
}

impl BatchRx {
    /// Creates a receiver in the process-wide mode ([`sys::enabled`]).
    /// `slot_len` bounds each received datagram, like the scratch buffer
    /// handed to `recv_from` on the fallback path.
    pub fn new(slot_len: usize) -> Self {
        Self::forced(slot_len, sys::enabled())
    }

    /// Creates a receiver with an explicit mode — the hook the
    /// equivalence tests and benches use to pin both arms. Requesting
    /// batched mode on a target without support silently yields the
    /// fallback (callers check [`BatchRx::batched`] when it matters).
    pub fn forced(slot_len: usize, batched: bool) -> Self {
        BatchRx {
            arena: (batched && sys::available()).then(|| sys::RecvArena::new(slot_len)),
            slot_len,
            syscalls: 0,
            batched_datagrams: 0,
        }
    }

    /// Whether the batched path is in effect.
    pub fn batched(&self) -> bool {
        self.arena.is_some()
    }

    /// Receive syscalls made so far (`recvmmsg` + `recv_from`, including
    /// the final empty call that observes `WouldBlock`).
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Datagrams moved by batched (`recvmmsg`) calls so far. Together with
    /// [`BatchRx::syscalls`] this measures the amortization: mean batch
    /// fill = `batched_datagrams / syscalls`.
    pub fn batched_datagrams(&self) -> u64 {
        self.batched_datagrams
    }

    /// Drains `socket` until it would block, invoking `f` once per
    /// datagram in arrival order. `scratch` is used by the fallback path
    /// only and must be at least `slot_len` bytes. Returns the number of
    /// datagrams drained.
    pub fn drain_socket(
        &mut self,
        socket: &UdpSocket,
        scratch: &mut [u8],
        mut f: impl FnMut(&[u8]),
    ) -> usize {
        let mut count = 0;
        match &mut self.arena {
            Some(arena) => {
                let fd = sys::fd_of(socket);
                loop {
                    self.syscalls += 1;
                    match arena.recv(fd) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            self.batched_datagrams += n as u64;
                            count += n;
                            for i in 0..n {
                                f(arena.datagram(i));
                            }
                            if n < sys::BATCH {
                                // A short batch already proves the queue
                                // is empty; skip the confirming syscall.
                                break;
                            }
                        }
                    }
                }
            }
            None => {
                let take = self.slot_len.min(scratch.len());
                let scratch = &mut scratch[..take];
                loop {
                    self.syscalls += 1;
                    match socket.recv_from(scratch) {
                        Ok((len, _)) => {
                            count += 1;
                            f(&scratch[..len]);
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        }
        count
    }
}

/// Batched datagram sender with a per-datagram fallback.
///
/// In batched mode datagrams queue into a [`sys::SendArena`] and flush
/// through `sendmmsg(2)` (automatically when a batch fills, explicitly via
/// [`BatchTx::finish`]); the encode-once fan-out queues repeated bytes as
/// arena ranges, so a message fanned to `k` recipients is copied once and
/// the kernel crossing is paid once per [`sys::BATCH`]. In fallback mode
/// each push is an immediate `send_to`. Both modes drop undeliverable
/// datagrams silently (fire-and-forget UDP semantics).
#[derive(Debug)]
pub struct BatchTx {
    arena: Option<sys::SendArena>,
    syscalls: u64,
    pending_sent: u64,
}

impl BatchTx {
    /// Creates a sender in the process-wide mode ([`sys::enabled`]).
    pub fn new() -> Self {
        Self::forced(sys::enabled())
    }

    /// Creates a sender with an explicit mode (tests/benches); batched
    /// mode degrades to fallback on unsupported targets.
    pub fn forced(batched: bool) -> Self {
        BatchTx {
            arena: (batched && sys::available()).then(sys::SendArena::new),
            syscalls: 0,
            pending_sent: 0,
        }
    }

    /// Whether the batched path is in effect.
    pub fn batched(&self) -> bool {
        self.arena.is_some()
    }

    /// Send syscalls made so far (`sendmmsg` + `send_to`).
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Queues (batched) or sends (fallback) one datagram through
    /// `socket`. `repeat` declares that `bytes` are identical to the
    /// previous push since the last flush — the encode-once fan-out hint
    /// that lets the batched path share the arena range instead of
    /// copying.
    pub fn push(&mut self, socket: &UdpSocket, addr: SocketAddr, bytes: &[u8], repeat: bool) {
        match &mut self.arena {
            Some(arena) => {
                if arena.is_full() {
                    let (sent, syscalls) = arena.flush(sys::fd_of(socket));
                    self.pending_sent += sent as u64;
                    self.syscalls += syscalls as u64;
                }
                match sys::SockAddrV4Raw::from_std(addr) {
                    Some(dest) if repeat && !arena.is_empty() => arena.push_repeat(dest),
                    Some(dest) => arena.push(dest, bytes),
                    None => {
                        // Non-IPv4 destination: fall back for this one.
                        self.syscalls += 1;
                        if socket.send_to(bytes, addr).is_ok() {
                            self.pending_sent += 1;
                        }
                    }
                }
            }
            None => {
                self.syscalls += 1;
                if socket.send_to(bytes, addr).is_ok() {
                    self.pending_sent += 1;
                }
            }
        }
    }

    /// Flushes anything still queued and returns the number of datagrams
    /// actually handed to the kernel since the previous `finish`.
    pub fn finish(&mut self, socket: &UdpSocket) -> u64 {
        if let Some(arena) = &mut self.arena {
            if !arena.is_empty() {
                let (sent, syscalls) = arena.flush(sys::fd_of(socket));
                self.pending_sent += sent as u64;
                self.syscalls += syscalls as u64;
            }
        }
        std::mem::take(&mut self.pending_sent)
    }
}

impl Default for BatchTx {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps process ids to their well-known socket addresses (loopback).
///
/// Built once per cluster; cheap to clone (`Arc` inside).
#[derive(Debug, Clone)]
pub struct AddressBook {
    inner: Arc<HashMap<ProcessId, WellKnownAddrs>>,
}

/// The two well-known addresses of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WellKnownAddrs {
    /// Where pull-requests are received.
    pub pull: SocketAddr,
    /// Where push-offers are received.
    pub push: SocketAddr,
}

impl AddressBook {
    /// Builds a book from explicit entries.
    pub fn new(entries: impl IntoIterator<Item = (ProcessId, WellKnownAddrs)>) -> Self {
        AddressBook {
            inner: Arc::new(entries.into_iter().collect()),
        }
    }

    /// The well-known addresses of `p`, if registered.
    pub fn addrs_of(&self, p: ProcessId) -> Option<WellKnownAddrs> {
        self.inner.get(&p).copied()
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Loopback address for an explicit port (random-port replies).
    pub fn loopback(port: u16) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
    }
}

/// Binds a non-blocking UDP socket on an OS-assigned loopback port.
pub fn bind_ephemeral() -> io::Result<UdpSocket> {
    let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
    socket.set_nonblocking(true)?;
    Ok(socket)
}

/// Fixed reply/data socket addresses of one process — only used by the
/// no-random-ports ablation (Figure 12(a)), where the reply channels sit on
/// attacker-knowable ports instead of fresh random ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationAddrs {
    /// Fixed pull-reply port.
    pub pull_reply: SocketAddr,
    /// Fixed push-reply port.
    pub push_reply: SocketAddr,
    /// Fixed push-data port.
    pub push_data: SocketAddr,
}

/// The bound sockets behind [`AblationAddrs`].
#[derive(Debug)]
pub struct AblationSockets {
    /// Fixed pull-reply receiver.
    pub pull_reply: UdpSocket,
    /// Fixed push-reply receiver.
    pub push_reply: UdpSocket,
    /// Fixed push-data receiver.
    pub push_data: UdpSocket,
}

impl AblationSockets {
    /// Binds the three fixed reply sockets on ephemeral loopback ports.
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures.
    pub fn bind() -> io::Result<(Self, AblationAddrs)> {
        let pull_reply = bind_ephemeral()?;
        let push_reply = bind_ephemeral()?;
        let push_data = bind_ephemeral()?;
        let addrs = AblationAddrs {
            pull_reply: pull_reply.local_addr()?,
            push_reply: push_reply.local_addr()?,
            push_data: push_data.local_addr()?,
        };
        Ok((
            AblationSockets {
                pull_reply,
                push_reply,
                push_data,
            },
            addrs,
        ))
    }
}

/// The well-known socket pair of one process.
#[derive(Debug)]
pub struct WellKnownSockets {
    /// Pull-request receiver.
    pub pull: UdpSocket,
    /// Push-offer receiver.
    pub push: UdpSocket,
}

impl WellKnownSockets {
    /// Binds both sockets on ephemeral loopback ports.
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures.
    pub fn bind() -> io::Result<(Self, WellKnownAddrs)> {
        let pull = bind_ephemeral()?;
        let push = bind_ephemeral()?;
        let addrs = WellKnownAddrs {
            pull: pull.local_addr()?,
            push: push.local_addr()?,
        };
        Ok((WellKnownSockets { pull, push }, addrs))
    }
}

/// A pool of random-port sockets implementing [`PortOracle`].
///
/// Sockets expire after `lifetime` rounds ("this thread is terminated
/// after a few rounds", §4), bounding both file descriptors and the window
/// an attacker would have even if a port leaked.
#[derive(Debug)]
pub struct SocketPool {
    lifetime: u64,
    sockets: Vec<(UdpSocket, PortPurpose, Round)>,
    /// Sockets that failed to bind (diagnostics).
    bind_failures: u64,
    /// Optional observability counter bumped per fresh port allocation.
    rotations: Option<drum_trace::Counter>,
    /// When set, fresh sockets register for readability wakeups here,
    /// tagged with the token (if any) so a shard event loop can route the
    /// wakeup back to the owning engine. Expired sockets deregister
    /// themselves on close.
    epoll: Option<(Arc<sys::Epoll>, Option<u64>)>,
}

impl SocketPool {
    /// Creates a pool whose sockets live for `lifetime` rounds.
    pub fn new(lifetime: u64) -> Self {
        SocketPool {
            lifetime,
            sockets: Vec::new(),
            bind_failures: 0,
            rotations: None,
            epoll: None,
        }
    }

    /// Attaches a counter (typically `names::PORT_ROTATIONS` from a
    /// [`drum_trace::Registry`]) incremented on every fresh port bind.
    pub fn set_rotation_counter(&mut self, counter: drum_trace::Counter) {
        self.rotations = Some(counter);
    }

    /// Registers every current and future pool socket with `epoll`, so the
    /// runtime's round loop wakes when a concealed reply port becomes
    /// readable. Closed (expired) sockets deregister themselves.
    pub fn set_epoll(&mut self, epoll: Arc<sys::Epoll>) {
        for (socket, _, _) in &self.sockets {
            let _ = epoll.add(socket);
        }
        self.epoll = Some((epoll, None));
    }

    /// Like [`SocketPool::set_epoll`], but registers every current and
    /// future pool socket under an explicit event token — the sharded
    /// runtime's engine-index registration, so one shared `epoll_pwait`
    /// can route a readable concealed port straight to the engine whose
    /// pool owns it.
    pub fn set_epoll_tagged(&mut self, epoll: Arc<sys::Epoll>, token: u64) {
        for (socket, _, _) in &self.sockets {
            let _ = epoll.add_tagged(socket, token);
        }
        self.epoll = Some((epoll, Some(token)));
    }

    /// Number of currently open random-port sockets.
    pub fn open_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Count of failed ephemeral binds.
    pub fn bind_failures(&self) -> u64 {
        self.bind_failures
    }

    /// Closes sockets allocated more than `lifetime` rounds ago.
    pub fn expire(&mut self, now: Round) {
        let lifetime = self.lifetime;
        self.sockets
            .retain(|(_, _, born)| now.since(*born) < lifetime);
    }

    /// Receives all pending datagrams from the pool, invoking
    /// `f(purpose, payload)` for each. Datagrams move through `rx` —
    /// batched `recvmmsg` or the per-datagram fallback, same arrival
    /// order either way; `scratch` backs the fallback path. Returns the
    /// number received.
    pub fn drain(
        &mut self,
        rx: &mut BatchRx,
        scratch: &mut [u8],
        mut f: impl FnMut(PortPurpose, &[u8]),
    ) -> usize {
        let mut count = 0;
        for (socket, purpose, _) in &self.sockets {
            count += rx.drain_socket(socket, scratch, |bytes| f(*purpose, bytes));
        }
        count
    }
}

impl PortOracle for SocketPool {
    fn allocate_port(&mut self, purpose: PortPurpose, round: Round) -> u16 {
        match bind_ephemeral() {
            Ok(socket) => {
                let port = socket.local_addr().map(|a| a.port()).unwrap_or(0);
                if let Some((epoll, token)) = &self.epoll {
                    let _ = match token {
                        Some(t) => epoll.add_tagged(&socket, *t),
                        None => epoll.add(&socket),
                    };
                }
                self.sockets.push((socket, purpose, round));
                if let Some(c) = &self.rotations {
                    c.inc();
                }
                port
            }
            Err(_) => {
                // Out of descriptors or ports: degrade by reusing the most
                // recent socket of the same purpose, or report port 0 (the
                // message will simply go unanswered — the gossip redundancy
                // absorbs it).
                self.bind_failures += 1;
                self.sockets
                    .iter()
                    .rev()
                    .find(|(_, p, _)| *p == purpose)
                    .and_then(|(s, _, _)| s.local_addr().ok())
                    .map(|a| a.port())
                    .unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_book_lookup() {
        let (_s, addrs) = WellKnownSockets::bind().unwrap();
        let book = AddressBook::new([(ProcessId(1), addrs)]);
        assert_eq!(book.addrs_of(ProcessId(1)), Some(addrs));
        assert_eq!(book.addrs_of(ProcessId(2)), None);
        assert_eq!(book.len(), 1);
        assert!(!book.is_empty());
    }

    #[test]
    fn well_known_sockets_have_distinct_ports() {
        let (_s, addrs) = WellKnownSockets::bind().unwrap();
        assert_ne!(addrs.pull.port(), addrs.push.port());
        assert!(addrs.pull.ip().is_loopback());
    }

    #[test]
    fn pool_allocates_distinct_ports() {
        let mut pool = SocketPool::new(3);
        let p1 = pool.allocate_port(PortPurpose::PullReply, Round(1));
        let p2 = pool.allocate_port(PortPurpose::PushReply, Round(1));
        assert_ne!(p1, 0);
        assert_ne!(p2, 0);
        assert_ne!(p1, p2);
        assert_eq!(pool.open_sockets(), 2);
    }

    #[test]
    fn pool_counts_port_rotations() {
        let reg = drum_trace::Registry::new();
        let mut pool = SocketPool::new(3);
        pool.set_rotation_counter(reg.counter(drum_trace::names::PORT_ROTATIONS));
        pool.allocate_port(PortPurpose::PullReply, Round(1));
        pool.allocate_port(PortPurpose::PushData, Round(1));
        assert_eq!(reg.counter(drum_trace::names::PORT_ROTATIONS).get(), 2);
    }

    #[test]
    fn pool_expires_old_sockets() {
        let mut pool = SocketPool::new(2);
        pool.allocate_port(PortPurpose::PullReply, Round(1));
        pool.allocate_port(PortPurpose::PullReply, Round(2));
        pool.expire(Round(3));
        assert_eq!(pool.open_sockets(), 1);
        pool.expire(Round(10));
        assert_eq!(pool.open_sockets(), 0);
    }

    #[test]
    fn pool_receives_datagrams_with_purpose() {
        let mut pool = SocketPool::new(3);
        let port = pool.allocate_port(PortPurpose::PushData, Round(1));
        let sender = bind_ephemeral().unwrap();
        sender
            .send_to(b"hello", AddressBook::loopback(port))
            .unwrap();
        // Give the loopback a moment.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut scratch = [0u8; 2048];
        let mut rx = BatchRx::new(2048);
        let mut got = Vec::new();
        let n = pool.drain(&mut rx, &mut scratch, |purpose, bytes| {
            got.push((purpose, bytes.to_vec()));
        });
        assert_eq!(n, 1);
        assert_eq!(got[0].0, PortPurpose::PushData);
        assert_eq!(got[0].1, b"hello");
        assert!(rx.syscalls() > 0);
    }

    #[test]
    fn drain_on_empty_pool_is_zero() {
        let mut pool = SocketPool::new(3);
        let mut scratch = [0u8; 64];
        let mut rx = BatchRx::new(64);
        assert_eq!(
            pool.drain(&mut rx, &mut scratch, |_, _| panic!("no data expected")),
            0
        );
    }

    /// Both receive modes must observe the identical datagram sequence for
    /// the identical input, differing only in syscall count.
    #[test]
    fn batch_rx_modes_agree_on_datagram_sequence() {
        let run = |batched: bool| -> (Vec<Vec<u8>>, u64) {
            let socket = bind_ephemeral().unwrap();
            let dest = socket.local_addr().unwrap();
            let sender = bind_ephemeral().unwrap();
            for i in 0..100u8 {
                sender.send_to(&[i, 0xEE, i], dest).unwrap();
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut rx = BatchRx::forced(2048, batched);
            let mut scratch = [0u8; 2048];
            let mut got = Vec::new();
            rx.drain_socket(&socket, &mut scratch, |bytes| got.push(bytes.to_vec()));
            (got, rx.syscalls())
        };
        let (batched, batched_calls) = run(true);
        let (fallback, fallback_calls) = run(false);
        assert_eq!(batched, fallback);
        assert_eq!(batched.len(), 100);
        if crate::sys::available() {
            // 100 datagrams: two recvmmsg calls versus 101 recv_from.
            assert!(
                batched_calls < fallback_calls,
                "batched {batched_calls} vs fallback {fallback_calls}"
            );
        }
    }

    #[test]
    fn batch_tx_fanout_delivers_once_per_recipient() {
        let rx_socket = bind_ephemeral().unwrap();
        let dest = rx_socket.local_addr().unwrap();
        let sender = bind_ephemeral().unwrap();
        let mut tx = BatchTx::new();
        tx.push(&sender, dest, b"first", false);
        for _ in 0..9 {
            tx.push(&sender, dest, b"first", true);
        }
        let sent = tx.finish(&sender);
        assert_eq!(sent, 10);
        if crate::sys::enabled() {
            assert_eq!(tx.syscalls(), 1, "fan-out must be one sendmmsg");
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut buf = [0u8; 64];
        let mut got = 0;
        while let Ok((len, _)) = rx_socket.recv_from(&mut buf) {
            assert_eq!(&buf[..len], b"first");
            got += 1;
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn batch_tx_flushes_when_full() {
        let rx_socket = bind_ephemeral().unwrap();
        let dest = rx_socket.local_addr().unwrap();
        let sender = bind_ephemeral().unwrap();
        let mut tx = BatchTx::new();
        let total = crate::sys::BATCH + 10;
        for i in 0..total {
            tx.push(&sender, dest, &[i as u8], false);
        }
        assert_eq!(tx.finish(&sender), total as u64);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut buf = [0u8; 64];
        let mut got = 0;
        while rx_socket.recv_from(&mut buf).is_ok() {
            got += 1;
        }
        assert_eq!(got, total);
    }
}
