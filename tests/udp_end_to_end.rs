//! End-to-end tests of the UDP runtime: dissemination, attack resistance
//! and the §8 measurement pipeline, on a real (loopback) network.

use std::time::{Duration, Instant};

use drum::core::config::ProtocolVariant;
use drum::net::experiment::{
    paper_cluster_config, propagation_experiment, throughput_experiment, Cluster,
};
use drum_core::bytes::Bytes;

const ROUND: Duration = Duration::from_millis(40);

fn wait_all_receive(cluster: &Cluster, expect: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    let mut seen = vec![false; cluster.handles().len()];
    seen[0] = true;
    while Instant::now() < deadline && seen.iter().filter(|s| **s).count() < expect {
        for (i, h) in cluster.handles().iter().enumerate() {
            if !h.take_delivered().is_empty() {
                seen[i] = true;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    seen.iter().filter(|s| **s).count()
}

#[test]
fn drum_full_dissemination_over_udp() {
    let config = paper_cluster_config(ProtocolVariant::Drum, 10, 0, 0.0, ROUND, 1);
    let correct = config.correct();
    let cluster = Cluster::start(config).unwrap();
    cluster.publish_from_source(0, 50);
    let reached = wait_all_receive(&cluster, correct, Duration::from_secs(20));
    assert_eq!(
        reached, correct,
        "only {reached}/{correct} processes received M"
    );
    cluster.shutdown();
}

#[test]
fn drum_disseminates_despite_attack_on_source() {
    // Attack the source and two more processes hard; Drum still delivers.
    let config = paper_cluster_config(ProtocolVariant::Drum, 10, 3, 128.0, ROUND, 2);
    let correct = config.correct();
    let cluster = Cluster::start(config).unwrap();
    cluster.publish_from_source(0, 50);
    let reached = wait_all_receive(&cluster, correct, Duration::from_secs(30));
    assert!(
        reached >= correct - 1,
        "attack suppressed dissemination: {reached}/{correct}"
    );
    cluster.shutdown();
}

#[test]
fn pull_attack_on_source_delays_exit() {
    // Under a pull-channel flood of the source, Pull struggles to get the
    // message out at all within a few rounds — the p̃ effect.
    let config = paper_cluster_config(ProtocolVariant::Pull, 8, 1, 1024.0, ROUND, 3);
    let cluster = Cluster::start(config).unwrap();
    cluster.publish_from_source(0, 50);
    // Give it 5 rounds only. With x=1024 vs F=4 the per-round escape
    // probability is below 1%, so in almost every run the message is still
    // stuck at (or barely out of) the source.
    std::thread::sleep(ROUND * 5);
    let receivers: usize = cluster.handles()[1..]
        .iter()
        .map(|h| usize::from(!h.take_delivered().is_empty()))
        .sum();
    cluster.shutdown();
    assert!(
        receivers <= 4,
        "pull escaped too easily: {receivers} receivers"
    );
}

#[test]
fn multiple_sources_interleave() {
    let config = paper_cluster_config(ProtocolVariant::Drum, 6, 0, 0.0, ROUND, 4);
    let cluster = Cluster::start(config).unwrap();
    // Two different processes publish concurrently.
    cluster.handles()[0].publish(Bytes::from_static(b"from p0"));
    cluster.handles()[1].publish(Bytes::from_static(b"from p1"));

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut got_p0 = false;
    let mut got_p1 = false;
    while Instant::now() < deadline && !(got_p0 && got_p1) {
        for d in cluster.handles()[2].take_delivered() {
            match d.message.payload.as_ref() {
                b"from p0" => got_p0 = true,
                b"from p1" => got_p1 = true,
                other => panic!("unexpected payload {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
    assert!(
        got_p0 && got_p1,
        "p2 missed a source: p0={got_p0} p1={got_p1}"
    );
}

#[test]
fn throughput_report_is_sane() {
    let config = paper_cluster_config(ProtocolVariant::Drum, 8, 0, 0.0, ROUND, 5);
    let report = throughput_experiment(config, 30, 60.0, 50, Duration::from_secs(2)).unwrap();
    assert_eq!(report.published, 30);
    assert!(!report.receivers.is_empty());
    for r in &report.receivers {
        assert!(r.received <= 30);
        assert!(r.mean_latency_ms >= 0.0);
        assert!(!r.attacked);
    }
    // The mean over receivers is positive: messages flowed.
    assert!(report.mean_throughput() > 0.0);
}

#[test]
fn propagation_experiment_counts_hops() {
    let config = paper_cluster_config(ProtocolVariant::Drum, 8, 0, 0.0, ROUND, 6);
    let report = propagation_experiment(config, 4, 1, Duration::from_secs(15)).unwrap();
    assert_eq!(report.rounds_to_99.count() as usize + report.incomplete, 4);
    assert!(
        report.rounds_to_99.count() >= 3,
        "too many incomplete messages"
    );
    let mean = report.rounds_to_99.mean();
    // A 7-correct-process group converges in a few rounds.
    assert!((1.0..20.0).contains(&mean), "mean hops {mean}");
}

#[test]
fn push_starves_attacked_receiver_drum_does_not() {
    // One receiver attacked heavily. Under Push its incoming channel is the
    // only path, so deliveries drop; under Drum its pull channel still
    // works. Compare delivery counts of the attacked receiver (id 1).
    let count_for = |variant| {
        // Attack ids 0 and 1 (the source is id 0 per the paper).
        let config = paper_cluster_config(variant, 8, 2, 256.0, ROUND, 7);
        let report = throughput_experiment(config, 40, 80.0, 50, Duration::from_secs(3)).unwrap();
        report
            .receivers
            .iter()
            .find(|r| r.id.as_u64() == 1)
            .map(|r| r.received)
            .unwrap_or(0)
    };
    let drum = count_for(ProtocolVariant::Drum);
    let push = count_for(ProtocolVariant::Push);
    assert!(
        drum > push || drum >= 35,
        "attacked receiver: drum got {drum}, push got {push}"
    );
}
