//! Figure 2: validating known gossip results (no DoS attack).
//!
//! Thin wrapper over [`drum_bench::figures::fig02`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig02(&mut out).expect("write fig02 to stdout");
}
