//! Trial execution and aggregation.
//!
//! Each data point in the paper's simulation figures averages 1000
//! independent runs. [`run_experiment`] executes trials on the shared
//! [`drum_pool::Pool`] with per-trial deterministic seeds, so every
//! figure is exactly reproducible from `(config, base_seed, trials)`.
//!
//! # Deterministic reduction under dynamic scheduling
//!
//! The pool claims jobs dynamically (whichever thread frees next takes
//! the next index), so nothing about *which* thread ran a trial or *when*
//! may leak into the result. The reduction is therefore arranged so the
//! float operations happen in one fixed order regardless of worker count:
//!
//! 1. trial `i` always uses seed `base_seed + i` — the trial itself is a
//!    pure function of `(cfg, seed)`;
//! 2. trials are grouped into chunks whose size is a pure function of
//!    `trials` alone ([`chunk_size`] — never of the worker count, unlike
//!    the old static `trials / workers` split);
//! 3. each chunk absorbs its trials in ascending trial order into its own
//!    fixed-index [`Partial`] (Welford pushes are order-sensitive);
//! 4. chunk partials are merged in ascending chunk order on the
//!    submitting thread.
//!
//! Every float sees the same operands in the same order whether the pool
//! has 1 worker or 64, so `ExperimentResult` is *byte-identical* across
//! `DRUM_POOL_THREADS` settings — pinned by the worker-count-independence
//! property test in `tests/pool_determinism.rs`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use drum_metrics::stats::RunningStats;
use drum_pool::Pool;

use crate::config::SimConfig;
use crate::model::SimState;

/// Which stepper a trial runs on.
///
/// The two steppers draw from different (both deterministic) random
/// streams, so they produce statistically equivalent but not bitwise-equal
/// trials. Within `Sharded`, results are byte-identical for **any** shard
/// count and any `DRUM_POOL_THREADS` — the stream is keyed per process,
/// never per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// The seed serial stepper: one RNG stream, one thread. The oracle
    /// implementation, selected by `DRUM_SIM_SHARDS=1`.
    Serial,
    /// The intra-trial parallel stepper ([`SimState::step_sharded`]).
    Sharded {
        /// Number of contiguous process-range shards per round.
        shards: usize,
    },
}

/// Default shard count for an `n`-member trial: one shard per 64 Ki
/// members, capped at 16. A pure function of `n` (never of the machine),
/// so default-mode results are reproducible everywhere; small trials get
/// one shard and skip the merge machinery entirely.
pub fn auto_shards(n: usize) -> usize {
    n.div_ceil(65_536).clamp(1, 16)
}

impl StepMode {
    /// Resolves the stepper for an `n`-member trial from `DRUM_SIM_SHARDS`:
    /// `1` selects the serial oracle, an explicit `k >= 2` forces `k`
    /// shards, and unset/`0`/garbage selects [`auto_shards`].
    pub fn for_n(n: usize) -> StepMode {
        match std::env::var("DRUM_SIM_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(1) => StepMode::Serial,
            Some(k) if k >= 2 => StepMode::Sharded { shards: k },
            _ => StepMode::Sharded {
                shards: auto_shards(n),
            },
        }
    }
}

/// Outcome of a single simulated trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// First round at which ≥ `threshold` of the correct processes held
    /// `M`; `None` if `max_rounds` was hit first.
    pub rounds_to_threshold: Option<u32>,
    /// Same threshold restricted to attacked correct processes.
    pub rounds_attacked: Option<u32>,
    /// Same threshold restricted to non-attacked correct processes.
    pub rounds_unattacked: Option<u32>,
    /// Rounds the trial actually simulated before stopping (threshold
    /// reached and CDF recorded, or `max_rounds`). This is the trial's
    /// deterministic cost in scheduler units — the straggler spread the
    /// dynamic pool exists to absorb.
    pub rounds_executed: u32,
    /// Fraction of correct processes holding `M` after each round
    /// (index 0 = after round 1), recorded up to `cdf_rounds`.
    pub fraction_per_round: Vec<f64>,
}

/// Runs one trial of `cfg` with the given `seed`, recording per-round
/// fractions for the first `cdf_rounds` rounds, on the stepper selected
/// by [`StepMode::for_n`] (sharded by default, serial under
/// `DRUM_SIM_SHARDS=1`).
pub fn run_trial(cfg: &SimConfig, seed: u64, cdf_rounds: usize) -> TrialOutcome {
    run_trial_traced(cfg, seed, cdf_rounds, drum_trace::Tracer::disabled())
}

/// Like [`run_trial`], but emits round-stamped events through `tracer`.
///
/// Tracing never touches the RNG, so a traced trial evolves identically
/// to an untraced one with the same seed; with a deterministic sink the
/// emitted trace is byte-stable across runs (the golden-trace oracle).
pub fn run_trial_traced(
    cfg: &SimConfig,
    seed: u64,
    cdf_rounds: usize,
    tracer: drum_trace::Tracer,
) -> TrialOutcome {
    run_trial_traced_mode(cfg, seed, cdf_rounds, tracer, StepMode::for_n(cfg.n))
}

/// Like [`run_trial_traced`], with an explicit stepper choice — the hook
/// the golden-trace fixtures use to pin the serial oracle and the sharded
/// stepper independently of the `DRUM_SIM_SHARDS` environment.
pub fn run_trial_traced_mode(
    cfg: &SimConfig,
    seed: u64,
    cdf_rounds: usize,
    tracer: drum_trace::Tracer,
    mode: StepMode,
) -> TrialOutcome {
    let mut state = SimState::new(cfg.clone());
    state.set_tracer(tracer);
    run_trial_in(&mut state, seed, cdf_rounds, mode, Pool::global())
}

/// Trial driver over a caller-owned [`SimState`] — the state's scratch
/// (and, for [`StepMode::Sharded`], its per-shard partials) is reused
/// across calls via [`SimState::reset`], so a sweep's worth of trials
/// allocates its working set once.
fn run_trial_in(
    state: &mut SimState,
    seed: u64,
    cdf_rounds: usize,
    mode: StepMode,
    pool: &Pool,
) -> TrialOutcome {
    let cfg = state.config().clone();
    // Only the serial stepper draws from the trial-wide stream; the
    // sharded stepper derives per-(round, phase, process) streams from the
    // seed itself.
    let mut rng = SmallRng::seed_from_u64(seed);
    let threshold = cfg.threshold;

    let n_attacked = cfg.attacked();
    let n_correct = cfg.correct();
    let n_unattacked = n_correct - n_attacked;
    let need_total = (threshold * n_correct as f64).ceil() as usize;
    let need_attacked = if n_attacked > 0 {
        (threshold * n_attacked as f64).ceil() as usize
    } else {
        0
    };
    let need_unattacked = if n_unattacked > 0 {
        (threshold * n_unattacked as f64).ceil() as usize
    } else {
        0
    };

    let mut outcome = TrialOutcome {
        rounds_to_threshold: None,
        rounds_attacked: if n_attacked == 0 { Some(0) } else { None },
        rounds_unattacked: if n_unattacked == 0 { Some(0) } else { None },
        rounds_executed: 0,
        fraction_per_round: Vec::with_capacity(cdf_rounds),
    };

    for round in 1..=cfg.max_rounds {
        match mode {
            StepMode::Serial => state.step(&mut rng),
            StepMode::Sharded { shards } => state.step_sharded(seed, shards, pool),
        }
        outcome.rounds_executed = round;
        let with_m = state.correct_with_m();
        if (round as usize) <= cdf_rounds {
            outcome
                .fraction_per_round
                .push(cfg.fraction_of_correct(with_m));
        }
        if outcome.rounds_to_threshold.is_none() && with_m >= need_total {
            outcome.rounds_to_threshold = Some(round);
        }
        if outcome.rounds_attacked.is_none() && state.attacked_with_m() >= need_attacked {
            outcome.rounds_attacked = Some(round);
        }
        if outcome.rounds_unattacked.is_none() && state.unattacked_with_m() >= need_unattacked {
            outcome.rounds_unattacked = Some(round);
        }
        let done = outcome.rounds_to_threshold.is_some()
            && outcome.rounds_attacked.is_some()
            && outcome.rounds_unattacked.is_some()
            && (round as usize) >= cdf_rounds;
        if done {
            break;
        }
    }

    // Pad the CDF tail with the final value so ragged trials average
    // correctly.
    let last = outcome
        .fraction_per_round
        .last()
        .copied()
        .unwrap_or_else(|| cfg.fraction_of_correct(state.correct_with_m()));
    while outcome.fraction_per_round.len() < cdf_rounds {
        outcome
            .fraction_per_round
            .push(last.max(state.fraction_with_m()));
    }

    outcome
}

/// Aggregated results of many trials of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Trials executed.
    pub trials: usize,
    /// Trials that never reached the threshold within `max_rounds`.
    pub failures: usize,
    /// Rounds to the overall threshold.
    pub rounds: RunningStats,
    /// Rounds to the threshold among attacked correct processes.
    pub rounds_attacked: RunningStats,
    /// Rounds to the threshold among non-attacked correct processes.
    pub rounds_unattacked: RunningStats,
    /// Mean fraction of correct processes holding `M` after each round
    /// (the CDF curves of Figures 5, 13, 14).
    pub avg_fraction_per_round: Vec<f64>,
}

impl ExperimentResult {
    /// Mean rounds to the threshold (successful trials only).
    pub fn mean_rounds(&self) -> f64 {
        self.rounds.mean()
    }

    /// Standard deviation of the rounds to the threshold.
    pub fn std_rounds(&self) -> f64 {
        self.rounds.population_std()
    }
}

/// The scheduling unit: trials per pool job, a **pure function of
/// `trials`** so the reduction order never depends on the machine.
/// Small experiments get chunk 1 (maximum redistribution); large ones
/// cap at 16 trials per job, which at the paper's 1000-trial points
/// yields 63 jobs per config — plenty of slack for dynamic scheduling
/// while keeping claim overhead negligible.
pub fn chunk_size(trials: usize) -> usize {
    trials.div_ceil(64).clamp(1, 16)
}

/// Runs `trials` trials of **every** config in `cfgs` as one flat job set
/// on `pool`, and aggregates per config. This is the primitive sweeps
/// build on: submitting (config × chunk) jobs together means the pool
/// never drains at a sweep-point boundary — fast points' workers move
/// straight onto the next point's trials instead of idling at a join
/// barrier.
///
/// Trial `i` of every config uses seed `base_seed + i`; results are
/// byte-identical for any pool size (see the module docs).
///
/// # Panics
///
/// Panics if `trials == 0`, any configuration is invalid, or a trial
/// panics (the pool re-raises the first job panic here).
pub fn run_many_on(
    pool: &Pool,
    cfgs: &[SimConfig],
    trials: usize,
    base_seed: u64,
    cdf_rounds: usize,
) -> Vec<ExperimentResult> {
    assert!(trials > 0, "need at least one trial");
    for cfg in cfgs {
        cfg.validate().expect("invalid simulation config");
    }
    if cfgs.is_empty() {
        return Vec::new();
    }

    let chunk = chunk_size(trials);
    let chunks_per_cfg = trials.div_ceil(chunk);
    let partials: Vec<Partial> = pool.map(cfgs.len() * chunks_per_cfg, |job| {
        let cfg = &cfgs[job / chunks_per_cfg];
        let mode = StepMode::for_n(cfg.n);
        let lo = (job % chunks_per_cfg) * chunk;
        let hi = (lo + chunk).min(trials);
        let mut part = Partial::new(cdf_rounds);
        // One SimState per chunk, rewound between trials so scratch
        // capacity (tallies, bitsets, per-shard partials) is reused —
        // [`SimState::reset`] pins this to fresh-state equivalence.
        let mut state: Option<SimState> = None;
        for i in lo..hi {
            let state = match &mut state {
                Some(s) => {
                    s.reset();
                    s
                }
                None => state.insert(SimState::new(cfg.clone())),
            };
            part.absorb(&run_trial_in(
                state,
                base_seed + i as u64,
                cdf_rounds,
                mode,
                pool,
            ));
        }
        part
    });

    partials
        .chunks(chunks_per_cfg)
        .map(|parts| {
            let mut total = Partial::new(cdf_rounds);
            for p in parts {
                total.merge(p);
            }
            total.into_result(trials)
        })
        .collect()
}

/// [`run_many_on`] on the process-wide [`Pool::global`].
pub fn run_many(
    cfgs: &[SimConfig],
    trials: usize,
    base_seed: u64,
    cdf_rounds: usize,
) -> Vec<ExperimentResult> {
    run_many_on(Pool::global(), cfgs, trials, base_seed, cdf_rounds)
}

/// Runs `trials` independent trials of `cfg` on the global pool and
/// aggregates.
///
/// Trial `i` uses seed `base_seed + i`, so results are reproducible and
/// independent of thread scheduling and worker count.
///
/// # Panics
///
/// Panics if `trials == 0` or the configuration is invalid.
pub fn run_experiment(
    cfg: &SimConfig,
    trials: usize,
    base_seed: u64,
    cdf_rounds: usize,
) -> ExperimentResult {
    run_many(std::slice::from_ref(cfg), trials, base_seed, cdf_rounds)
        .pop()
        .expect("one config in, one result out")
}

/// Order-sensitive partial aggregate of one chunk of trials.
#[derive(Debug)]
struct Partial {
    failures: usize,
    rounds: RunningStats,
    rounds_attacked: RunningStats,
    rounds_unattacked: RunningStats,
    fraction_sums: Vec<f64>,
}

impl Partial {
    fn new(cdf_rounds: usize) -> Self {
        Partial {
            failures: 0,
            rounds: RunningStats::new(),
            rounds_attacked: RunningStats::new(),
            rounds_unattacked: RunningStats::new(),
            fraction_sums: vec![0.0; cdf_rounds],
        }
    }

    fn absorb(&mut self, outcome: &TrialOutcome) {
        match outcome.rounds_to_threshold {
            Some(r) => self.rounds.push(r as f64),
            None => self.failures += 1,
        }
        if let Some(r) = outcome.rounds_attacked {
            if r > 0 {
                self.rounds_attacked.push(r as f64);
            }
        }
        if let Some(r) = outcome.rounds_unattacked {
            if r > 0 {
                self.rounds_unattacked.push(r as f64);
            }
        }
        for (sum, f) in self
            .fraction_sums
            .iter_mut()
            .zip(&outcome.fraction_per_round)
        {
            *sum += f;
        }
    }

    fn merge(&mut self, other: &Partial) {
        self.failures += other.failures;
        self.rounds.merge(&other.rounds);
        self.rounds_attacked.merge(&other.rounds_attacked);
        self.rounds_unattacked.merge(&other.rounds_unattacked);
        for (a, b) in self.fraction_sums.iter_mut().zip(&other.fraction_sums) {
            *a += b;
        }
    }

    fn into_result(self, trials: usize) -> ExperimentResult {
        let avg_fraction_per_round = self
            .fraction_sums
            .iter()
            .map(|s| s / trials as f64)
            .collect();
        ExperimentResult {
            trials,
            failures: self.failures,
            rounds: self.rounds,
            rounds_attacked: self.rounds_attacked,
            rounds_unattacked: self.rounds_unattacked,
            avg_fraction_per_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drum_core::ProtocolVariant;

    #[test]
    fn trial_reaches_threshold_without_attack() {
        let cfg = SimConfig::baseline(ProtocolVariant::Drum, 100);
        let outcome = run_trial(&cfg, 1, 20);
        let r = outcome.rounds_to_threshold.expect("should converge");
        assert!(r <= 20, "took {r} rounds");
        assert_eq!(outcome.fraction_per_round.len(), 20);
        // Fractions are monotone and end at ~1.
        for w in outcome.fraction_per_round.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(*outcome.fraction_per_round.last().unwrap() >= 0.99);
    }

    #[test]
    fn trial_is_deterministic_given_seed() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 64.0);
        let a = run_trial(&cfg, 11, 15);
        let b = run_trial(&cfg, 11, 15);
        assert_eq!(a, b);
        let c = run_trial(&cfg, 12, 15);
        assert!(a != c || a.rounds_to_threshold == c.rounds_to_threshold);
    }

    #[test]
    fn trial_reports_its_executed_round_cost() {
        let cfg = SimConfig::baseline(ProtocolVariant::Drum, 100);
        let outcome = run_trial(&cfg, 1, 5);
        // The trial ran at least until threshold + CDF, at most max_rounds.
        let r = outcome.rounds_to_threshold.expect("should converge");
        assert!(outcome.rounds_executed >= r.max(5));
        assert!(outcome.rounds_executed <= cfg.max_rounds);

        let mut capped = SimConfig::paper_attack(ProtocolVariant::Pull, 120, 512.0);
        capped.max_rounds = 3;
        let stuck = run_trial(&capped, 1, 2);
        assert_eq!(stuck.rounds_executed, 3);
    }

    #[test]
    fn experiment_aggregates() {
        let cfg = SimConfig::baseline(ProtocolVariant::Push, 80);
        let res = run_experiment(&cfg, 20, 42, 15);
        assert_eq!(res.trials, 20);
        assert_eq!(res.failures, 0);
        assert_eq!(res.rounds.count(), 20);
        assert!(res.mean_rounds() > 1.0 && res.mean_rounds() < 20.0);
        assert_eq!(res.avg_fraction_per_round.len(), 15);
        assert!(res.avg_fraction_per_round[14] > 0.99);
    }

    #[test]
    fn experiment_deterministic_despite_parallelism() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Pull, 60, 32.0);
        let a = run_experiment(&cfg, 16, 7, 10);
        let b = run_experiment(&cfg, 16, 7, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn run_many_matches_individual_experiments() {
        let cfgs = vec![
            SimConfig::baseline(ProtocolVariant::Drum, 60),
            SimConfig::paper_attack(ProtocolVariant::Push, 60, 32.0),
            SimConfig::paper_attack(ProtocolVariant::Pull, 60, 32.0),
        ];
        let flat = run_many(&cfgs, 12, 5, 8);
        assert_eq!(flat.len(), cfgs.len());
        for (cfg, flat_res) in cfgs.iter().zip(&flat) {
            assert_eq!(flat_res, &run_experiment(cfg, 12, 5, 8));
        }
    }

    #[test]
    fn run_many_with_no_configs_is_empty() {
        assert_eq!(run_many(&[], 4, 0, 4), Vec::new());
    }

    #[test]
    fn chunk_size_is_a_pure_function_of_trials() {
        assert_eq!(chunk_size(1), 1);
        assert_eq!(chunk_size(16), 1);
        assert_eq!(chunk_size(64), 1);
        assert_eq!(chunk_size(65), 2);
        assert_eq!(chunk_size(150), 3);
        assert_eq!(chunk_size(1000), 16);
        assert_eq!(chunk_size(100_000), 16);
        // Job count per config stays >= 63 at the paper's point size, so
        // there is always work to redistribute.
        assert!(1000usize.div_ceil(chunk_size(1000)) >= 63);
    }

    #[test]
    fn attacked_trials_record_subgroup_rounds() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 64.0);
        let res = run_experiment(&cfg, 8, 3, 10);
        assert!(res.rounds_attacked.count() > 0);
        assert!(res.rounds_unattacked.count() > 0);
        // Non-attacked processes are reached no later on average.
        assert!(res.rounds_unattacked.mean() <= res.rounds_attacked.mean() + 2.0);
    }

    #[test]
    fn hopeless_scenario_counts_failures() {
        // An absurd attack that cannot finish within 2 rounds.
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Pull, 120, 512.0);
        cfg.max_rounds = 2;
        let res = run_experiment(&cfg, 5, 1, 2);
        assert!(res.failures > 0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let cfg = SimConfig::baseline(ProtocolVariant::Drum, 50);
        run_experiment(&cfg, 0, 0, 5);
    }

    #[test]
    fn auto_shards_is_a_pure_function_of_n() {
        assert_eq!(auto_shards(1), 1);
        assert_eq!(auto_shards(120), 1);
        assert_eq!(auto_shards(65_536), 1);
        assert_eq!(auto_shards(65_537), 2);
        assert_eq!(auto_shards(1_000_000), 16);
        assert_eq!(auto_shards(100_000_000), 16);
    }

    #[test]
    fn explicit_modes_are_deterministic_and_shard_count_independent() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 130, 64.0);
        let t = |mode| run_trial_traced_mode(&cfg, 17, 12, drum_trace::Tracer::disabled(), mode);
        assert_eq!(t(StepMode::Serial), t(StepMode::Serial));
        let sharded = t(StepMode::Sharded { shards: 1 });
        assert_eq!(sharded, t(StepMode::Sharded { shards: 1 }));
        // The shard count never shows through the outcome.
        for shards in [2, 5, 16] {
            assert_eq!(sharded, t(StepMode::Sharded { shards }));
        }
        // Both steppers converge on this easy scenario (different streams,
        // same distribution).
        assert!(t(StepMode::Serial).rounds_to_threshold.is_some());
        assert!(sharded.rounds_to_threshold.is_some());
    }

    #[test]
    fn traced_trial_matches_untraced() {
        use std::sync::Arc;

        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 80, 64.0);
        let plain = run_trial(&cfg, 9, 12);

        let sink = Arc::new(drum_trace::MemorySink::new());
        let tracer = drum_trace::Tracer::new(sink.clone());
        let traced = run_trial_traced(&cfg, 9, 12, tracer);

        // Tracing must not perturb the simulation (it never draws from
        // the RNG), and the trial must actually produce events.
        assert_eq!(plain, traced);
        let events = sink.take();
        assert!(events.iter().any(|e| e.name == "sim.start"));
        assert!(events.iter().any(|e| e.name == "round"));
        assert!(events.iter().any(|e| e.name == "deliver"));
    }
}
