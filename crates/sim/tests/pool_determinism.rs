//! Worker-count independence of the experiment runner, and the
//! straggler-spread regression that motivates dynamic scheduling.
//!
//! The runner's contract (runner.rs module docs): because the chunk size
//! is a pure function of the trial count and chunk partials merge in
//! chunk order, `ExperimentResult` must be **byte-identical** — every
//! float compared via `to_bits` — whether trials run inline on one
//! thread, on a 3-thread pool, or on the default global pool. This is
//! what lets `DRUM_POOL_THREADS=1` CI runs validate the parallel runs.

use drum_core::ProtocolVariant;
use drum_pool::{schedule, Pool};
use drum_sim::config::SimConfig;
use drum_sim::runner::{chunk_size, run_experiment, run_many_on, run_trial, ExperimentResult};
use drum_testkit::prop::{self, Config};
use drum_testkit::prop_assert;

/// Bitwise equality for the float-bearing parts of a result; `==` would
/// accept `-0.0 == 0.0` and reject nothing NaN-shaped, while the contract
/// is byte identity.
fn assert_bitwise_eq(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(a.trials, b.trials, "{what}: trials");
    assert_eq!(a.failures, b.failures, "{what}: failures");
    for (name, x, y) in [
        ("rounds", &a.rounds, &b.rounds),
        ("rounds_attacked", &a.rounds_attacked, &b.rounds_attacked),
        (
            "rounds_unattacked",
            &a.rounds_unattacked,
            &b.rounds_unattacked,
        ),
    ] {
        assert_eq!(x.count(), y.count(), "{what}: {name} count");
        assert_eq!(
            x.mean().to_bits(),
            y.mean().to_bits(),
            "{what}: {name} mean bits"
        );
        assert_eq!(
            x.population_std().to_bits(),
            y.population_std().to_bits(),
            "{what}: {name} std bits"
        );
    }
    assert_eq!(
        a.avg_fraction_per_round.len(),
        b.avg_fraction_per_round.len(),
        "{what}: cdf length"
    );
    for (i, (x, y)) in a
        .avg_fraction_per_round
        .iter()
        .zip(&b.avg_fraction_per_round)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: cdf[{i}] bits");
    }
}

fn scenario_mix() -> Vec<SimConfig> {
    vec![
        SimConfig::baseline(ProtocolVariant::Drum, 80),
        SimConfig::paper_attack(ProtocolVariant::Push, 80, 128.0),
        SimConfig::paper_attack(ProtocolVariant::Pull, 80, 64.0),
    ]
}

#[test]
fn results_identical_across_worker_counts() {
    let cfgs = scenario_mix();
    let trials = 20;
    // 1 thread = the inline in-order oracle; 3 and 7 exercise dynamic
    // claiming with different interleavings; the global pool is whatever
    // this machine (or DRUM_POOL_THREADS) says.
    let oracle = run_many_on(&Pool::new(1), &cfgs, trials, 31, 12);
    for threads in [3, 7] {
        let pool = Pool::new(threads);
        // Repeat per pool so claim interleavings actually vary.
        for rep in 0..3 {
            let got = run_many_on(&pool, &cfgs, trials, 31, 12);
            assert_eq!(got.len(), oracle.len());
            for (cfg_i, (a, b)) in oracle.iter().zip(&got).enumerate() {
                assert_bitwise_eq(a, b, &format!("threads={threads} rep={rep} cfg={cfg_i}"));
            }
        }
    }
    let global = run_many_on(Pool::global(), &cfgs, trials, 31, 12);
    for (cfg_i, (a, b)) in oracle.iter().zip(&global).enumerate() {
        assert_bitwise_eq(a, b, &format!("global pool cfg={cfg_i}"));
    }
}

#[test]
fn run_experiment_uses_the_same_reduction_as_the_inline_pool() {
    let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 60, 64.0);
    let via_global = run_experiment(&cfg, 17, 5, 8);
    let via_inline = run_many_on(&Pool::new(1), std::slice::from_ref(&cfg), 17, 5, 8)
        .pop()
        .unwrap();
    assert_bitwise_eq(&via_inline, &via_global, "run_experiment vs inline");
}

#[test]
fn prop_worker_count_never_changes_results() {
    let pool3 = Pool::new(3);
    let pool5 = Pool::new(5);
    prop::check(
        "worker_count_never_changes_results",
        Config::with_cases(12),
        |g| {
            let n = g.usize_in(30..90);
            let protocol = [
                ProtocolVariant::Drum,
                ProtocolVariant::Push,
                ProtocolVariant::Pull,
            ][g.index(3)];
            let x = g.u64_in(0..257) as f64;
            let trials = g.usize_in(1..24);
            let seed = g.u64_in(0..1 << 32);
            let cdf_rounds = g.usize_in(0..10);
            let mut cfg = if x == 0.0 {
                SimConfig::baseline(protocol, n)
            } else {
                SimConfig::paper_attack(protocol, n, x)
            };
            // Keep hopeless Pull floods short so cases stay fast.
            cfg.max_rounds = 120;
            let cfgs = std::slice::from_ref(&cfg);
            let a = run_many_on(&Pool::new(1), cfgs, trials, seed, cdf_rounds);
            let b = run_many_on(&pool3, cfgs, trials, seed, cdf_rounds);
            let c = run_many_on(&pool5, cfgs, trials, seed, cdf_rounds);
            prop_assert!(a == b, "1 thread vs 3 threads diverged: {a:?} vs {b:?}");
            prop_assert!(a == c, "1 thread vs 5 threads diverged: {a:?} vs {c:?}");
            // PartialEq passed; also pin bit-level identity.
            for (x3, x1) in b.iter().zip(&a) {
                for (f3, f1) in x3
                    .avg_fraction_per_round
                    .iter()
                    .zip(&x1.avg_fraction_per_round)
                {
                    prop_assert!(f3.to_bits() == f1.to_bits(), "cdf bits diverged");
                }
            }
            Ok(())
        },
    );
}

/// Every adversary strategy is as deterministic as the static flood:
/// retargeting decisions are pure functions of the trial RNG and round
/// state, so a fixed seed must give byte-identical results no matter how
/// many pool workers interleave the trials. This is what makes the
/// `DRUM_ADVERSARY` CI matrix rows meaningful — a strategy whose results
/// depended on scheduling would turn those jobs into noise.
#[test]
fn adversary_strategies_deterministic_across_worker_counts() {
    use drum_sim::AdversaryKind;

    // Honor the CI matrix knob: under DRUM_ADVERSARY=<kind> pin that
    // strategy on every scenario too, so the env rows exercise it here.
    let env_kind = AdversaryKind::from_env();
    for kind in AdversaryKind::ALL {
        let cfgs: Vec<SimConfig> = [
            SimConfig::paper_attack(ProtocolVariant::Drum, 80, 128.0),
            SimConfig::paper_attack(ProtocolVariant::Push, 80, 64.0),
            SimConfig::paper_attack(ProtocolVariant::Pull, 80, 64.0),
        ]
        .into_iter()
        .map(|cfg| {
            let mut cfg = cfg.with_adversary(env_kind.unwrap_or(kind));
            // Adaptive floods against Pull can be slow to converge; the
            // determinism contract does not need full propagation.
            cfg.max_rounds = 150;
            cfg
        })
        .collect();
        let trials = 12;
        let oracle = run_many_on(&Pool::new(1), &cfgs, trials, 20040628, 8);
        for threads in [3, 7] {
            let got = run_many_on(&Pool::new(threads), &cfgs, trials, 20040628, 8);
            for (cfg_i, (a, b)) in oracle.iter().zip(&got).enumerate() {
                assert_bitwise_eq(
                    a,
                    b,
                    &format!("adversary={} threads={threads} cfg={cfg_i}", kind.name()),
                );
            }
        }
    }
}

/// Tentpole invariant of the intra-trial sharded stepper: one fixed-seed
/// trial is byte-identical across `DRUM_POOL_THREADS ∈ {1, 3, 7}` *and*
/// across shard counts, including shard counts that don't divide `n`
/// (straggler-mix ranges: the last shard is smaller and finishes first,
/// so workers claim uneven batches) and a mid-trial `rotate_targets`
/// round. Streams are keyed per `(trial_seed, round, phase, process)` —
/// never per shard or worker — and partials merge in ascending shard
/// order, so neither the partition nor the schedule can show through.
#[test]
fn sharded_stepper_identical_across_threads_and_shards() {
    use drum_sim::SimState;

    fn fingerprint(cfg: &SimConfig, seed: u64, shards: usize, pool: &Pool) -> (usize, Vec<bool>) {
        let mut state = SimState::new(cfg.clone());
        for _ in 0..30 {
            state.step_sharded(seed, shards, pool);
        }
        (
            state.correct_with_m(),
            (0..cfg.n).map(|i| state.has_m(i)).collect(),
        )
    }

    // n = 173 (prime): every multi-shard split has unequal ranges.
    let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 173, 96.0);
    cfg.attack.as_mut().unwrap().rotate_every = Some(3);
    let reference = fingerprint(&cfg, 20040628, 1, &Pool::new(1));
    for threads in [1usize, 3, 7] {
        let pool = Pool::new(threads);
        for shards in [1usize, 2, 3, 5, 8, 16, 173] {
            // Repeat so claim interleavings actually vary.
            for rep in 0..2 {
                assert_eq!(
                    fingerprint(&cfg, 20040628, shards, &pool),
                    reference,
                    "diverged at threads={threads} shards={shards} rep={rep}"
                );
            }
        }
    }
}

/// Randomized version of the invariant above, crossing random scenarios
/// with random shard counts on differently sized pools.
#[test]
fn prop_sharded_shard_and_thread_count_never_change_results() {
    use drum_sim::{run_trial_traced_mode, StepMode};

    let pool3 = Pool::new(3);
    let pool7 = Pool::new(7);
    prop::check(
        "sharded_shard_and_thread_count_never_change_results",
        Config::with_cases(10),
        |g| {
            let n = g.usize_in(30..160);
            let protocol = [
                ProtocolVariant::Drum,
                ProtocolVariant::Push,
                ProtocolVariant::Pull,
            ][g.index(3)];
            let x = g.u64_in(0..129) as f64;
            let seed = g.u64_in(0..1 << 32);
            let mut cfg = if x == 0.0 {
                SimConfig::baseline(protocol, n)
            } else {
                SimConfig::paper_attack(protocol, n, x)
            };
            if g.bool(0.5) {
                cfg.random_ports = false;
            }
            cfg.max_rounds = 100;
            let shards_a = g.usize_in(1..20);
            let shards_b = g.usize_in(1..20);

            // Via the public runner (global pool)...
            let t = |shards| {
                run_trial_traced_mode(
                    &cfg,
                    seed,
                    6,
                    drum_trace::Tracer::disabled(),
                    StepMode::Sharded { shards },
                )
            };
            prop_assert!(
                t(shards_a) == t(shards_b),
                "runner outcome diverged between {shards_a} and {shards_b} shards"
            );

            // ...and stepping directly on explicit pools.
            let direct = |shards, pool: &Pool| {
                let mut state = drum_sim::SimState::new(cfg.clone());
                for _ in 0..12 {
                    state.step_sharded(seed, shards, pool);
                }
                (0..cfg.n).map(|i| state.has_m(i)).collect::<Vec<bool>>()
            };
            let a = direct(shards_a, &pool3);
            let b = direct(shards_b, &pool7);
            prop_assert!(
                a == b,
                "state diverged: shards {shards_a} on 3 threads vs {shards_b} on 7"
            );
            Ok(())
        },
    );
}

/// The regression dynamic scheduling was built for: on a realistic
/// attacked sweep mix, per-point static chunking strands most workers
/// behind the straggler chunk, while dynamic self-scheduling (modeled as
/// greedy list scheduling over the same flat job set — exact, machine
/// independent) finishes far sooner and with far tighter per-worker
/// completion spread.
#[test]
fn dynamic_scheduling_beats_static_chunks_on_straggler_mixes() {
    const WORKERS: usize = 8;
    let trials = 24;
    let seed = 20040628;

    // The fig3a-style mix: cheap baselines next to heavy-tailed attacked
    // points (Pull under flood is geometric in the source-escape round).
    let sweep: Vec<SimConfig> = [0.0, 64.0, 128.0]
        .iter()
        .flat_map(|&x| {
            [
                ProtocolVariant::Drum,
                ProtocolVariant::Push,
                ProtocolVariant::Pull,
            ]
            .into_iter()
            .map(move |p| {
                if x == 0.0 {
                    SimConfig::baseline(p, 120)
                } else {
                    SimConfig::paper_attack(p, 120, x)
                }
            })
        })
        .collect();

    // Deterministic per-trial costs in executed rounds.
    let costs_per_cfg: Vec<Vec<u64>> = sweep
        .iter()
        .map(|cfg| {
            (0..trials)
                .map(|i| u64::from(run_trial(cfg, seed + i as u64, 0).rounds_executed))
                .collect()
        })
        .collect();

    // Seed scheduler: per-point contiguous chunks + join barrier → the
    // sweep takes the sum of per-point straggler chunks.
    let static_span: u64 = costs_per_cfg
        .iter()
        .map(|costs| schedule::static_point_makespan(costs, WORKERS))
        .sum();

    // Dynamic scheduler: one flat job set (runner chunking), no barriers.
    let chunk = chunk_size(trials);
    let flat_jobs: Vec<u64> = costs_per_cfg
        .iter()
        .flat_map(|costs| schedule::chunk_sums(costs, chunk))
        .collect();
    let dynamic_span = schedule::greedy_makespan(&flat_jobs, WORKERS);

    assert!(
        dynamic_span < static_span,
        "dynamic span {dynamic_span} should beat static span {static_span}"
    );

    // Job-completion spread: idle worker-rounds per job. Static strands
    // whole workers at every barrier; dynamic packs them.
    let total_jobs = flat_jobs.len() as u64;
    let static_idle = schedule::idle_time(static_span, WORKERS, &flat_jobs) / total_jobs;
    let dynamic_idle = schedule::idle_time(dynamic_span, WORKERS, &flat_jobs) / total_jobs;
    assert!(
        dynamic_idle < static_idle,
        "dynamic idle/job {dynamic_idle} should beat static {static_idle}"
    );
}
