//! A minimal `--key value` argument parser.
//!
//! Hand-rolled to stay within the project's sanctioned dependency set (no
//! `clap` offline); supports exactly what `drum-lab` needs: one positional
//! subcommand followed by `--key value` pairs and boolean `--flag`s.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The positional subcommand, if any.
    pub command: Option<String>,
    /// `--key value` options.
    options: HashMap<String, String>,
    /// Bare `--flag`s.
    flags: Vec<String>,
}

/// Errors from argument parsing or typed lookups.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// An option was given without a value (`--n` at end of line).
    MissingValue(String),
    /// A value failed to parse as the requested type.
    BadValue {
        /// Option name.
        key: String,
        /// The raw value.
        value: String,
        /// Target type name.
        wanted: &'static str,
    },
    /// Unexpected extra positional argument.
    UnexpectedPositional(String),
}

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::BadValue { key, value, wanted } => {
                write!(f, "--{key} {value}: expected {wanted}")
            }
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument '{p}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that are boolean flags (take no value).
const FLAG_NAMES: &[&str] = &["help", "full", "quick", "no-random-ports", "shared-bounds"];

impl Args {
    /// Parses an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on malformed input.
    pub fn parse<I, S>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if FLAG_NAMES.contains(&key) {
                    out.flags.push(key.to_string());
                    continue;
                }
                match iter.next() {
                    Some(value) => {
                        out.options.insert(key.to_string(), value);
                    }
                    None => return Err(ArgError::MissingValue(key.to_string())),
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(out)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparsable.
    pub fn get_or<T: core::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.clone(),
                wanted: core::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_options() {
        let args = Args::parse(["simulate", "--n", "120", "--x", "128.5"]).unwrap();
        assert_eq!(args.command.as_deref(), Some("simulate"));
        assert_eq!(args.get_or("n", 0usize).unwrap(), 120);
        assert_eq!(args.get_or("x", 0.0f64).unwrap(), 128.5);
        assert_eq!(args.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn parses_flags() {
        let args = Args::parse(["simulate", "--full", "--n", "10", "--no-random-ports"]).unwrap();
        assert!(args.flag("full"));
        assert!(args.flag("no-random-ports"));
        assert!(!args.flag("help"));
        assert_eq!(args.get_or("n", 0usize).unwrap(), 10);
    }

    #[test]
    fn missing_value_rejected() {
        assert_eq!(
            Args::parse(["simulate", "--n"]).unwrap_err(),
            ArgError::MissingValue("n".into())
        );
    }

    #[test]
    fn bad_value_rejected() {
        let args = Args::parse(["simulate", "--n", "notanumber"]).unwrap();
        assert!(matches!(
            args.get_or("n", 0usize),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn extra_positional_rejected() {
        assert_eq!(
            Args::parse(["simulate", "extra"]).unwrap_err(),
            ArgError::UnexpectedPositional("extra".into())
        );
    }

    #[test]
    fn empty_is_ok() {
        let args = Args::parse(Vec::<String>::new()).unwrap();
        assert!(args.command.is_none());
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingValue("n".into())
            .to_string()
            .contains("--n"));
        assert!(ArgError::BadValue {
            key: "x".into(),
            value: "y".into(),
            wanted: "f64"
        }
        .to_string()
        .contains("expected"));
    }
}
