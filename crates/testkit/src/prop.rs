//! A compact property-based testing harness with shrinking.
//!
//! Replaces the crates.io `proptest` dev-dependency so the workspace tests
//! run hermetically offline. The design is tape-based ("internal
//! shrinking", as in Hypothesis): a [`Gen`] hands the property random
//! values while recording every raw 64-bit draw on a tape. When a property
//! fails, the harness mutates the *tape* — zeroing, halving and
//! decrementing entries, deleting blocks, truncating — and replays the
//! property; any mutation that still fails becomes the new counterexample.
//! Because every generator maps smaller draws to simpler values, tape
//! minimization is test-case minimization, with no per-type shrinker code.
//!
//! Properties return `Result<(), String>`; the [`crate::prop_assert!`] and
//! [`crate::prop_assert_eq!`] macros early-return an `Err` describing the
//! failure. Panics inside properties are caught and treated as failures,
//! so indexing slips shrink just like explicit assertions.
//!
//! # Examples
//!
//! ```
//! use drum_testkit::prop::{check, Config, Gen};
//! use drum_testkit::prop_assert;
//!
//! check("reversing twice is the identity", Config::default(), |g| {
//!     let v = g.vec_with(0..50, |g| g.u64_in(0..1000));
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     prop_assert!(w == v, "double reverse changed {v:?}");
//!     Ok(())
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run (proptest's `with_cases`).
    pub cases: u32,
    /// Upper bound on shrink candidate evaluations after a failure.
    pub max_shrink_iters: u32,
    /// Base seed; case `i` runs from `seed + i`, so runs are reproducible.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrink_iters: 4096,
            seed: 0x5EED_0001,
        }
    }
}

impl Config {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// The value source handed to properties: draws from a PRNG while
/// recording, or replays a (possibly mutated) tape while shrinking.
pub struct Gen {
    tape: Vec<u64>,
    pos: usize,
    rng: Option<SmallRng>,
}

impl Gen {
    fn recording(seed: u64) -> Self {
        Gen {
            tape: Vec::new(),
            pos: 0,
            rng: Some(SmallRng::seed_from_u64(seed)),
        }
    }

    fn replaying(tape: Vec<u64>) -> Self {
        Gen {
            tape,
            pos: 0,
            rng: None,
        }
    }

    /// One raw 64-bit draw. Replaying past the end of a truncated tape
    /// yields zeros — the "simplest" draw by construction.
    fn draw(&mut self) -> u64 {
        match &mut self.rng {
            Some(rng) => {
                let v = rng.next_u64();
                self.tape.push(v);
                self.pos += 1;
                v
            }
            None => {
                let v = self.tape.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
        }
    }

    /// A `u64` in `[range.start, range.end)`. Smaller draws map to smaller
    /// values, so shrinking drives results toward the range start.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.draw() % span
    }

    /// A `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: core::ops::Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A `u32` in `[range.start, range.end)`.
    pub fn u32_in(&mut self, range: core::ops::Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// A `u64` covering the full 64-bit range.
    pub fn u64(&mut self) -> u64 {
        self.draw()
    }

    /// A `u16` covering the full 16-bit range.
    pub fn u16(&mut self) -> u16 {
        self.draw() as u16
    }

    /// A `u8` covering the full 8-bit range.
    pub fn u8(&mut self) -> u8 {
        self.draw() as u8
    }

    /// An `f64` in `[range.start, range.end)`; shrinks toward the start.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn f64_in(&mut self, range: core::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let unit = (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }

    /// A boolean that is `true` with probability `p`; shrinks toward
    /// `false`.
    pub fn bool(&mut self, p: f64) -> bool {
        ((self.draw() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// An index into a collection of `len` elements (proptest's
    /// `sample::Index`).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.usize_in(0..len)
    }

    /// A vector with a length drawn from `len` and elements from `element`.
    pub fn vec_with<T>(
        &mut self,
        len: core::ops::Range<usize>,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| element(self)).collect()
    }

    /// A byte vector with length in `len`.
    pub fn bytes(&mut self, len: core::ops::Range<usize>) -> Vec<u8> {
        self.vec_with(len, Gen::u8)
    }
}

fn run_once(
    prop: &(impl Fn(&mut Gen) -> Result<(), String> + ?Sized),
    gen: &mut Gen,
) -> Result<(), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(gen)));
    match outcome {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Shrink candidate tapes derived from `tape`, simplest-first.
fn candidates(tape: &[u64]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    // Aggressive truncation first: half, then drop tail entries.
    if !tape.is_empty() {
        out.push(tape[..tape.len() / 2].to_vec());
        out.push(tape[..tape.len() - 1].to_vec());
    }
    // Delete interior blocks (removes whole generated elements).
    for window in [8usize, 4, 2, 1] {
        if tape.len() > window {
            let mut i = 0;
            while i + window <= tape.len() {
                let mut t = tape.to_vec();
                t.drain(i..i + window);
                out.push(t);
                i += window.max(tape.len() / 8);
            }
        }
    }
    // Point mutations: zero, halve, decrement.
    for (i, &v) in tape.iter().enumerate() {
        if v == 0 {
            continue;
        }
        let mut zeroed = tape.to_vec();
        zeroed[i] = 0;
        out.push(zeroed);
        if v > 1 {
            let mut halved = tape.to_vec();
            halved[i] = v / 2;
            out.push(halved);
            let mut dec = tape.to_vec();
            dec[i] = v - 1;
            out.push(dec);
        }
    }
    out
}

fn shrink(
    prop: &(impl Fn(&mut Gen) -> Result<(), String> + ?Sized),
    mut tape: Vec<u64>,
    mut error: String,
    budget: u32,
) -> (Vec<u64>, String) {
    let mut spent = 0u32;
    loop {
        let mut improved = false;
        for cand in candidates(&tape) {
            spent += 1;
            if spent > budget {
                return (tape, error);
            }
            if cand == tape {
                continue;
            }
            let mut gen = Gen::replaying(cand.clone());
            if let Err(e) = run_once(prop, &mut gen) {
                tape = cand;
                error = e;
                improved = true;
                break;
            }
        }
        if !improved {
            return (tape, error);
        }
    }
}

/// Runs `prop` against `cfg.cases` random inputs; on failure, shrinks the
/// counterexample and panics with a reproducible report.
///
/// # Panics
///
/// Panics if any case fails (this is the test failure).
pub fn check(name: &str, cfg: Config, prop: impl Fn(&mut Gen) -> Result<(), String>) {
    for case in 0..cfg.cases {
        let seed = cfg.seed.wrapping_add(case as u64);
        let mut gen = Gen::recording(seed);
        if let Err(error) = run_once(&prop, &mut gen) {
            let tape = std::mem::take(&mut gen.tape);
            let (min_tape, min_error) = shrink(&prop, tape, error, cfg.max_shrink_iters);
            panic!(
                "property '{name}' failed (case {case}, seed {seed:#x})\n\
                 minimal failure: {min_error}\n\
                 minimized tape ({} draws): {:?}",
                min_tape.len(),
                &min_tape[..min_tape.len().min(64)],
            );
        }
    }
}

/// Asserts a condition inside a property, early-returning an `Err` with the
/// failing expression (and optional formatted context) instead of
/// panicking, so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format_args!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Asserts equality inside a property; see [`crate::prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts inequality inside a property; see [`crate::prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("addition commutes", Config::default(), |g| {
            let a = g.u64_in(0..1_000_000);
            let b = g.u64_in(0..1_000_000);
            crate::prop_assert!(a + b == b + a);
            Ok(())
        });
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let caught = std::panic::catch_unwind(|| {
            check("all values below 500", Config::default(), |g| {
                let v = g.u64_in(0..1000);
                crate::prop_assert!(v < 500, "value {v} too large");
                Ok(())
            });
        });
        let msg = *caught.expect_err("must fail").downcast::<String>().unwrap();
        // The minimal counterexample for `v < 500` over 0..1000 is exactly
        // 500; the point-mutation shrinker must find it.
        assert!(msg.contains("value 500 too large"), "got: {msg}");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let caught = std::panic::catch_unwind(|| {
            check("indexing", Config::default(), |g| {
                let v = g.vec_with(0..10, |g| g.u64_in(0..5));
                let i = g.usize_in(0..20);
                let _ = v[i]; // out of bounds for most draws
                Ok(())
            });
        });
        let msg = *caught.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("panicked"), "got: {msg}");
    }

    #[test]
    fn cases_are_reproducible() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            check(
                "record",
                Config {
                    cases: 5,
                    ..Config::default()
                },
                |g| {
                    seen.borrow_mut().push(g.u64_in(0..u64::MAX));
                    Ok(())
                },
            );
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn generators_cover_ranges() {
        check("generator bounds", Config::default(), |g| {
            let x = g.f64_in(-3.0..3.0);
            crate::prop_assert!((-3.0..3.0).contains(&x));
            let v = g.bytes(1..9);
            crate::prop_assert!((1..9).contains(&v.len()));
            let i = g.index(v.len());
            crate::prop_assert!(i < v.len());
            let _ = (g.u16(), g.u8(), g.u32_in(0..7), g.bool(0.5));
            Ok(())
        });
    }
}
