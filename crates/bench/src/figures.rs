//! Every figure of the paper as a writer-based generator.
//!
//! The `fig01`–`fig14` (and extension) binaries are thin wrappers around
//! these functions, printing to stdout; `drum-lab figures` calls them
//! with file writers to regenerate the whole `results/` directory in one
//! process — which is what lets the simulation sweeps share the global
//! `drum-pool` across figures instead of paying per-binary start-up and
//! per-point join barriers.
//!
//! Figures run **sequentially**; each one's sweeps saturate the pool
//! internally, and the cluster figures (09–12) bind real UDP sockets
//! that should not compete with a concurrent cluster for ports.

use std::io::{self, Write};
use std::time::Duration;

use drum_analysis::appendix_a::{figure_1a, figure_1b};
use drum_analysis::appendix_b::std_rounds_to_leave_source;
use drum_analysis::appendix_c::{analysis_cdf, Protocol};
use drum_core::config::{BoundMode, GossipConfig};
use drum_core::ProtocolVariant;
use drum_metrics::table::Table;
use drum_net::experiment::{paper_cluster_config, propagation_experiment, throughput_experiment};
use drum_sim::config::SimConfig;
use drum_sim::experiments::{
    cdf_curve, cdf_curves, ext_scale_sweep, fig12a_random_ports, fig2a_scalability, fig2b_crashes,
    fig3a_attack_strength, fig3b_attack_extent, fixed_strength_sweep,
};
use drum_sim::runner::run_experiment;

use crate::{
    banner_to, cdf_table, scale, scaled, scaled3, sweep_table, sweep_table_std, trials, Scale,
    PROTOCOLS, PROTOCOL_NAMES, SEED,
};

/// A figure generator: writes one complete `results/<name>.txt`.
pub type FigureFn = fn(&mut dyn Write) -> io::Result<()>;

/// Every regenerable figure, in figure order — the registry behind
/// `drum-lab figures`.
pub const FIGURES: &[(&str, FigureFn)] = &[
    ("fig01", fig01),
    ("fig02", fig02),
    ("fig03", fig03),
    ("fig04", fig04),
    ("fig05", fig05),
    ("fig06", fig06),
    ("fig07", fig07),
    ("fig08", fig08),
    ("fig09", fig09),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("ext_fanout", ext_fanout),
    ("ext_scale", ext_scale),
    ("ext_rotation", ext_rotation),
    ("ext_cluster", ext_cluster),
    ("ext_soak", ext_soak),
    ("ext_adversary", ext_adversary),
    ("ext_pull_abuse", ext_pull_abuse),
];

/// Figure 1: the acceptance probabilities of Appendix A.
pub fn fig01(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 1",
        "p_u vs F and p_a vs F/x (numerical, Appendix A)",
    )?;
    let n = scaled(1000, 1000);

    writeln!(
        w,
        "(a) probability p_u that a non-attacked process accepts a valid message, n = {n}"
    )?;
    let mut t = Table::new(vec!["F".into(), "p_u".into()]);
    for (f, pu) in figure_1a(n, &[1, 2, 3, 4, 6, 8, 12, 16]) {
        t.row(vec![f.to_string(), format!("{pu:.4}")]);
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "paper: p_u > 0.6 for every F >= 1 (Lemma 8 / Fig 1(a))\n"
    )?;

    writeln!(
        w,
        "(b) probability p_a that an attacked process accepts a valid message, F = 4, n = {n}"
    )?;
    let mut t = Table::new(vec!["x".into(), "p_a".into(), "bound F/x".into()]);
    for (x, pa, bound) in figure_1b(n, 4, &[8, 16, 32, 64, 128, 256, 512]) {
        t.row(vec![
            x.to_string(),
            format!("{pa:.4}"),
            format!("{bound:.4}"),
        ]);
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "paper: p_a < F/x (used by Lemmas 1-6); both columns shrink like 1/x"
    )
}

/// Figure 2: validating known gossip results (no DoS attack).
pub fn fig02(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 2",
        "failure-free scalability and crash-failure degradation",
    )?;
    let trials = trials();

    let ns: Vec<usize> = scaled3(
        vec![8, 16, 32, 64],
        vec![8, 16, 32, 64, 128, 256],
        vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048],
    );
    writeln!(
        w,
        "(a) average rounds to reach 99% of processes, no failures ({trials} trials/point)"
    )?;
    let rows = fig2a_scalability(&ns, trials, SEED);
    writeln!(w, "{}", sweep_table("n", &rows, &PROTOCOL_NAMES))?;
    writeln!(
        w,
        "paper: O(log n) growth; all protocols within a round or two of each other\n"
    )?;

    let n = scaled3(100, 200, 1000);
    writeln!(w, "(b) average rounds vs crashed fraction, n = {n}")?;
    let rows = fig2b_crashes(n, &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], trials, SEED);
    writeln!(w, "{}", sweep_table("crashed", &rows, &PROTOCOL_NAMES))?;
    writeln!(
        w,
        "paper: graceful degradation — a 50% crash rate only adds a few rounds"
    )
}

/// Figure 3: targeted DoS attacks — the paper's headline result.
pub fn fig03(w: &mut dyn Write) -> io::Result<()> {
    banner_to(w, "Figure 3", "propagation time under targeted DoS attacks")?;
    let trials = trials();
    let ns: Vec<usize> = if scale() == Scale::Full {
        vec![120, 1000]
    } else {
        vec![120]
    };
    let xs: Vec<f64> = scaled(
        vec![0.0, 32.0, 64.0, 128.0, 256.0, 512.0],
        vec![
            0.0, 32.0, 64.0, 96.0, 128.0, 192.0, 256.0, 320.0, 384.0, 448.0, 512.0,
        ],
    );

    for &n in &ns {
        writeln!(
            w,
            "(a) alpha = 10%, n = {n}: average rounds to 99% of correct processes vs x"
        )?;
        let rows = fig3a_attack_strength(n, &xs, trials, SEED);
        writeln!(w, "{}", sweep_table("x", &rows, &PROTOCOL_NAMES))?;
        writeln!(w, "paper: Drum flat; Push and Pull linear in x\n")?;
    }

    let alphas = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    for &n in &ns {
        writeln!(
            w,
            "(b) x = 128, n = {n}: average rounds vs attacked fraction alpha"
        )?;
        let rows = fig3b_attack_extent(n, 128.0, &alphas, trials, SEED);
        writeln!(w, "{}", sweep_table("alpha", &rows, &PROTOCOL_NAMES))?;
        writeln!(
            w,
            "paper: all grow with alpha, but Drum stays far below Push and Pull\n"
        )?;
    }
    Ok(())
}

/// Figure 4: standard deviation of the propagation times of Figure 3.
pub fn fig04(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 4",
        "STD of the propagation time under targeted attacks",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);

    let xs: Vec<f64> = scaled(
        vec![0.0, 32.0, 64.0, 128.0, 256.0],
        vec![0.0, 32.0, 64.0, 128.0, 192.0, 256.0, 384.0, 512.0],
    );
    writeln!(
        w,
        "(a) alpha = 10%, n = {n}: STD of rounds-to-99% vs x ({trials} trials)"
    )?;
    let rows = fig3a_attack_strength(n, &xs, trials, SEED);
    writeln!(w, "{}", sweep_table_std("x", &rows, &PROTOCOL_NAMES))?;

    writeln!(w, "(b) x = 128, n = {n}: STD vs attacked fraction")?;
    let rows = fig3b_attack_extent(n, 128.0, &[0.1, 0.2, 0.4, 0.6, 0.8], trials, SEED);
    writeln!(w, "{}", sweep_table_std("alpha", &rows, &PROTOCOL_NAMES))?;

    // The paper explains Pull's large STD via p̃ (Appendix B): with F = 4
    // and x = 128 the analytic STD of the source-escape wait is 8.17.
    let analytic = std_rounds_to_leave_source(scaled(120, 1000), 4, 128);
    writeln!(
        w,
        "analytic STD of Pull's source-escape wait (F=4, x=128, n={n}): {analytic:.2} rounds"
    )?;
    writeln!(
        w,
        "paper: 8.17 rounds for n = 1000, explaining Pull's measured STD of 9.3"
    )
}

/// Figure 5: CDF of the fraction of correct processes holding `M`.
pub fn fig05(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 5",
        "CDF of the fraction of correct processes holding M per round",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);
    let rounds = 40;

    for (alpha_label, alpha, x) in [("10%", 0.1, 64.0), ("10%", 0.1, 128.0), ("40%", 0.4, 128.0)] {
        writeln!(
            w,
            "alpha = {alpha_label}, x = {x}, n = {n} ({trials} trials)"
        )?;
        let cfgs: Vec<SimConfig> = PROTOCOLS
            .iter()
            .map(|&p| SimConfig::attack_alpha(p, n, alpha, x))
            .collect();
        let curves = cdf_curves(&cfgs, trials, SEED, rounds);
        writeln!(w, "{}", cdf_table(&PROTOCOL_NAMES, &curves, rounds))?;
        writeln!(
            w,
            "paper: Push rises fastest early (non-attacked processes) but stalls on the\n\
             attacked tail; Pull's average is dragged down by runs stuck at the source;\n\
             Drum dominates throughout.\n"
        )?;
    }
    Ok(())
}

/// Figure 6: propagation time split by victim class.
pub fn fig06(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 6",
        "propagation time to non-attacked vs attacked processes",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);
    let xs: Vec<f64> = scaled(
        vec![32.0, 64.0, 128.0, 256.0],
        vec![32.0, 64.0, 128.0, 256.0, 512.0],
    );

    let mut to_unattacked = Table::new(
        std::iter::once("x".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
            .collect(),
    );
    let mut to_attacked = to_unattacked.clone();

    for &x in &xs {
        let mut row_u = vec![format!("{x:.0}")];
        let mut row_a = vec![format!("{x:.0}")];
        for &p in &PROTOCOLS {
            let cfg = SimConfig::paper_attack(p, n, x);
            let res = run_experiment(&cfg, trials, SEED, 0);
            row_u.push(format!("{:.1}", res.rounds_unattacked.mean()));
            row_a.push(format!("{:.1}", res.rounds_attacked.mean()));
        }
        to_unattacked.row(row_u);
        to_attacked.row(row_a);
    }

    writeln!(
        w,
        "(a) rounds until 99% of the NON-ATTACKED correct processes hold M, n = {n}"
    )?;
    writeln!(w, "{to_unattacked}")?;
    writeln!(
        w,
        "paper: Push reaches non-attacked processes much faster than Pull\n"
    )?;

    writeln!(
        w,
        "(b) rounds until 99% of the ATTACKED correct processes hold M, n = {n}"
    )?;
    writeln!(w, "{to_attacked}")?;
    writeln!(
        w,
        "paper: Push and Pull take similarly long on the attacked set;\nDrum is fast for both classes"
    )
}

/// Figure 7: strong fixed-strength attacks, varying spread.
pub fn fig07(w: &mut dyn Write) -> io::Result<()> {
    banner_to(w, "Figure 7", "fixed total attack strength, varying spread")?;
    let trials = trials();
    let ns: Vec<usize> = if scale() == Scale::Full {
        vec![120, 500]
    } else {
        vec![120]
    };
    let alphas = scaled(
        vec![0.1, 0.3, 0.5, 0.7, 0.9],
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    );

    for &n in &ns {
        for (label, b) in [
            ("B = 7.2n (c = 1.8)", 7.2 * n as f64),
            ("B = 36n (c = 9)", 36.0 * n as f64),
        ] {
            writeln!(
                w,
                "{label}, n = {n}: average rounds to 99% vs attacked fraction alpha"
            )?;
            let rows = fixed_strength_sweep(n, b, &alphas, &PROTOCOLS, trials, SEED);
            writeln!(w, "{}", sweep_table("alpha", &rows, &PROTOCOL_NAMES))?;
            writeln!(
                w,
                "paper: Drum increases with alpha (no benefit in focusing);\n\
                 Push/Pull are worst at small alpha; all meet at the rightmost point\n"
            )?;
        }
    }
    Ok(())
}

/// Figure 8: weak fixed-strength attacks against Drum.
pub fn fig08(w: &mut dyn Write) -> io::Result<()> {
    banner_to(w, "Figure 8", "weak fixed-strength attacks on Drum")?;
    let trials = trials();
    let ns: Vec<usize> = if scale() == Scale::Full {
        vec![120, 500]
    } else {
        vec![120]
    };
    let alphas = scaled(
        vec![0.1, 0.3, 0.5, 0.7, 0.9],
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    );

    for &n in &ns {
        // Baseline without any attack (but with 10% malicious members).
        let mut baseline_cfg = SimConfig::baseline(ProtocolVariant::Drum, n);
        baseline_cfg.malicious = n / 10;
        let baseline = run_experiment(&baseline_cfg, trials, SEED, 0).mean_rounds();
        writeln!(
            w,
            "n = {n}: Drum, average rounds to 99% (no-attack baseline: {baseline:.1})"
        )?;

        let mut header = vec!["alpha".to_string()];
        for c in [0.25, 0.5, 1.0] {
            header.push(format!("B={:.1}n", c * 3.6));
        }
        let mut table = Table::new(header);

        let budgets: Vec<f64> = [0.9, 1.8, 3.6].iter().map(|c| c * n as f64).collect();
        let sweeps: Vec<_> = budgets
            .iter()
            .map(|&b| fixed_strength_sweep(n, b, &alphas, &[ProtocolVariant::Drum], trials, SEED))
            .collect();

        for (i, &alpha) in alphas.iter().enumerate() {
            let mut cells = vec![format!("{alpha}")];
            for sweep in &sweeps {
                cells.push(format!("{:.1}", sweep[i].results[0].mean_rounds()));
            }
            table.row(cells);
        }
        writeln!(w, "{table}")?;
        writeln!(
            w,
            "paper: all three curves sit within ~1-2 rounds of the baseline\n"
        )?;
    }
    Ok(())
}

/// Figure 9: simulations vs measurements, n = 50.
pub fn fig09(w: &mut dyn Write) -> io::Result<()> {
    banner_to(w, "Figure 9", "simulation vs measurement, n = 50")?;
    let n = scaled3(16, 50, 50);
    let sim_trials = trials();
    let messages = scaled3(2, 5, 40);
    let round = Duration::from_millis(scaled3(50, 80, 150));

    let xs: Vec<f64> = scaled3(
        vec![0.0, 64.0],
        vec![0.0, 64.0, 128.0],
        vec![0.0, 32.0, 64.0, 128.0, 256.0],
    );
    writeln!(w, "(a) alpha = 10%, rounds to 99% vs x  [sim | measured]")?;
    let mut table = Table::new(
        std::iter::once("x".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|p| format!("{p} sim/net")))
            .collect(),
    );
    for &x in &xs {
        let mut cells = vec![format!("{x:.0}")];
        for &p in &PROTOCOLS {
            let sim_cfg = if x == 0.0 {
                let mut c = SimConfig::baseline(p, n);
                c.malicious = n / 10;
                c
            } else {
                SimConfig::paper_attack(p, n, x)
            };
            let sim = run_experiment(&sim_cfg, sim_trials, SEED, 0).mean_rounds();

            let net_cfg =
                paper_cluster_config(p, n, if x == 0.0 { 0 } else { n / 10 }, x, round, SEED);
            let report = propagation_experiment(
                net_cfg,
                messages,
                2,
                Duration::from_secs(scaled3(10, 15, 120)),
            )
            .expect("cluster failed");
            let net = if report.rounds_to_99.count() > 0 {
                format!("{:.1}", report.rounds_to_99.mean())
            } else {
                ">to".into()
            };
            cells.push(format!("{sim:.1} / {net}"));
        }
        table.row(cells);
    }
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "paper: measurement tracks simulation closely for all protocols\n"
    )?;

    let alphas: Vec<f64> = scaled3(vec![0.1], vec![0.1, 0.4], vec![0.1, 0.2, 0.4, 0.6, 0.8]);
    writeln!(w, "(b) x = 128, rounds to 99% vs alpha  [sim | measured]")?;
    let mut table = Table::new(
        std::iter::once("alpha".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|p| format!("{p} sim/net")))
            .collect(),
    );
    for &alpha in &alphas {
        let mut cells = vec![format!("{alpha}")];
        let attacked = ((n as f64) * alpha).round() as usize;
        for &p in &PROTOCOLS {
            let sim_cfg = SimConfig::attack_alpha(p, n, alpha, 128.0);
            let sim = run_experiment(&sim_cfg, sim_trials, SEED, 0).mean_rounds();

            let net_cfg = paper_cluster_config(p, n, attacked, 128.0, round, SEED);
            let report = propagation_experiment(
                net_cfg,
                messages,
                2,
                Duration::from_secs(scaled3(12, 20, 180)),
            )
            .expect("cluster failed");
            let net = if report.rounds_to_99.count() > 0 {
                format!("{:.1}", report.rounds_to_99.mean())
            } else {
                ">to".into()
            };
            cells.push(format!("{sim:.1} / {net}"));
        }
        table.row(cells);
    }
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "('>to' marks timed-out measurements — Pull under heavy source attack)"
    )
}

/// Figure 10: received throughput under increasing attack strength.
pub fn fig10(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 10",
        "average received throughput under attack (measurements)",
    )?;
    let n = scaled3(10, 20, 50);
    let round = Duration::from_millis(scaled3(50, 100, 1000));
    let messages = scaled3(30, 300, 10_000);
    let rate = 40.0;
    let drain = Duration::from_secs(scaled3(2, 5, 5));
    writeln!(
        w,
        "n = {n}, round = {round:?}, {messages} messages at {rate} msg/s\n"
    )?;

    let xs: Vec<f64> = scaled3(
        vec![0.0, 128.0],
        vec![0.0, 64.0, 128.0, 256.0],
        vec![0.0, 32.0, 64.0, 128.0, 256.0, 512.0],
    );
    writeln!(w, "(a) alpha = 10%: mean received throughput (msg/s) vs x")?;
    let mut table = Table::new(
        std::iter::once("x".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
            .collect(),
    );
    for &x in &xs {
        let mut cells = vec![format!("{x:.0}")];
        for &p in &PROTOCOLS {
            let attacked = if x == 0.0 { 0 } else { n / 10 };
            let cfg = paper_cluster_config(p, n, attacked, x, round, SEED);
            let report =
                throughput_experiment(cfg, messages, rate, 50, drain).expect("cluster failed");
            cells.push(format!("{:.1}", report.mean_throughput()));
        }
        table.row(cells);
    }
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "paper: Drum flat near the send rate; Push slightly degrading; Pull collapsing\n"
    )?;

    let alphas: Vec<f64> = scaled3(
        vec![0.1],
        vec![0.1, 0.2, 0.4],
        vec![0.1, 0.2, 0.4, 0.6, 0.8],
    );
    writeln!(w, "(b) x = 128: mean received throughput (msg/s) vs alpha")?;
    let mut table = Table::new(
        std::iter::once("alpha".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
            .collect(),
    );
    for &alpha in &alphas {
        let mut cells = vec![format!("{alpha}")];
        let attacked = ((n as f64) * alpha).round() as usize;
        for &p in &PROTOCOLS {
            let cfg = paper_cluster_config(p, n, attacked, 128.0, round, SEED);
            let report =
                throughput_experiment(cfg, messages, rate, 50, drain).expect("cluster failed");
            cells.push(format!("{:.1}", report.mean_throughput()));
        }
        table.row(cells);
    }
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "paper: Drum degrades gracefully with alpha; Push linearly; Pull drastically"
    )
}

/// Figure 11: CDF of per-receiver average latency.
pub fn fig11(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 11",
        "CDF of per-process average delivery latency (measurements)",
    )?;
    let n = scaled3(10, 20, 50);
    let round = Duration::from_millis(scaled3(50, 100, 1000));
    let messages = scaled3(30, 300, 10_000);
    let rate = 40.0;
    let drain = Duration::from_secs(scaled3(2, 5, 5));

    let alphas: Vec<f64> = scaled3(vec![0.1], vec![0.1, 0.4], vec![0.1, 0.4]);
    for &alpha in &alphas {
        let attacked = ((n as f64) * alpha).round() as usize;
        writeln!(
            w,
            "alpha = {alpha}, x = 128, n = {n}: per-receiver mean latency (ms), sorted"
        )?;
        let mut table = Table::new(
            std::iter::once("percentile".to_string())
                .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
                .collect(),
        );

        let mut per_protocol: Vec<Vec<f64>> = Vec::new();
        for &p in &PROTOCOLS {
            let cfg = paper_cluster_config(p, n, attacked, 128.0, round, SEED);
            let report =
                throughput_experiment(cfg, messages, rate, 50, drain).expect("cluster failed");
            let mut lats: Vec<f64> = report
                .receivers
                .iter()
                .filter(|r| r.received > 0)
                .map(|r| r.mean_latency_ms)
                .collect();
            lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
            per_protocol.push(lats);
        }

        for pct in [10usize, 25, 50, 75, 90, 100] {
            let mut cells = vec![format!("{pct}%")];
            for lats in &per_protocol {
                if lats.is_empty() {
                    cells.push("-".into());
                    continue;
                }
                let idx = ((pct as f64 / 100.0) * lats.len() as f64).ceil() as usize;
                let idx = idx.clamp(1, lats.len()) - 1;
                cells.push(format!("{:.0}", lats[idx]));
            }
            table.row(cells);
        }
        writeln!(w, "{table}")?;
        writeln!(
            w,
            "paper: Drum tracks Push up to the ~90th percentile and avoids Push's\n\
             attacked-receiver tail (4x the non-attacked latency); Pull is uniformly slow\n"
        )?;
    }
    Ok(())
}

/// Figure 12: the other two DoS-mitigation measures, ablated.
pub fn fig12(w: &mut dyn Write) -> io::Result<()> {
    banner_to(w, "Figure 12", "random ports and separate bounds ablations")?;
    let trials = trials();
    let n = scaled(120, 1000);

    let xs: Vec<f64> = scaled(
        vec![0.0, 64.0, 128.0, 256.0, 512.0],
        vec![0.0, 32.0, 64.0, 128.0, 192.0, 256.0, 384.0, 512.0],
    );
    writeln!(
        w,
        "(a) alpha = 10%, n = {n} (simulation): rounds to 99% vs x"
    )?;
    let rows = fig12a_random_ports(n, &xs, trials, SEED);
    writeln!(
        w,
        "{}",
        sweep_table("x", &rows, &["random ports", "well-known ports"])
    )?;
    writeln!(
        w,
        "paper: random ports flat; well-known ports linear in x\n"
    )?;

    // (b) — real measurements with the engine's bound modes.
    let net_n = scaled3(10, 16, 50);
    let round = Duration::from_millis(scaled3(50, 80, 1000));
    let messages = scaled3(3, 6, 30);
    let net_xs: Vec<f64> = scaled3(
        vec![0.0, 128.0],
        vec![0.0, 128.0, 256.0],
        vec![0.0, 64.0, 128.0, 256.0, 512.0],
    );
    writeln!(
        w,
        "(b) alpha = 10%, n = {net_n} (measurement): rounds to 99% vs x"
    )?;
    let mut table = Table::new(vec![
        "x".into(),
        "separate bounds".into(),
        "shared bounds".into(),
    ]);
    for &x in &net_xs {
        let mut cells = vec![format!("{x:.0}")];
        for mode in [BoundMode::Separate, BoundMode::SharedControl] {
            let attacked = if x == 0.0 { 0 } else { (net_n / 10).max(1) };
            let mut cfg = paper_cluster_config(
                drum_core::ProtocolVariant::Drum,
                net_n,
                attacked,
                x,
                round,
                SEED,
            );
            cfg.net.gossip = GossipConfig::drum().with_bound_mode(mode);
            let report = propagation_experiment(cfg, messages, 2, Duration::from_secs(45))
                .expect("cluster failed");
            if report.rounds_to_99.count() > 0 {
                cells.push(format!("{:.1}", report.rounds_to_99.mean()));
            } else {
                cells.push(">timeout".into());
            }
        }
        table.row(cells);
    }
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "paper: separate bounds flat; shared bounds degrade linearly under attack"
    )
}

fn sim_variant(p: Protocol) -> ProtocolVariant {
    match p {
        Protocol::Drum => ProtocolVariant::Drum,
        Protocol::Push => ProtocolVariant::Push,
        Protocol::Pull => ProtocolVariant::Pull,
    }
}

/// Figure 13: detailed analysis (Appendix C) vs simulation, no attack.
pub fn fig13(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 13",
        "analysis vs simulation CDFs without DoS attacks",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);
    let rounds = 20;

    for (label, crashed) in [("(a) failure-free", 0usize), ("(b) 10% crashed", n / 10)] {
        writeln!(w, "{label}, n = {n} ({trials} trials)")?;
        let mut labels = Vec::new();
        let mut curves = Vec::new();
        for proto in [Protocol::Drum, Protocol::Push, Protocol::Pull] {
            // Analysis: fraction at round start; shift by one to align with
            // the simulator's after-round samples.
            let a = analysis_cdf(proto, n, crashed, 0.01, 4, 0, 0, rounds + 1);
            curves.push(a[1..].to_vec());
            labels.push(format!("{proto} anl"));

            let mut cfg = SimConfig::baseline(sim_variant(proto), n);
            cfg.crashed = crashed;
            curves.push(cdf_curve(&cfg, trials, SEED, rounds));
            labels.push(format!("{proto} sim"));
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        writeln!(w, "{}", cdf_table(&label_refs, &curves, rounds))?;
        writeln!(
            w,
            "paper: analysis and simulation curves are almost identical\n"
        )?;
    }
    Ok(())
}

/// Figure 14: analysis vs simulation CDFs under DoS attacks, n = 120.
pub fn fig14(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Figure 14",
        "analysis vs simulation CDFs under DoS attacks, n = 120",
    )?;
    let trials = trials();
    let n = 120;
    let b = 12;
    let rounds = 40;

    let scenarios = [
        ("(a)", 0.10, 32u64),
        ("(b)", 0.10, 64),
        ("(c)", 0.10, 128),
        ("(d)", 0.40, 128),
        ("(e)", 0.60, 128),
        ("(f)", 0.80, 128),
    ];

    for (panel, alpha, x) in scenarios {
        let attacked = ((n as f64) * alpha).round() as usize;
        writeln!(w, "{panel} alpha = {alpha}, x = {x} ({trials} trials)")?;
        let mut labels = Vec::new();
        let mut curves = Vec::new();
        for proto in [Protocol::Drum, Protocol::Push, Protocol::Pull] {
            let a = analysis_cdf(proto, n, b, 0.01, 4, attacked, x, rounds + 1);
            curves.push(a[1..].to_vec());
            labels.push(format!("{proto} anl"));

            let mut cfg = SimConfig::attack_alpha(sim_variant(proto), n, alpha, x as f64);
            cfg.malicious = b;
            curves.push(cdf_curve(&cfg, trials, SEED, rounds));
            labels.push(format!("{proto} sim"));
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        writeln!(w, "{}", cdf_table(&label_refs, &curves, rounds))?;
        writeln!(w)?;
    }
    writeln!(
        w,
        "paper: in every panel the analysis curve overlays the simulation curve"
    )
}

/// Extension experiment: fan-out sensitivity.
pub fn ext_fanout(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Extension: fan-out sensitivity",
        "rounds to 99% vs F, with and without attack",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);

    for (label, x) in [("no attack", 0.0), ("alpha = 10%, x = 128", 128.0)] {
        writeln!(w, "{label}, n = {n} ({trials} trials)")?;
        let mut table = Table::new(vec![
            "F".into(),
            "Drum".into(),
            "Push".into(),
            "Pull".into(),
        ]);
        for fan_out in [2usize, 4, 8, 12] {
            let mut cells = vec![fan_out.to_string()];
            for proto in [
                ProtocolVariant::Drum,
                ProtocolVariant::Push,
                ProtocolVariant::Pull,
            ] {
                let mut cfg = if x > 0.0 {
                    SimConfig::paper_attack(proto, n, x)
                } else {
                    let mut c = SimConfig::baseline(proto, n);
                    c.malicious = n / 10;
                    c
                };
                cfg.fan_out = fan_out;
                cfg.max_rounds = 2000;
                let res = run_experiment(&cfg, trials, SEED, 0);
                cells.push(format!("{:.1}", res.mean_rounds()));
            }
            table.row(cells);
        }
        writeln!(w, "{table}")?;
    }
    writeln!(
        w,
        "finding: higher F speeds everything up (log base grows), but only Drum's\n\
         *shape* is attack-independent at every F; Push/Pull remain linear in x\n\
         no matter how much fan-out they are given."
    )
}

/// Extension experiment: million-member simulated groups.
///
/// The paper's simulations stop at n = 1000. The sharded intra-trial
/// stepper (struct-of-arrays state, counter-derived per-sender RNG
/// streams, deterministic shard merge) runs single trials at n = 10⁶,
/// so the O(log n) propagation claim — and its robustness to the
/// Figure 7 flood — can be checked two orders of magnitude further out.
/// Trial counts shrink with n; every point is byte-identical for any
/// `DRUM_POOL_THREADS` / `DRUM_SIM_SHARDS` setting.
pub fn ext_scale(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Extension: million-member groups",
        "rounds to 99% vs n, with and without the Figure 7 flood (sharded stepper)",
    )?;
    // (n, trials) pairs: larger groups tighten their own confidence
    // (each trial averages over n members), so fewer trials suffice.
    let points: Vec<(usize, usize)> = scaled3(
        vec![(1_000, 4), (10_000, 2)],
        vec![(10_000, 24), (100_000, 8), (1_000_000, 3)],
        vec![(10_000, 100), (100_000, 24), (1_000_000, 8)],
    );
    let (alpha, x) = (0.1, 72.0);
    writeln!(
        w,
        "Drum only; flood column is the Figure 7 setting alpha = {alpha}, x = {x}\n\
         (both columns keep the paper's 10% malicious non-cooperators)\n"
    )?;
    let rows = ext_scale_sweep(&points, alpha, x, SEED);
    let mut table = Table::new(vec![
        "n".into(),
        "trials".into(),
        "no attack".into(),
        "flood x=72".into(),
        "delta".into(),
    ]);
    for (row, &(_, trials)) in rows.iter().zip(&points) {
        let base = row.results[0].mean_rounds();
        let flood = row.results[1].mean_rounds();
        table.row(vec![
            format!("{}", row.x as usize),
            trials.to_string(),
            format!("{base:.1}"),
            format!("{flood:.1}"),
            format!("{:+.1}", flood - base),
        ]);
    }
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "finding: rounds-to-99% grows like log n — each 10x in n adds a near-\n\
         constant number of rounds — and the flood's toll stays a small additive\n\
         delta at every scale: Drum's per-round bounds do not erode as the group\n\
         (and with it the adversary's 10% slice) grows a hundredfold."
    )
}

/// Extension experiment: large-n multiplexed clusters.
///
/// The paper measures 50 machines; the sharded net runtime lifts the live
/// UDP measurement to hundreds and (at `--full`) 1,000 correct nodes in
/// one OS process. Reported per point: the fraction of correct nodes the
/// multicast reached, the delivered message fraction, mean delivery
/// latency, and the runtime's own `rounds_late` counter (cadence health
/// under load).
pub fn ext_cluster(w: &mut dyn Write) -> io::Result<()> {
    use drum_net::experiment::{decode_payload, Cluster};
    use std::time::Instant;

    banner_to(
        w,
        "Extension: large-n multiplexed clusters",
        "delivered fraction and latency vs attack strength, sharded runtime",
    )?;
    // `n` counts CORRECT nodes (engines actually running); the cluster
    // adds the paper's 10% malicious members on top of them.
    let ns: Vec<usize> = scaled3(vec![48], vec![96], vec![200, 500, 1000]);
    let xs: Vec<f64> = scaled3(vec![0.0, 72.0], vec![0.0, 72.0], vec![0.0, 72.0, 360.0]);
    let shards = scaled3(1usize, 2, 8);
    let round = Duration::from_millis(scaled3(60, 100, 1000));
    let messages = scaled3(4u64, 5, 5);
    let wait = Duration::from_secs(scaled3(10, 15, 90));
    writeln!(
        w,
        "Drum, alpha = 0.1, x fabricated messages per attacked node per round (the\n\
         Figure 7 setting x = 72, and 5x it); every point is ONE OS process running\n\
         all n engines on the sharded net runtime.\n"
    )?;

    let mut table = Table::new(vec![
        "n".into(),
        "shards".into(),
        "x".into(),
        "reached".into(),
        "delivered".into(),
        "mean latency".into(),
        "rounds late".into(),
    ]);
    for &n in &ns {
        for &x in &xs {
            let attacked = if x == 0.0 {
                0
            } else {
                ((n as f64) * 0.1).round() as usize
            };
            let mut cfg =
                paper_cluster_config(ProtocolVariant::Drum, n + n / 10, attacked, x, round, SEED);
            // paper_cluster_config derived malicious from the total;
            // re-anchor it so exactly `n` engines run.
            cfg.malicious = n / 10;
            cfg.shards = shards;
            let shard_count = cfg.resolved_shards();

            let cluster = Cluster::start(cfg).expect("cluster start");
            let epoch = cluster.epoch();
            let correct = cluster.handles().len();
            let mut reached = vec![false; correct];
            reached[0] = true; // the source trivially has its own messages
            let mut total = 0u64;
            let mut lat_sum_ms = 0.0f64;
            let mut lat_count = 0u64;
            let mut drain = |reached: &mut Vec<bool>| {
                for (i, h) in cluster.handles().iter().enumerate().skip(1) {
                    for d in h.take_delivered() {
                        total += 1;
                        reached[i] = true;
                        if let Some((_, sent_us)) = decode_payload(&d.message.payload) {
                            let arrived_us = d.at.duration_since(epoch).as_micros() as u64;
                            if arrived_us > sent_us {
                                lat_sum_ms += (arrived_us - sent_us) as f64 / 1000.0;
                                lat_count += 1;
                            }
                        }
                    }
                }
            };

            for m in 0..messages {
                cluster.publish_from_source(m, 50);
                std::thread::sleep(round * 2);
                drain(&mut reached);
            }
            let deadline = Instant::now() + wait;
            while Instant::now() < deadline && reached.iter().any(|r| !r) {
                drain(&mut reached);
                std::thread::sleep(Duration::from_millis(20));
            }
            drain(&mut reached);
            let stats = cluster.shutdown();

            let late: u64 = stats.iter().map(|s| s.rounds_late).sum();
            let reached_frac =
                reached.iter().filter(|r| **r).count() as f64 / correct.max(1) as f64;
            let delivered_frac = total as f64 / (messages * (correct as u64 - 1)) as f64;
            let mean_latency = if lat_count > 0 {
                lat_sum_ms / lat_count as f64
            } else {
                f64::NAN
            };
            table.row(vec![
                n.to_string(),
                shard_count.to_string(),
                format!("{x:.0}"),
                format!("{:.3}", reached_frac),
                format!("{:.3}", delivered_frac),
                format!("{mean_latency:.0} ms"),
                late.to_string(),
            ]);
        }
    }
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "finding: dissemination stays complete (reached ~1.0) as n grows past the\n\
         paper's 50-machine testbed, with or without the flood — Drum's DoS\n\
         resistance is not an artifact of small clusters. The fixed-cadence timer\n\
         wheel reports how often engines ran behind their round deadline."
    )
}

/// Extension experiment: the sustained multi-message soak — a paced
/// stream from the source for a minute-plus, the Figure 7 flood toggled
/// on for the middle third of the run, MTU-packed frames carrying the
/// data plane.
pub fn ext_soak(w: &mut dyn Write) -> io::Result<()> {
    use drum_core::stream::StreamConfig;
    use drum_net::experiment::soak_experiment;

    banner_to(
        w,
        "Extension: sustained-throughput soak",
        "paced multi-message stream, flood toggled mid-run, MTU-packed frames",
    )?;
    let n = scaled3(10usize, 18, 33);
    let attacked = scaled3(1usize, 2, 3);
    let duration = Duration::from_millis(scaled3(1_500, 61_500, 123_000));
    let rate = scaled3(60.0, 120.0, 200.0);
    let flood_x = 72.0;
    let round = Duration::from_millis(scaled3(40, 60, 60));
    let drain = Duration::from_millis(scaled3(1_000, 3_000, 5_000));

    let mut cfg = paper_cluster_config(ProtocolVariant::Drum, n, attacked, 0.0, round, SEED);
    // Pace the source stream: bursts are smoothed over rounds, and
    // overflow past the window is queued with backpressure accounting —
    // never silently dropped.
    let per_round = (rate * round.as_secs_f64()).ceil() as usize + 2;
    cfg.net.stream = StreamConfig::paced(per_round);
    let correct = cfg.correct();

    writeln!(
        w,
        "Drum, n = {n} ({correct} correct), source rate {rate:.0} msg/s for {:.0}s,\n\
         x = {flood_x:.0} fabricated messages per round against {attacked} processes\n\
         during the middle third of the run (the Figure 7 flood, toggled mid-run),\n\
         50-byte payloads, stream paced at {per_round} msgs/round.\n",
        duration.as_secs_f64()
    )?;

    let report = soak_experiment(cfg, duration, rate, 50, flood_x, drain).expect("soak cluster");

    let mut table = Table::new(vec![
        "phase".into(),
        "published".into(),
        "delivered".into(),
        "msgs/s per receiver".into(),
    ]);
    for p in &report.phases {
        table.row(vec![
            p.name.into(),
            p.published.to_string(),
            p.delivered.to_string(),
            format!("{:.1}", p.throughput),
        ]);
    }
    writeln!(w, "{table}")?;

    let mut cdf = Table::new(vec!["quantile".into(), "delivery latency".into()]);
    for (q, ms) in &report.latency_cdf_ms {
        cdf.row(vec![format!("p{:.0}", q * 100.0), format!("{ms:.1} ms")]);
    }
    writeln!(w, "{cdf}")?;

    let receivers = (correct - 1) as u64;
    writeln!(
        w,
        "published {} total; delivered fraction {:.3} of the full published x {}\n\
         receiver coverage; peak message-buffer footprint {} KiB on the busiest\n\
         process; stream backpressure events {} (queued, never dropped); frames\n\
         sent {} ({:.1} msgs/frame mean), {} rejected.\n",
        report.published,
        report.delivery_fraction(receivers),
        receivers,
        report.buffer_bytes_peak / 1024,
        report.backpressure,
        report.frames_sent,
        report.mean_msgs_per_frame(),
        report.frames_rejected,
    )?;
    writeln!(
        w,
        "finding: delivery holds at the offered rate straight through the flood —\n\
         Drum's per-channel bounds confine the damage — without unbounded buffer\n\
         growth: the age-bucketed buffer's high-water mark stays bounded over the\n\
         sustained run, and the paced stream queues (with backpressure accounting)\n\
         instead of silently dropping. MTU-packed frames carry the multi-message\n\
         load in a fraction of the per-message datagram and HMAC budget."
    )
}

/// Extension experiment: rotating adversary.
pub fn ext_rotation(w: &mut dyn Write) -> io::Result<()> {
    banner_to(
        w,
        "Extension: rotating adversary",
        "static vs rotating target sets, alpha = 10%, x = 128",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);

    let mut table = Table::new(
        std::iter::once("rotation".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
            .collect(),
    );

    for (label, rotate) in [
        ("static (paper)", None),
        ("every 8 rounds", Some(8u32)),
        ("every 4 rounds", Some(4)),
        ("every 2 rounds", Some(2)),
        ("every round", Some(1)),
    ] {
        let mut cells = vec![label.to_string()];
        for &p in &PROTOCOLS {
            let mut cfg = SimConfig::paper_attack(p, n, 128.0);
            cfg.attack.as_mut().unwrap().rotate_every = rotate;
            cfg.max_rounds = 2000;
            let res = run_experiment(&cfg, trials, SEED, 0);
            cells.push(format!("{:.1}", res.mean_rounds()));
        }
        table.row(cells);
    }
    writeln!(
        w,
        "average rounds to 99% of correct processes, n = {n} ({trials} trials)"
    )?;
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "finding: rotation never helps the adversary — for Push and Pull it\n\
         *hurts* the attack (the pinned-down victims get released), and Drum\n\
         is indifferent, as its design predicts."
    )
}

/// Extension experiment: adaptive adversary strategies.
pub fn ext_adversary(w: &mut dyn Write) -> io::Result<()> {
    use drum_sim::AdversaryKind;

    banner_to(
        w,
        "Extension: adaptive adversaries",
        "pluggable attack strategies vs the paper's static flood, alpha = 10%, x = 128",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);

    let mut table = Table::new(
        std::iter::once("adversary".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
            .collect(),
    );

    for (label, kind) in [
        ("static (paper)", AdversaryKind::Static),
        ("chase every 8", AdversaryKind::TargetChasing { every: 8 }),
        ("chase every 2", AdversaryKind::TargetChasing { every: 2 }),
        (
            "chase every round",
            AdversaryKind::TargetChasing { every: 1 },
        ),
        ("eclipse the source", AdversaryKind::Eclipse),
        ("replay flood", AdversaryKind::Replay),
    ] {
        let mut cells = vec![label.to_string()];
        for &p in &PROTOCOLS {
            let mut cfg = SimConfig::paper_attack(p, n, 128.0).with_adversary(kind);
            cfg.max_rounds = 2000;
            let res = run_experiment(&cfg, trials, SEED, 0);
            cells.push(format!("{:.1}", res.mean_rounds()));
        }
        table.row(cells);
    }
    writeln!(
        w,
        "average rounds to 99% of correct processes, n = {n} ({trials} trials)"
    )?;
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "finding: every adaptive strategy redistributes the same total budget,\n\
         and none of them moves Drum by more than half a round — its per-round\n\
         per-channel bounds cap what *any* aiming of the budget can extract.\n\
         The undefended protocols tell the opposite story: eclipsing the\n\
         source is catastrophic for Pull (progress rides on the source\n\
         answering pull-requests) yet *helps* Push, since concentrating on\n\
         one process releases the other victims; fast chasing releases\n\
         victims before the flood bites, so Pull recovers. The adversary's\n\
         best strategy is thus protocol-specific — and against Drum there\n\
         isn't one. Replay is budget-identical to static before\n\
         authentication; its real cost, the per-copy MAC verify, is what\n\
         batched verification removes."
    )
}

/// Extension experiment: pull-channel abuse vs attack strength.
pub fn ext_pull_abuse(w: &mut dyn Write) -> io::Result<()> {
    use drum_sim::AdversaryKind;

    banner_to(
        w,
        "Extension: pull-channel abuse",
        "whole budget as valid-looking pull-requests vs the split flood",
    )?;
    let trials = trials();
    let n = scaled(120, 1000);
    let xs: &[f64] = &[32.0, 64.0, 128.0, 256.0];

    let mut table = Table::new(vec![
        "x".into(),
        "drum static".into(),
        "drum pull-abuse".into(),
        "pull static".into(),
        "pull pull-abuse".into(),
    ]);
    for &x in xs {
        let mut cells = vec![format!("{x:.0}")];
        for p in [ProtocolVariant::Drum, ProtocolVariant::Pull] {
            for kind in [AdversaryKind::Static, AdversaryKind::PullAbuse] {
                let mut cfg = SimConfig::paper_attack(p, n, x).with_adversary(kind);
                cfg.max_rounds = 2000;
                let res = run_experiment(&cfg, trials, SEED, 0);
                cells.push(format!("{:.1}", res.mean_rounds()));
            }
        }
        table.row(cells);
    }
    writeln!(
        w,
        "average rounds to 99% of correct processes, n = {n} ({trials} trials)"
    )?;
    writeln!(w, "{table}")?;
    writeln!(
        w,
        "finding: doubling the pressure on pull-request reception never pays.\n\
         For pure Pull it is a no-op — the static flood already spends the\n\
         whole budget on the only channel there is, and degradation keeps\n\
         growing unbounded with x. For Drum it slightly *helps* the victims:\n\
         the pull bound caps what the extra traffic can displace, so the\n\
         budget moved off the push channel is simply wasted against a\n\
         saturated limit while pushes flow unharassed. Under per-channel\n\
         bounds the pull channel is a budget sink, which is the paper's\n\
         channel-separation argument driven to its limit."
    )
}
