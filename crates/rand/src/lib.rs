//! In-tree pseudo-random number generation for the Drum workspace.
//!
//! The workspace builds hermetically offline, so instead of the crates.io
//! `rand` crate this crate re-implements the *small* slice of its API the
//! repository actually uses:
//!
//! * [`Rng`] — `next_u64`, `fill_bytes`, `random_range`, `random_bool`;
//! * [`SeedableRng`] — `from_seed`, `seed_from_u64` (SplitMix64 expansion)
//!   and `from_os_rng` (best-effort OS entropy, used by `drum-net` to seed
//!   port randomization when no explicit seed is given);
//! * [`rngs::SmallRng`] — xoshiro256++, a fast 256-bit-state generator;
//! * [`seq::index::sample`] — partial Fisher–Yates sampling without
//!   replacement, used for view and buffer selection.
//!
//! The library target is deliberately named `rand` so existing
//! `use rand::rngs::SmallRng;` imports keep compiling; `cargo tree` still
//! shows only workspace crates.
//!
//! Determinism is a feature, not an accident: the paper's adversarial
//! experiments (PAPER.md §7–9) are reproduced by Monte-Carlo simulation, and
//! every generator here produces an identical stream for an identical seed on
//! every platform.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x: u64 = a.random_range(0..10);
//! assert!(x < 10);
//! ```

mod os;
pub mod rngs;
pub mod seq;

use core::ops::{Range, RangeInclusive};

/// A source of randomness.
///
/// Only `next_u64` is required; everything else derives from it. Unlike the
/// crates.io trait split (`RngCore` + extension trait) there is a single
/// trait here, with [`RngExt`] provided as an alias so both import styles in
/// the workspace resolve.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of a
    /// 64-bit draw — xoshiro's low bits are the weaker ones).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
    }

    /// Samples uniformly from `range` (`start..end` or `start..=end`).
    ///
    /// Integer ranges are unbiased (Lemire multiply-with-rejection); float
    /// ranges are uniform over `[start, end)` with 53 bits of precision.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // Compare a 53-bit uniform integer against p scaled to the same
        // grid; exact for p = 0 and p = 1.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

/// Alias of [`Rng`] kept so `use rand::RngExt;` call sites compile; with a
/// single trait there is no core/extension split to mirror.
pub use self::Rng as RngExt;

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator directly from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded to the full state
    /// width with SplitMix64 (the expansion recommended by the xoshiro
    /// authors: distinct `u64` seeds yield well-decorrelated states).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = rngs::SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from best-effort OS entropy.
    ///
    /// Used where unpredictability matters more than reproducibility — e.g.
    /// `drum-net` port randomization outside deterministic experiments.
    /// Entropy comes from the OS-keyed `RandomState` hasher plus the clock
    /// and a process-global counter; no two calls return the same stream.
    fn from_os_rng() -> Self {
        let mut seed = Self::Seed::default();
        os::fill(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `0..span` via Lemire's multiply-with-rejection: a
/// 128-bit multiply maps a 64-bit draw onto the span, and draws landing in
/// the biased low fringe are rejected, so every value is exactly equally
/// likely.
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                match ((end - start) as u64).checked_add(1) {
                    Some(span) => start + sample_below(rng, span) as $t,
                    // Full-width range: every 64-bit draw is already uniform.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

uint_sample_range!(u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53-bit mantissa-uniform value in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_full_width_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn random_bool_extremes_are_exact() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(rng.random_bool(1.0));
            assert!(!rng.random_bool(0.0));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn random_bool_rejects_bad_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        rng.random_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        let _: u64 = rng.random_range(5..5);
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw(mut rng: impl Rng) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = draw(&mut rng);
        let _ = rng.next_u64();
    }

    #[test]
    fn from_os_rng_streams_differ() {
        let mut a = SmallRng::from_os_rng();
        let mut b = SmallRng::from_os_rng();
        // 256-bit states: a collision means the entropy source is broken.
        let left: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let right: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(left, right);
    }
}
