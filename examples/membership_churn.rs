//! Dynamic membership over the multicast layer (§10 of the paper).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p drum --example membership_churn
//! ```
//!
//! A CA admits processes, membership events travel as multicast payloads,
//! databases converge, a member is expelled for misbehavior, and a local
//! failure detector suspects an unresponsive peer without evicting it.

use drum::core::ids::ProcessId;
use drum::crypto::keys::KeyStore;
use drum::membership::ca::CertificateAuthority;
use drum::membership::database::MembershipDb;
use drum::membership::events::MembershipEvent;
use drum::membership::failure_detector::FailureDetector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pki = KeyStore::new(2026);
    let ca = CertificateAuthority::new([42u8; 32], pki);
    let validity = 3600;

    // Three founding members.
    println!("founding the group...");
    let mut now = 0u64;
    let mut events = Vec::new();
    for id in 0..3u64 {
        let cert = ca.join(ProcessId(id), now, validity)?;
        events.push(MembershipEvent::Join(cert));
    }

    // Each process keeps its own database; events arrive via multicast
    // (here: simply applied, since the transport is exercised elsewhere).
    let mut dbs: Vec<MembershipDb> = (0..3u64)
        .map(|id| MembershipDb::new(ProcessId(id), ca.verification_key()))
        .collect();
    for db in &mut dbs {
        for e in &events {
            db.apply(e, now)?;
        }
    }
    println!("  members: {:?}", dbs[0].member_ids());

    // A newcomer joins mid-flight; the CA's log-in message gossips out.
    now += 10;
    println!("\np3 joins at t={now}...");
    let cert3 = ca.join(ProcessId(3), now, validity)?;
    let join = MembershipEvent::Join(cert3);
    let wire = join.encode(); // what actually travels inside a DataMessage
    for db in &mut dbs {
        db.apply(&MembershipEvent::decode(&wire)?, now)?;
    }
    println!("  members: {:?}", dbs[0].member_ids());
    println!(
        "  gossip view of p0: {} partners",
        dbs[0].gossip_view().len()
    );

    // p1 turns out to be malicious; the CA expels it.
    now += 10;
    println!("\nCA expels p1 at t={now}...");
    let revoked = dbs[0].certificate_of(ProcessId(1)).unwrap().clone();
    ca.expel(ProcessId(1))?;
    let expel = MembershipEvent::Expel(revoked);
    for db in &mut dbs {
        db.apply(&expel, now)?;
    }
    println!("  members: {:?}", dbs[0].member_ids());

    // A forged join (wrong CA) is rejected everywhere.
    now += 10;
    println!("\nan attacker forges a join for p66...");
    let rogue = CertificateAuthority::new([66u8; 32], KeyStore::new(1));
    let forged = MembershipEvent::Join(rogue.join(ProcessId(66), now, validity)?);
    for (i, db) in dbs.iter_mut().enumerate() {
        let rejected = db.apply(&forged, now).is_err();
        println!("  p{i} rejected the forgery: {rejected}");
        assert!(rejected);
    }

    // p2 goes quiet; p0's failure detector suspects it locally, but p2
    // remains a group member (suspicion is never propagated).
    println!("\np2 stops answering p0's probes...");
    let mut fd = FailureDetector::new(3);
    for _ in 0..3 {
        fd.probe_sent(ProcessId(2));
    }
    assert!(fd.is_suspected(ProcessId(2)));
    dbs[0].suspect(ProcessId(2));
    println!(
        "  p0 gossip view: {} partners (p2 excluded locally)",
        dbs[0].gossip_view().len()
    );
    println!(
        "  p2 still a member everywhere: {}",
        dbs.iter().all(|db| db.contains(ProcessId(2)))
    );

    // ...and it comes back.
    fd.heard_from(ProcessId(2));
    dbs[0].unsuspect(ProcessId(2));
    println!(
        "  p2 responded again; p0 gossip view: {} partners",
        dbs[0].gossip_view().len()
    );

    println!("\ndone: views stayed consistent through churn, expulsion and forgery.");
    Ok(())
}
