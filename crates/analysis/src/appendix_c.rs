//! Appendix C of the paper: the detailed (non-asymptotic) numerical
//! analysis of Drum, Push and Pull — with link loss, crashed/malicious
//! processes and DoS attacks — whose results are "virtually identical" to
//! the simulations (Figures 13 and 14).
//!
//! The computation proceeds in three steps:
//!
//! 1. per-message discard probabilities `d_push` / `d_pull` (§C.2.1) and
//!    their under-attack variants (§C.2.2);
//! 2. per-pair transmission-success probabilities `p_push` / `p_pull`;
//! 3. a Markov recursion on the number of correct processes holding `M`:
//!    one-dimensional without an attack, two-dimensional
//!    `(S^u_r, S^a_r)` (non-attacked, attacked) under an attack.
//!
//! All binomial arithmetic is exact log-domain ([`crate::logmath`]).

use crate::logmath::{pow_one_minus, LogFactorial};

/// Which protocol the formulas are instantiated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Push + pull with split fan-out (the paper's Drum).
    Drum,
    /// Push only.
    Push,
    /// Pull only.
    Pull,
}

impl core::fmt::Display for Protocol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Protocol::Drum => f.write_str("Drum"),
            Protocol::Push => f.write_str("Push"),
            Protocol::Pull => f.write_str("Pull"),
        }
    }
}

/// Parameters of the detailed analysis (§C.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedParams {
    /// Group size `n`.
    pub n: usize,
    /// Number of faulty (crashed or malicious) processes `b`.
    pub b: usize,
    /// Link-loss probability `ε_loss`.
    pub loss: f64,
    /// `|view_push|` (0 for Pull).
    pub view_push: usize,
    /// `|view_pull|` (0 for Push).
    pub view_pull: usize,
    /// Reception bound on push messages `F_in-push`.
    pub f_in_push: usize,
    /// Reception bound on pull-requests `F_in-pull`.
    pub f_in_pull: usize,
}

impl DetailedParams {
    /// The paper's standard instantiation: fan-out `F` split according to
    /// the protocol (Drum: F/2 + F/2; Push: F push; Pull: F pull).
    ///
    /// # Panics
    ///
    /// Panics if `n <= b + 1`, `F == 0`, or Drum is given an odd `F`.
    pub fn paper(protocol: Protocol, n: usize, b: usize, loss: f64, fan_out: usize) -> Self {
        assert!(n > b + 1, "need at least two correct processes");
        assert!(fan_out > 0, "fan-out must be positive");
        let (vp, vl) = match protocol {
            Protocol::Drum => {
                assert!(fan_out.is_multiple_of(2), "Drum splits the fan-out evenly");
                (fan_out / 2, fan_out / 2)
            }
            Protocol::Push => (fan_out, 0),
            Protocol::Pull => (0, fan_out),
        };
        DetailedParams {
            n,
            b,
            loss,
            view_push: vp,
            view_pull: vl,
            f_in_push: vp,
            f_in_pull: vl,
        }
    }

    /// Number of correct processes `n - b`.
    pub fn correct(&self) -> usize {
        self.n - self.b
    }
}

/// Distribution of `Y`, the number of valid messages received on one
/// channel in a round, *given* that a particular correct sender's message
/// arrived (§C.2.1).
///
/// `Z - 1 ~ Binomial(n-b-2, view/(n-1))` correct processes also choose the
/// target, and each of their messages independently survives loss, so
/// `Y - 1 ~ Binomial(n-b-2, (view/(n-1))·(1-ε))` by binomial thinning.
/// Returns `Pr(Y=y)` for `y = 1..=n-b-1` at index `y-1`.
fn y_dist_given_arrival(lf: &LogFactorial, p: &DetailedParams, view: usize) -> Vec<f64> {
    let nb = p.correct();
    let q = view as f64 / (p.n - 1) as f64 * (1.0 - p.loss);
    (1..nb).map(|y| lf.binom_pmf(nb - 2, y - 1, q)).collect()
}

/// Discard probability without an attack: the probability that the target
/// discards the (arrived) message because more than `f_in` valid messages
/// competed this round.
fn discard_prob(lf: &LogFactorial, p: &DetailedParams, view: usize, f_in: usize) -> f64 {
    let dist = y_dist_given_arrival(lf, p, view);
    let mut acc = 0.0;
    for (idx, pr) in dist.iter().enumerate() {
        let y = idx + 1;
        if y > f_in {
            acc += (y - f_in) as f64 / y as f64 * pr;
        }
    }
    acc
}

/// Discard probability under attack: `x_fab` fabricated messages are sent
/// to the channel each round; `X̂ ~ Binomial(x_fab, 1-ε)` of them arrive
/// and compete with the `Y` valid ones for the `f_in` slots (§C.2.2).
fn discard_prob_attacked(
    lf: &LogFactorial,
    p: &DetailedParams,
    view: usize,
    f_in: usize,
    x_fab: u64,
) -> f64 {
    let dist = y_dist_given_arrival(lf, p, view);
    let x_fab = x_fab as usize;
    // Distribution of arriving fabricated messages.
    let fab_dist: Vec<f64> = (0..=x_fab)
        .map(|k| lf.binom_pmf(x_fab, k, 1.0 - p.loss))
        .collect();
    let mut acc = 0.0;
    for (idx, pr_y) in dist.iter().enumerate() {
        let y = idx + 1;
        if *pr_y == 0.0 {
            continue;
        }
        let mut inner = 0.0;
        for (x_hat, pr_x) in fab_dist.iter().enumerate() {
            let total = y + x_hat;
            if total > f_in {
                inner += (total - f_in) as f64 / total as f64 * pr_x;
            }
        }
        acc += inner * pr_y;
    }
    acc
}

/// The per-pair success probabilities of one round, for attacked (`a`) and
/// non-attacked (`u`) endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairProbabilities {
    /// `p^u_push`: sender's push accepted by a non-attacked target.
    pub push_u: f64,
    /// `p^a_push`: sender's push accepted by an attacked target.
    pub push_a: f64,
    /// `p^u_pull`: M obtained by pulling from a non-attacked informed process.
    pub pull_u: f64,
    /// `p^a_pull`: M obtained by pulling from an attacked informed process.
    pub pull_a: f64,
}

impl PairProbabilities {
    /// Per-pair probability of transmitting `M` without any attack
    /// (both endpoints non-attacked), per protocol.
    pub fn no_attack_p(&self, protocol: Protocol) -> f64 {
        match protocol {
            Protocol::Push => self.push_u,
            Protocol::Pull => self.pull_u,
            Protocol::Drum => 1.0 - (1.0 - self.push_u) * (1.0 - self.pull_u),
        }
    }
}

/// Computes all four per-pair probabilities (§C.2.1–C.2.2).
///
/// `x` is the total fabricated-message rate per attacked process per round;
/// Drum splits it `x/2` push + `x/2` pull, Push and Pull take all of it on
/// their single channel (§5).
pub fn pair_probabilities(
    protocol: Protocol,
    params: &DetailedParams,
    x: u64,
) -> PairProbabilities {
    let lf = LogFactorial::up_to(params.n + x as usize + 4);
    let (x_push, x_pull) = match protocol {
        Protocol::Drum => (x / 2, x - x / 2),
        Protocol::Push => (x, 0),
        Protocol::Pull => (0, x),
    };

    let q_push = params.view_push as f64 / (params.n - 1) as f64;
    let q_pull = params.view_pull as f64 / (params.n - 1) as f64;
    let ok = 1.0 - params.loss;

    let (push_u, push_a) = if params.view_push > 0 {
        let d_u = discard_prob(&lf, params, params.view_push, params.f_in_push);
        let d_a = discard_prob_attacked(&lf, params, params.view_push, params.f_in_push, x_push);
        (q_push * ok * (1.0 - d_u), q_push * ok * (1.0 - d_a))
    } else {
        (0.0, 0.0)
    };

    let (pull_u, pull_a) = if params.view_pull > 0 {
        let d_u = discard_prob(&lf, params, params.view_pull, params.f_in_pull);
        let d_a = discard_prob_attacked(&lf, params, params.view_pull, params.f_in_pull, x_pull);
        // Pull needs the request (1 loss draw) and the reply (a second one).
        (
            q_pull * ok * ok * (1.0 - d_u),
            q_pull * ok * ok * (1.0 - d_a),
        )
    } else {
        (0.0, 0.0)
    };

    PairProbabilities {
        push_u,
        push_a,
        pull_u,
        pull_a,
    }
}

/// Result of a recursion run: per-round expected number (and fraction) of
/// correct processes holding `M`. Index 0 is round 0 (only the source).
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationCurve {
    /// Expected number of correct processes with `M` at round start.
    pub expected: Vec<f64>,
    /// `expected` divided by the number of correct processes.
    pub fraction: Vec<f64>,
}

impl PropagationCurve {
    /// First round at which the expected fraction reaches `threshold`
    /// (e.g. 0.99), if it does within the computed horizon.
    pub fn rounds_to_fraction(&self, threshold: f64) -> Option<usize> {
        self.fraction.iter().position(|f| *f >= threshold)
    }
}

/// No-attack recursion (§C.2.1): evolves the distribution of `S_r` — the
/// number of correct processes holding `M` — for `rounds` rounds.
///
/// `p` is the per-pair per-round transmission probability
/// ([`PairProbabilities::no_attack_p`]).
#[allow(clippy::needless_range_loop)] // the indices couple several arrays
pub fn propagation_no_attack(params: &DetailedParams, p: f64, rounds: usize) -> PropagationCurve {
    let nb = params.correct();
    let lf = LogFactorial::up_to(nb + 1);
    let q = 1.0 - p;
    // dist[i] = Pr(S_r = i), i in 0..=nb (index 0 unused; source always has M).
    let mut dist = vec![0.0f64; nb + 1];
    dist[1] = 1.0;
    let mut expected = Vec::with_capacity(rounds + 1);
    expected.push(1.0);

    for _ in 0..rounds {
        let mut next = vec![0.0f64; nb + 1];
        for (i, mass) in dist.iter().enumerate() {
            if *mass <= 1e-15 || i == 0 {
                continue;
            }
            // Each of the nb - i uninformed processes independently fails to
            // receive M from all i informed ones with probability q^i.
            let q_i = pow_one_minus(p, i as f64); // (1-p)^i
            let p_new = 1.0 - q_i;
            let remaining = nb - i;
            for j in i..=nb {
                let pmf = lf.binom_pmf(remaining, j - i, p_new);
                if pmf > 0.0 {
                    next[j] += mass * pmf;
                }
            }
        }
        let _ = q; // q documented for clarity; pow_one_minus used instead
        dist = next;
        let e: f64 = dist.iter().enumerate().map(|(i, m)| i as f64 * m).sum();
        expected.push(e);
    }

    let fraction = expected.iter().map(|e| e / nb as f64).collect();
    PropagationCurve { expected, fraction }
}

/// Under-attack joint recursion (§C.2.2): evolves the joint distribution of
/// `(S^u_r, S^a_r)` — non-attacked / attacked correct processes holding `M`
/// — for `rounds` rounds. The source is attacked (`S^a_0 = 1`).
///
/// `alpha_n` is the number of attacked correct processes. Returns the curve
/// of `E[S_r] = E[S^u_r] + E[S^a_r]`, plus the two component curves.
///
/// # Panics
///
/// Panics if `alpha_n` is 0 or exceeds the number of correct processes.
#[allow(clippy::needless_range_loop)] // the indices couple several arrays
pub fn propagation_under_attack(
    params: &DetailedParams,
    probs: &PairProbabilities,
    protocol: Protocol,
    alpha_n: usize,
    rounds: usize,
) -> AttackCurves {
    let nb = params.correct();
    assert!(alpha_n >= 1 && alpha_n <= nb, "alpha_n out of range");
    let n_u = nb - alpha_n; // non-attacked correct
    let n_a = alpha_n; // attacked correct
    let lf = LogFactorial::up_to(nb + 1);

    // Probability that a given *uninformed* process fails to obtain M this
    // round, given (i_u, i_a) informed processes, by target class (§C.2.2).
    let q_star = |i_u: usize, i_a: usize| -> (f64, f64) {
        let iu = i_u as f64;
        let ia = i_a as f64;
        match protocol {
            Protocol::Push => (
                pow_one_minus(probs.push_u, iu + ia),
                pow_one_minus(probs.push_a, iu + ia),
            ),
            Protocol::Pull => {
                let q = pow_one_minus(probs.pull_u, iu) * pow_one_minus(probs.pull_a, ia);
                (q, q)
            }
            Protocol::Drum => {
                let pull_part = pow_one_minus(probs.pull_u, iu) * pow_one_minus(probs.pull_a, ia);
                (
                    pow_one_minus(probs.push_u, iu + ia) * pull_part,
                    pow_one_minus(probs.push_a, iu + ia) * pull_part,
                )
            }
        }
    };

    // Joint distribution, flattened: dist[iu * (n_a + 1) + ia].
    let width = n_a + 1;
    let mut dist = vec![0.0f64; (n_u + 1) * width];
    dist[1] = 1.0; // (i_u = 0, i_a = 1): the attacked source.

    let mut e_u = vec![0.0f64];
    let mut e_a = vec![1.0f64];

    let mut pu_buf = vec![0.0f64; n_u + 1];
    let mut pa_buf = vec![0.0f64; n_a + 1];

    for _ in 0..rounds {
        let mut next = vec![0.0f64; (n_u + 1) * width];
        for i_u in 0..=n_u {
            for i_a in 0..=n_a {
                let mass = dist[i_u * width + i_a];
                if mass <= 1e-15 {
                    continue;
                }
                let (q_u, q_a) = q_star(i_u, i_a);
                let p_u_new = 1.0 - q_u;
                let p_a_new = 1.0 - q_a;
                // Transition pmfs for the two independent classes.
                for (j, slot) in pu_buf.iter_mut().enumerate() {
                    *slot = if j < i_u {
                        0.0
                    } else {
                        lf.binom_pmf(n_u - i_u, j - i_u, p_u_new)
                    };
                }
                for (j, slot) in pa_buf.iter_mut().enumerate() {
                    *slot = if j < i_a {
                        0.0
                    } else {
                        lf.binom_pmf(n_a - i_a, j - i_a, p_a_new)
                    };
                }
                for j_u in i_u..=n_u {
                    let m_u = mass * pu_buf[j_u];
                    if m_u <= 1e-18 {
                        continue;
                    }
                    let row = j_u * width;
                    for j_a in i_a..=n_a {
                        next[row + j_a] += m_u * pa_buf[j_a];
                    }
                }
            }
        }
        dist = next;
        let mut eu = 0.0;
        let mut ea = 0.0;
        for i_u in 0..=n_u {
            for i_a in 0..=n_a {
                let m = dist[i_u * width + i_a];
                eu += i_u as f64 * m;
                ea += i_a as f64 * m;
            }
        }
        e_u.push(eu);
        e_a.push(ea);
    }

    let expected: Vec<f64> = e_u.iter().zip(e_a.iter()).map(|(u, a)| u + a).collect();
    let fraction = expected.iter().map(|e| e / nb as f64).collect();
    AttackCurves {
        total: PropagationCurve { expected, fraction },
        expected_unattacked: e_u,
        expected_attacked: e_a,
        n_unattacked: n_u,
        n_attacked: n_a,
    }
}

/// Output of [`propagation_under_attack`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCurves {
    /// Combined curve over all correct processes.
    pub total: PropagationCurve,
    /// `E[S^u_r]` per round.
    pub expected_unattacked: Vec<f64>,
    /// `E[S^a_r]` per round.
    pub expected_attacked: Vec<f64>,
    /// Number of non-attacked correct processes.
    pub n_unattacked: usize,
    /// Number of attacked correct processes.
    pub n_attacked: usize,
}

/// Convenience: full Figure 14-style analysis — CDF of the expected fraction
/// of correct processes holding `M` per round, for the given protocol and
/// attack `(alpha_n attacked, x fabricated per attacked process per round)`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn analysis_cdf(
    protocol: Protocol,
    n: usize,
    b: usize,
    loss: f64,
    fan_out: usize,
    alpha_n: usize,
    x: u64,
    rounds: usize,
) -> Vec<f64> {
    let params = DetailedParams::paper(protocol, n, b, loss, fan_out);
    if alpha_n == 0 || x == 0 {
        let probs = pair_probabilities(protocol, &params, 0);
        propagation_no_attack(&params, probs.no_attack_p(protocol), rounds).fraction
    } else {
        let probs = pair_probabilities(protocol, &params, x);
        propagation_under_attack(&params, &probs, protocol, alpha_n, rounds)
            .total
            .fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_params(p: Protocol) -> DetailedParams {
        DetailedParams::paper(p, 120, 12, 0.01, 4)
    }

    #[test]
    fn params_constructor() {
        let d = paper_params(Protocol::Drum);
        assert_eq!(d.view_push, 2);
        assert_eq!(d.view_pull, 2);
        assert_eq!(d.correct(), 108);
        let p = paper_params(Protocol::Push);
        assert_eq!(p.view_push, 4);
        assert_eq!(p.view_pull, 0);
        let l = paper_params(Protocol::Pull);
        assert_eq!(l.view_pull, 4);
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn drum_rejects_odd_fan_out() {
        DetailedParams::paper(Protocol::Drum, 100, 0, 0.0, 5);
    }

    #[test]
    fn pair_probabilities_in_range() {
        for proto in [Protocol::Drum, Protocol::Push, Protocol::Pull] {
            let params = paper_params(proto);
            for &x in &[0u64, 32, 128] {
                let pr = pair_probabilities(proto, &params, x);
                for v in [pr.push_u, pr.push_a, pr.pull_u, pr.pull_a] {
                    assert!((0.0..=1.0).contains(&v), "{proto} x={x}: {v}");
                }
            }
        }
    }

    #[test]
    fn attack_reduces_success_probability() {
        let params = paper_params(Protocol::Drum);
        let clean = pair_probabilities(Protocol::Drum, &params, 0);
        let attacked = pair_probabilities(Protocol::Drum, &params, 128);
        assert!(attacked.push_a < clean.push_u);
        assert!(attacked.pull_a < clean.pull_u);
        // Non-attacked probabilities are unaffected by x.
        assert!((attacked.push_u - clean.push_u).abs() < 1e-12);
        assert!((attacked.pull_u - clean.pull_u).abs() < 1e-12);
    }

    #[test]
    fn no_attack_curve_is_monotone_and_converges() {
        let params = paper_params(Protocol::Drum);
        let probs = pair_probabilities(Protocol::Drum, &params, 0);
        let curve = propagation_no_attack(&params, probs.no_attack_p(Protocol::Drum), 30);
        for w in curve.fraction.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "fraction must be non-decreasing");
        }
        assert!(
            curve.fraction[30] > 0.99,
            "should converge: {}",
            curve.fraction[30]
        );
        assert!(curve.rounds_to_fraction(0.99).is_some());
    }

    #[test]
    fn push_faster_than_pull_without_attack_slightly() {
        // Failure-free: all three protocols converge in O(log n) rounds.
        for proto in [Protocol::Drum, Protocol::Push, Protocol::Pull] {
            let params = DetailedParams::paper(proto, 120, 0, 0.01, 4);
            let probs = pair_probabilities(proto, &params, 0);
            let curve = propagation_no_attack(&params, probs.no_attack_p(proto), 25);
            let r = curve.rounds_to_fraction(0.99);
            assert!(r.is_some() && r.unwrap() <= 15, "{proto}: {r:?}");
        }
    }

    #[test]
    fn under_attack_drum_beats_push_and_pull() {
        // The Figure 14(c) setting: n = 120, alpha = 10%, x = 128.
        let mut rounds_to_99 = std::collections::HashMap::new();
        for proto in [Protocol::Drum, Protocol::Push, Protocol::Pull] {
            let frac = analysis_cdf(proto, 120, 12, 0.01, 4, 12, 128, 60);
            let r = frac.iter().position(|f| *f >= 0.99).unwrap_or(usize::MAX);
            rounds_to_99.insert(proto, r);
        }
        let drum = rounds_to_99[&Protocol::Drum];
        let push = rounds_to_99[&Protocol::Push];
        let pull = rounds_to_99[&Protocol::Pull];
        assert!(drum < push, "drum {drum} !< push {push}");
        assert!(drum < pull, "drum {drum} !< pull {pull}");
    }

    #[test]
    fn attack_curves_mass_is_conserved() {
        let params = paper_params(Protocol::Drum);
        let probs = pair_probabilities(Protocol::Drum, &params, 64);
        let curves = propagation_under_attack(&params, &probs, Protocol::Drum, 12, 10);
        // Expected totals never exceed the population and never decrease.
        for w in curves.total.expected.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        assert!(curves.total.expected.last().unwrap() <= &(params.correct() as f64 + 1e-6));
        assert_eq!(curves.n_unattacked, 96);
        assert_eq!(curves.n_attacked, 12);
    }

    #[test]
    fn stronger_attack_slows_push_but_not_drum() {
        // Lemma 1 vs Corollary 1 in the detailed model.
        let r = |proto: Protocol, x: u64| {
            analysis_cdf(proto, 120, 12, 0.01, 4, 12, x, 120)
                .iter()
                .position(|f| *f >= 0.99)
                .unwrap_or(999)
        };
        let drum_64 = r(Protocol::Drum, 64);
        let drum_256 = r(Protocol::Drum, 256);
        let push_64 = r(Protocol::Push, 64);
        let push_256 = r(Protocol::Push, 256);
        assert!(
            drum_256 <= drum_64 + 2,
            "Drum ~constant: {drum_64} -> {drum_256}"
        );
        assert!(
            push_256 > push_64 + 4,
            "Push grows: {push_64} -> {push_256}"
        );
    }

    #[test]
    fn thinning_identity_matches_double_sum() {
        // Cross-check the binomial-thinning shortcut against the paper's
        // double sum for a small instance.
        let params = DetailedParams {
            n: 12,
            b: 2,
            loss: 0.1,
            view_push: 2,
            view_pull: 2,
            f_in_push: 2,
            f_in_pull: 2,
        };
        let lf = LogFactorial::up_to(64);
        let nb = params.correct();
        let qv = params.view_push as f64 / (params.n - 1) as f64;
        let thinned = y_dist_given_arrival(&lf, &params, params.view_push);
        for y in 1..nb {
            // Double sum per the paper.
            let mut direct = 0.0;
            for z in y..nb {
                let pz = lf.binom_pmf(nb - 2, z - 1, qv);
                let py = lf.binom_pmf(z - 1, y - 1, 1.0 - params.loss);
                direct += pz * py;
            }
            assert!((thinned[y - 1] - direct).abs() < 1e-12, "y = {y}");
        }
    }
}
