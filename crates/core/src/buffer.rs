//! The per-process message buffer.
//!
//! Upon delivering a new data message a process "saves it in its message
//! buffer for a number of rounds" (§4); in the measurement configuration
//! messages are purged after 10 rounds and at most 80 randomly chosen new
//! messages are sent to each gossip partner per round (§8.2).
//!
//! # Steady-state layout
//!
//! Under a sustained multi-message stream the buffer is on the per-round hot
//! path three times: `purge` at every round boundary, `increment_hops` right
//! after it, and `select_missing` once per gossip partner. The store is
//! therefore an *age-bucketed ring*: one bucket per insertion round, oldest
//! at the front. Purging pops whole expired buckets off the front — O(1)
//! amortized per stored message, never a full scan — and a `HashMap` index
//! from [`MessageId`] to `(round, slot)` keeps `contains`/`get` O(1).
//!
//! The "seen" digest (which prevents re-delivery of purged messages that
//! gossip back in) is unbounded by default, matching the paper's model where
//! a process remembers everything it ever delivered. For long soaks,
//! [`MessageBuffer::with_seen_window`] bounds it to a round window: ids
//! older than the window are evicted via [`Digest::remove`], so memory is
//! O(active window) instead of O(history).

use rand::Rng;
use std::collections::{HashMap, VecDeque};

use crate::digest::Digest;
use crate::ids::{MessageId, Round};
use crate::message::DataMessage;

/// Fixed per-message bookkeeping charged to [`MessageBuffer::bytes`] on top
/// of the payload: the `DataMessage` struct itself plus the index entry.
const MESSAGE_OVERHEAD_BYTES: usize =
    std::mem::size_of::<DataMessage>() + std::mem::size_of::<(MessageId, (Round, u32))>();

/// One insertion round's worth of messages.
#[derive(Debug, Clone, Default)]
struct Bucket {
    round: Round,
    slots: Vec<DataMessage>,
    /// Ids inserted this round, remembered for windowed-seen eviction.
    /// Only populated when a seen window is configured.
    seen_ids: Vec<MessageId>,
}

/// A bounded, age-purged store of data messages.
///
/// # Examples
///
/// ```
/// use drum_core::bytes::Bytes;
/// use drum_core::buffer::MessageBuffer;
/// use drum_core::ids::{MessageId, ProcessId, Round};
/// use drum_core::message::DataMessage;
/// use drum_crypto::auth::AuthTag;
///
/// let mut buf = MessageBuffer::new(10);
/// let msg = DataMessage {
///     id: MessageId::new(ProcessId(1), 0),
///     hops: 0,
///     payload: Bytes::from_static(b"hello"),
///     auth: AuthTag::zero(),
/// };
/// assert!(buf.insert(msg, Round(0)));
/// assert_eq!(buf.len(), 1);
/// buf.purge(Round(11));
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageBuffer {
    /// Age-bucketed ring: buckets sorted by insertion round, oldest first.
    buckets: VecDeque<Bucket>,
    /// O(1) membership: id → (insertion round, slot within that bucket).
    index: HashMap<MessageId, (Round, u32)>,
    /// Digest of everything inserted within the seen window (everything
    /// *ever* inserted when the window is 0 = unbounded), used to avoid
    /// re-delivering a purged message that gossips back in.
    seen: Digest,
    /// Messages are purged once `now - inserted >= max_age` rounds.
    max_age: u64,
    /// Seen ids are evicted once `now - inserted >= seen_window` rounds;
    /// 0 keeps them forever (the default, matching the paper's model).
    seen_window: u64,
    /// Approximate heap footprint of the buffered messages.
    bytes: usize,
    /// High-water mark of [`Self::bytes`] since creation.
    bytes_peak: usize,
    /// Messages visited by `purge` since creation (each visit removes the
    /// message, so this is also the cumulative purge count). Diagnostic for
    /// the `max_age = 0` fast path, which must do no iteration work at all.
    purge_visits: u64,
    /// Buckets retired by `purge`, cleared and kept for reuse so a
    /// steady-state round (one bucket retired, one opened) recycles the
    /// slot capacity instead of reallocating it. Bounded by the number of
    /// buckets ever concurrently live (≤ max(max_age, seen_window) + 1).
    spare: Vec<Bucket>,
}

impl MessageBuffer {
    /// Creates a buffer that retains messages for `max_age` rounds.
    /// `max_age = 0` means "never purge" (the analysis/simulation setting
    /// where `M` is never purged).
    pub fn new(max_age: u64) -> Self {
        MessageBuffer {
            max_age,
            ..Self::default()
        }
    }

    /// Creates a buffer whose *seen* digest is also round-windowed: ids are
    /// forgotten `seen_window` rounds after insertion, bounding memory to
    /// the active window instead of the whole stream history.
    ///
    /// A message that gossips back in after its seen entry expired is
    /// re-delivered, so the window must comfortably exceed the time a
    /// message can still be in flight (several multiples of `max_age`).
    /// The default (and `seen_window = 0`) keeps seen ids forever.
    ///
    /// # Panics
    ///
    /// Panics if `seen_window` is non-zero but smaller than `max_age`: the
    /// seen set would forget a message while it is still buffered.
    pub fn with_seen_window(max_age: u64, seen_window: u64) -> Self {
        assert!(
            seen_window == 0 || seen_window >= max_age,
            "seen window ({seen_window}) must cover the retention age ({max_age})"
        );
        MessageBuffer {
            max_age,
            seen_window,
            ..Self::default()
        }
    }

    /// Position of the bucket for `round`, or where one would be inserted.
    fn bucket_pos(&self, round: Round) -> Result<usize, usize> {
        self.buckets.binary_search_by(|b| b.round.cmp(&round))
    }

    /// Inserts a message at local round `now`.
    ///
    /// Returns `true` if the message is *new* (never seen before); `false`
    /// if it is a duplicate or was already seen and purged. Duplicates are
    /// not re-inserted.
    pub fn insert(&mut self, msg: DataMessage, now: Round) -> bool {
        if !self.seen.insert(msg.id) {
            return false;
        }
        let pos = match self.bucket_pos(now) {
            Ok(pos) => pos,
            Err(pos) => {
                let mut bucket = self.spare.pop().unwrap_or_default();
                bucket.round = now;
                self.buckets.insert(pos, bucket);
                pos
            }
        };
        let bucket = &mut self.buckets[pos];
        let id = msg.id;
        self.bytes += msg.payload.len() + MESSAGE_OVERHEAD_BYTES;
        self.bytes_peak = self.bytes_peak.max(self.bytes);
        self.index.insert(id, (now, bucket.slots.len() as u32));
        bucket.slots.push(msg);
        if self.seen_window > 0 {
            bucket.seen_ids.push(id);
        }
        true
    }

    /// Whether `id` has ever been seen (within the seen window, if one is
    /// configured; otherwise ever).
    pub fn seen(&self, id: MessageId) -> bool {
        self.seen.contains(id)
    }

    /// Whether `id` is currently buffered.
    pub fn contains(&self, id: MessageId) -> bool {
        self.index.contains_key(&id)
    }

    /// Fetches a buffered message.
    pub fn get(&self, id: MessageId) -> Option<&DataMessage> {
        let &(round, slot) = self.index.get(&id)?;
        let pos = self.bucket_pos(round).ok()?;
        self.buckets[pos].slots.get(slot as usize)
    }

    /// Number of currently buffered messages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Approximate heap footprint of the buffered messages, in bytes
    /// (payloads plus fixed per-message bookkeeping).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// High-water mark of [`Self::bytes`] since creation.
    pub fn bytes_peak(&self) -> usize {
        self.bytes_peak
    }

    /// Messages visited by [`Self::purge`] since creation. The `max_age = 0`
    /// ("never purge") mode must keep this at zero no matter how large the
    /// buffer grows — purging is skipped entirely, not scanned-and-kept.
    pub fn purge_work(&self) -> u64 {
        self.purge_visits
    }

    /// Digest of the currently buffered messages (what a pull-request or
    /// push-reply advertises).
    pub fn digest(&self) -> Digest {
        self.index.keys().copied().collect()
    }

    /// Digest of everything seen (within the seen window, if configured).
    pub fn seen_digest(&self) -> &Digest {
        &self.seen
    }

    /// Removes messages older than the retention age. Returns how many were
    /// purged. A `max_age` of 0 disables purging and does no iteration work.
    pub fn purge(&mut self, now: Round) -> usize {
        if self.max_age == 0 {
            return 0;
        }
        let mut purged = 0usize;
        while let Some(front) = self.buckets.front() {
            if now.since(front.round) < self.max_age {
                break;
            }
            // Expired seen ids stay queued (not yet evictable) unless the
            // window has also passed; drain them with the bucket when it has.
            let evict_seen = self.seen_window > 0 && now.since(front.round) >= self.seen_window;
            if !evict_seen && self.seen_window > 0 {
                // The bucket's messages expire now but their seen ids must
                // survive until the window closes: move them to a tombstone
                // bucket that holds only seen ids.
                break;
            }
            let mut bucket = self.buckets.pop_front().expect("front checked above");
            for msg in &bucket.slots {
                self.index.remove(&msg.id);
                self.bytes -= msg.payload.len() + MESSAGE_OVERHEAD_BYTES;
                self.purge_visits += 1;
                purged += 1;
            }
            if evict_seen {
                for id in &bucket.seen_ids {
                    self.seen.remove(*id);
                }
            }
            bucket.slots.clear();
            bucket.seen_ids.clear();
            self.spare.push(bucket);
        }
        // With a seen window, buckets older than max_age but younger than
        // the window keep their seen ids; purge their message slots in place.
        if self.seen_window > 0 {
            for bucket in &mut self.buckets {
                if now.since(bucket.round) < self.max_age {
                    break;
                }
                for msg in bucket.slots.drain(..) {
                    self.index.remove(&msg.id);
                    self.bytes -= msg.payload.len() + MESSAGE_OVERHEAD_BYTES;
                    self.purge_visits += 1;
                    purged += 1;
                }
            }
        }
        purged
    }

    /// Increments the round counter (`hops`) of every buffered message —
    /// the paper's §8.1 accounting, performed once per local round.
    pub fn increment_hops(&mut self) {
        for bucket in &mut self.buckets {
            for msg in &mut bucket.slots {
                msg.hops = msg.hops.saturating_add(1);
            }
        }
    }

    /// Selects up to `max` random buffered messages that are *missing* from
    /// `their_digest` — the messages to push or to include in a pull-reply.
    ///
    /// Allocates the result vector; the per-partner hot path should use
    /// [`Self::select_missing_into`] with a reused buffer instead.
    pub fn select_missing<R: Rng + ?Sized>(
        &self,
        their_digest: &Digest,
        max: usize,
        rng: &mut R,
    ) -> Vec<DataMessage> {
        let mut out = Vec::new();
        self.select_missing_into(their_digest, max, rng, &mut out);
        out
    }

    /// [`Self::select_missing`] into a caller-provided buffer.
    ///
    /// `out` is cleared first and never shrunk, so a buffer reused across
    /// partners and rounds grows once to the configured per-exchange cap and
    /// then allocates nothing: selection is a single reservoir-sampling pass
    /// over the age buckets (uniform over the missing messages), and cloning
    /// a [`DataMessage`] only bumps the payload's refcount.
    pub fn select_missing_into<R: Rng + ?Sized>(
        &self,
        their_digest: &Digest,
        max: usize,
        rng: &mut R,
        out: &mut Vec<DataMessage>,
    ) {
        out.clear();
        if max == 0 {
            return;
        }
        let mut candidates = 0usize;
        for bucket in &self.buckets {
            for msg in &bucket.slots {
                if their_digest.contains(msg.id) {
                    continue;
                }
                if candidates < max {
                    out.push(msg.clone());
                } else {
                    // Reservoir step: the i-th candidate (0-based) replaces a
                    // kept one with probability max / (i + 1).
                    let j = rng.random_range(0..=candidates);
                    if j < max {
                        out[j] = msg.clone();
                    }
                }
                candidates += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::ids::ProcessId;
    use drum_crypto::auth::AuthTag;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn msg(source: u64, seq: u64) -> DataMessage {
        DataMessage {
            id: MessageId::new(ProcessId(source), seq),
            hops: 0,
            payload: Bytes::from_static(b"x"),
            auth: AuthTag::zero(),
        }
    }

    #[test]
    fn insert_and_duplicate() {
        let mut buf = MessageBuffer::new(10);
        assert!(buf.insert(msg(1, 0), Round(0)));
        assert!(!buf.insert(msg(1, 0), Round(0)));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn purge_by_age() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(1, 1), Round(5));
        assert_eq!(buf.purge(Round(9)), 0);
        assert_eq!(buf.purge(Round(10)), 1); // seq 0 is 10 rounds old
        assert!(buf.contains(MessageId::new(ProcessId(1), 1)));
        assert_eq!(buf.purge(Round(15)), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn zero_age_never_purges() {
        let mut buf = MessageBuffer::new(0);
        buf.insert(msg(1, 0), Round(0));
        assert_eq!(buf.purge(Round(1_000_000)), 0);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zero_age_purge_does_no_iteration_work() {
        // Regression: "never purge" must early-return, not scan-and-keep.
        // `purge_work` counts every message a purge pass visits; with
        // max_age = 0 it must stay at zero regardless of buffer size.
        let mut buf = MessageBuffer::new(0);
        for seq in 0..1_000 {
            buf.insert(msg(1, seq), Round(seq));
        }
        for round in 0..100 {
            assert_eq!(buf.purge(Round(1_000_000 + round)), 0);
        }
        assert_eq!(buf.purge_work(), 0);
        assert_eq!(buf.len(), 1_000);

        // Sanity: a purging buffer does count its visits.
        let mut aged = MessageBuffer::new(1);
        aged.insert(msg(1, 0), Round(0));
        aged.purge(Round(5));
        assert_eq!(aged.purge_work(), 1);
    }

    #[test]
    fn purged_message_not_reinserted() {
        let mut buf = MessageBuffer::new(1);
        buf.insert(msg(1, 0), Round(0));
        buf.purge(Round(5));
        assert!(buf.is_empty());
        // Gossip brings the old message back: it must be recognized as seen.
        assert!(!buf.insert(msg(1, 0), Round(5)));
        assert!(buf.is_empty());
        assert!(buf.seen(MessageId::new(ProcessId(1), 0)));
    }

    #[test]
    fn windowed_seen_evicts_old_ids() {
        let mut buf = MessageBuffer::with_seen_window(2, 10);
        buf.insert(msg(1, 0), Round(0));
        // Expired from the buffer at round 2, but still within the seen
        // window: a re-arrival is recognized and dropped.
        buf.purge(Round(5));
        assert!(buf.is_empty());
        assert!(buf.seen(MessageId::new(ProcessId(1), 0)));
        assert!(!buf.insert(msg(1, 0), Round(5)));
        // Past the window the id is forgotten and the message re-delivers.
        buf.purge(Round(10));
        assert!(!buf.seen(MessageId::new(ProcessId(1), 0)));
        assert!(buf.insert(msg(1, 0), Round(10)));
    }

    #[test]
    fn windowed_seen_memory_is_bounded_by_the_window() {
        let mut buf = MessageBuffer::with_seen_window(10, 40);
        for round in 0..10_000u64 {
            buf.insert(msg(1, round), Round(round));
            buf.purge(Round(round));
            assert!(buf.len() <= 10);
        }
        // Only the window's worth of ids is remembered; with sequential
        // seqs that is one compact interval, not 10k entries.
        assert!(buf.seen_digest().len() <= 41);
        let unbounded = {
            let mut b = MessageBuffer::new(10);
            for round in 0..10_000u64 {
                b.insert(msg(1, round), Round(round));
                b.purge(Round(round));
            }
            b.seen_digest().len()
        };
        assert_eq!(unbounded, 10_000);
    }

    #[test]
    #[should_panic(expected = "seen window")]
    fn seen_window_smaller_than_max_age_panics() {
        let _ = MessageBuffer::with_seen_window(10, 5);
    }

    #[test]
    fn bytes_track_inserts_and_purges() {
        let mut buf = MessageBuffer::new(1);
        assert_eq!(buf.bytes(), 0);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(1, 1), Round(0));
        let full = buf.bytes();
        assert!(full > 0);
        buf.purge(Round(1));
        assert_eq!(buf.bytes(), 0);
        assert_eq!(buf.bytes_peak(), full);
    }

    #[test]
    fn digest_reflects_buffer() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(2, 3), Round(0));
        let d = buf.digest();
        assert!(d.contains(MessageId::new(ProcessId(1), 0)));
        assert!(d.contains(MessageId::new(ProcessId(2), 3)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn get_finds_messages_across_buckets() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(2, 7), Round(3));
        buf.insert(msg(1, 1), Round(3));
        assert_eq!(
            buf.get(MessageId::new(ProcessId(2), 7)).unwrap().id,
            MessageId::new(ProcessId(2), 7)
        );
        assert!(buf.get(MessageId::new(ProcessId(9), 9)).is_none());
    }

    #[test]
    fn select_missing_excludes_known() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.insert(msg(1, 1), Round(0));
        let mut their = Digest::new();
        their.insert(MessageId::new(ProcessId(1), 0));
        let mut rng = SmallRng::seed_from_u64(1);
        let selected = buf.select_missing(&their, 10, &mut rng);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].id, MessageId::new(ProcessId(1), 1));
    }

    #[test]
    fn select_missing_respects_max() {
        let mut buf = MessageBuffer::new(10);
        for seq in 0..100 {
            buf.insert(msg(1, seq), Round(0));
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let selected = buf.select_missing(&Digest::new(), 7, &mut rng);
        assert_eq!(selected.len(), 7);
        // All distinct.
        let mut ids: Vec<MessageId> = selected.iter().map(|m| m.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn select_missing_random_subset_varies() {
        let mut buf = MessageBuffer::new(10);
        for seq in 0..50 {
            buf.insert(msg(1, seq), Round(0));
        }
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(2);
        let s1: Vec<MessageId> = buf
            .select_missing(&Digest::new(), 5, &mut rng1)
            .iter()
            .map(|m| m.id)
            .collect();
        let s2: Vec<MessageId> = buf
            .select_missing(&Digest::new(), 5, &mut rng2)
            .iter()
            .map(|m| m.id)
            .collect();
        // Overwhelmingly likely to differ for 50-choose-5.
        assert_ne!(s1, s2);
    }

    #[test]
    fn select_missing_into_reuses_the_buffer() {
        let mut buf = MessageBuffer::new(10);
        for seq in 0..30 {
            buf.insert(msg(1, seq), Round(0));
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        buf.select_missing_into(&Digest::new(), 8, &mut rng, &mut out);
        assert_eq!(out.len(), 8);
        let cap = out.capacity();
        for _ in 0..10 {
            buf.select_missing_into(&Digest::new(), 8, &mut rng, &mut out);
            assert_eq!(out.len(), 8);
            assert_eq!(out.capacity(), cap);
        }
        // max = 0 clears and selects nothing.
        buf.select_missing_into(&Digest::new(), 0, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn select_missing_matches_into_variant() {
        let mut buf = MessageBuffer::new(10);
        for seq in 0..40 {
            buf.insert(msg(1, seq), Round(seq % 4));
        }
        let mut rng1 = SmallRng::seed_from_u64(9);
        let mut rng2 = SmallRng::seed_from_u64(9);
        let a = buf.select_missing(&Digest::new(), 6, &mut rng1);
        let mut b = Vec::new();
        buf.select_missing_into(&Digest::new(), 6, &mut rng2, &mut b);
        let ids = |v: &[DataMessage]| v.iter().map(|m| m.id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn hops_increment() {
        let mut buf = MessageBuffer::new(10);
        buf.insert(msg(1, 0), Round(0));
        buf.increment_hops();
        buf.increment_hops();
        assert_eq!(buf.get(MessageId::new(ProcessId(1), 0)).unwrap().hops, 2);
    }
}
