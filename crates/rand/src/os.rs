//! Best-effort OS entropy without platform syscalls or `unsafe`.
//!
//! `std` has no portable `getrandom`, but `RandomState` keys its hashers
//! from OS entropy once per process. Hashing a never-repeating counter and
//! the current clock under freshly built states yields values that are
//! unpredictable to an outside attacker and guaranteed distinct across
//! calls — sufficient for seeding port randomization, and never used where
//! reproducibility is required.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::rngs::SplitMix64;
use crate::Rng;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn entropy_word() -> u64 {
    let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(tick);
    hasher.write_u64(nanos);
    hasher.finish()
}

/// Fills `dest` with entropy-derived bytes.
pub(crate) fn fill(dest: &mut [u8]) {
    // Two independently keyed words seed a SplitMix64 stream wide enough
    // for any state size; the counter keeps concurrent fills distinct even
    // within one clock tick.
    let mut mixer = SplitMix64::new(entropy_word() ^ entropy_word().rotate_left(32));
    mixer.fill_bytes(dest);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_differ_across_calls() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        fill(&mut a);
        fill(&mut b);
        assert_ne!(a, b);
    }
}
