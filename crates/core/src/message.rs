//! Data and wire message types of the Drum protocol (§4 of the paper).

use crate::bytes::Bytes;
use drum_crypto::auth::AuthTag;
use drum_crypto::seal::SealedBox;

use crate::digest::Digest;
use crate::ids::{MessageId, ProcessId};

/// A multicast data message.
///
/// Created once by its source and then gossiped; the `hops` counter is the
/// paper's round counter (§8.1): the source logs 0 and immediately sets it to
/// 1; every process increments the counters of buffered messages once per
/// local round, so on reception it records how many rounds the message has
/// traveled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataMessage {
    /// Globally unique id (source + sequence number).
    pub id: MessageId,
    /// Round counter (§8.1), incremented once per round while buffered.
    pub hops: u32,
    /// Application payload.
    pub payload: Bytes,
    /// Source-authentication tag over `(source, seq, payload)`.
    pub auth: AuthTag,
}

impl DataMessage {
    /// Creates and signs a new data message.
    pub fn sign_new(
        source_key: &drum_crypto::keys::SecretKey,
        id: MessageId,
        payload: Bytes,
    ) -> Self {
        Self::sign_new_with(&source_key.hmac_key(), id, payload)
    }

    /// Creates and signs a new data message using a precomputed key schedule
    /// (see [`drum_crypto::keys::SecretKey::hmac_key`]). Sources that publish
    /// repeatedly should cache the schedule and use this entry point.
    pub fn sign_new_with(
        auth_key: &drum_crypto::hmac::HmacKey,
        id: MessageId,
        payload: Bytes,
    ) -> Self {
        let auth = drum_crypto::auth::sign_with(auth_key, id.source.as_u64(), id.seq, &payload);
        DataMessage {
            id,
            hops: 0,
            payload,
            auth,
        }
    }

    /// Verifies the source-authentication tag against the key store.
    ///
    /// # Errors
    ///
    /// Propagates [`drum_crypto::auth::AuthError`] for unknown sources and
    /// forged tags.
    pub fn verify(
        &self,
        store: &drum_crypto::keys::KeyStore,
    ) -> Result<(), drum_crypto::auth::AuthError> {
        drum_crypto::auth::verify(
            store,
            self.id.source.as_u64(),
            self.id.seq,
            &self.payload,
            &self.auth,
        )
    }
}

/// How a reply port is communicated.
///
/// Drum seals random ports under the recipient's key so an attacker cannot
/// learn them ([`PortRef::Sealed`]). The ablation variant that demonstrates
/// *why* this matters (Figure 12(a)) uses [`PortRef::Plain`]; abstract
/// transports (the simulator) use [`PortRef::None`].
#[derive(Debug, Clone, PartialEq)]
pub enum PortRef {
    /// No port information (abstract/simulated transport).
    None,
    /// A cleartext port — vulnerable to targeted flooding.
    Plain(u16),
    /// A sealed port, only readable by the intended recipient.
    Sealed(SealedBox),
}

impl PortRef {
    /// Whether the port is concealed from eavesdroppers.
    pub fn is_sealed(&self) -> bool {
        matches!(self, PortRef::Sealed(_))
    }
}

/// The gossip wire messages (§4).
///
/// `PullRequest` and `PushOffer` go to well-known ports; all other messages
/// go to ports carried (usually sealed) inside a previous message.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipMessage {
    /// "Send me what I'm missing": digest of held messages + reply port.
    PullRequest {
        /// Requester.
        from: ProcessId,
        /// What the requester already has.
        digest: Digest,
        /// Where to send the pull-reply (random, sealed).
        reply_port: PortRef,
        /// Seal nonce (round × counter), echoed for key derivation.
        nonce: u64,
    },
    /// Response to a pull-request: messages missing from the digest.
    PullReply {
        /// Responder.
        from: ProcessId,
        /// The requested data messages.
        messages: Vec<DataMessage>,
    },
    /// First leg of the push handshake: "I have messages for you".
    PushOffer {
        /// Offerer.
        from: ProcessId,
        /// Where to send the push-reply (random, sealed).
        reply_port: PortRef,
        /// Seal nonce.
        nonce: u64,
    },
    /// Second leg: the target's digest plus a data port.
    PushReply {
        /// Push target replying to an offer.
        from: ProcessId,
        /// What the target already has.
        digest: Digest,
        /// Where to send the data messages (random, sealed).
        data_port: PortRef,
        /// Seal nonce.
        nonce: u64,
    },
    /// Third leg: data messages the target was missing.
    PushData {
        /// Original offerer.
        from: ProcessId,
        /// Messages missing from the target's digest.
        messages: Vec<DataMessage>,
    },
}

impl GossipMessage {
    /// The claimed sender of this message.
    ///
    /// Note: on an insecure channel this is *not* authenticated — only data
    /// message *sources* are. The protocol never trusts `from` for anything
    /// beyond addressing a reply.
    pub fn from(&self) -> ProcessId {
        match self {
            GossipMessage::PullRequest { from, .. }
            | GossipMessage::PullReply { from, .. }
            | GossipMessage::PushOffer { from, .. }
            | GossipMessage::PushReply { from, .. }
            | GossipMessage::PushData { from, .. } => *from,
        }
    }

    /// A short label for logging and metrics.
    pub fn kind(&self) -> MessageKind {
        match self {
            GossipMessage::PullRequest { .. } => MessageKind::PullRequest,
            GossipMessage::PullReply { .. } => MessageKind::PullReply,
            GossipMessage::PushOffer { .. } => MessageKind::PushOffer,
            GossipMessage::PushReply { .. } => MessageKind::PushReply,
            GossipMessage::PushData { .. } => MessageKind::PushData,
        }
    }
}

/// Discriminant of [`GossipMessage`], used for budgeting and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Pull-request (well-known pull port).
    PullRequest,
    /// Pull-reply (random port).
    PullReply,
    /// Push-offer (well-known push port).
    PushOffer,
    /// Push-reply (random port).
    PushReply,
    /// Push data (random port).
    PushData,
}

impl MessageKind {
    /// Stable lowercase label (allocation-free, for trace events).
    pub const fn name(self) -> &'static str {
        match self {
            MessageKind::PullRequest => "pull-request",
            MessageKind::PullReply => "pull-reply",
            MessageKind::PushOffer => "push-offer",
            MessageKind::PushReply => "push-reply",
            MessageKind::PushData => "push-data",
        }
    }
}

impl core::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drum_crypto::keys::KeyStore;

    fn store_and_key(source: u64) -> (KeyStore, drum_crypto::keys::SecretKey) {
        let store = KeyStore::new(77);
        let key = store.register(source);
        (store, key)
    }

    #[test]
    fn sign_and_verify_data_message() {
        let (store, key) = store_and_key(4);
        let msg = DataMessage::sign_new(
            &key,
            MessageId::new(ProcessId(4), 0),
            Bytes::from_static(b"m"),
        );
        assert!(msg.verify(&store).is_ok());
    }

    #[test]
    fn tampered_payload_fails_verification() {
        let (store, key) = store_and_key(4);
        let mut msg = DataMessage::sign_new(
            &key,
            MessageId::new(ProcessId(4), 0),
            Bytes::from_static(b"m"),
        );
        msg.payload = Bytes::from_static(b"x");
        assert!(msg.verify(&store).is_err());
    }

    #[test]
    fn fabricated_message_fails_verification() {
        let (store, _) = store_and_key(4);
        let msg = DataMessage {
            id: MessageId::new(ProcessId(4), 0),
            hops: 0,
            payload: Bytes::from_static(b"fake"),
            auth: AuthTag::zero(),
        };
        assert!(msg.verify(&store).is_err());
    }

    #[test]
    fn gossip_message_from_and_kind() {
        let m = GossipMessage::PushOffer {
            from: ProcessId(9),
            reply_port: PortRef::None,
            nonce: 0,
        };
        assert_eq!(m.from(), ProcessId(9));
        assert_eq!(m.kind(), MessageKind::PushOffer);
        assert_eq!(m.kind().to_string(), "push-offer");
    }

    #[test]
    fn port_ref_sealed_detection() {
        assert!(!PortRef::None.is_sealed());
        assert!(!PortRef::Plain(80).is_sealed());
        let key = drum_crypto::keys::SecretKey::from_bytes([1; 32]);
        let sealed = drum_crypto::seal::seal_port(&key, 0, 1234).unwrap();
        assert!(PortRef::Sealed(sealed).is_sealed());
    }

    #[test]
    fn all_kinds_display() {
        for (k, s) in [
            (MessageKind::PullRequest, "pull-request"),
            (MessageKind::PullReply, "pull-reply"),
            (MessageKind::PushOffer, "push-offer"),
            (MessageKind::PushReply, "push-reply"),
            (MessageKind::PushData, "push-data"),
        ] {
            assert_eq!(k.to_string(), s);
        }
    }
}
