//! A minimal, criterion-shaped benchmark harness on `std::time::Instant`.
//!
//! The workspace builds with zero crates.io dependencies, so the bench
//! targets (gated behind the `criterion` cargo feature) link against this
//! module instead of the criterion crate. It reproduces the small API
//! surface the benches use — groups, sample sizes, throughput annotations,
//! `iter`/`iter_batched` and the `criterion_group!`/`criterion_main!`
//! macros — and prints one line of wall-clock statistics per benchmark.
//! It performs no statistical outlier analysis; the numbers are honest
//! means/minima over `sample_size` samples, good enough for spotting
//! order-of-magnitude regressions offline.

use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// Top-level handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Work-rate annotation attached to subsequent benchmarks of a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this harness times one batch per sample regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, &b, self.throughput);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&id.full, &b, self.throughput);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Measures a routine handed to it by the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per iteration, one entry per sample.
    sample_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            sample_ns: Vec::with_capacity(samples),
        }
    }

    /// Times `routine`, amortizing it over enough iterations that each
    /// sample spans roughly [`SAMPLE_TARGET`].
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: double the batch until it takes a measurable time.
        let mut batch = 1u64;
        let per_iter_secs = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 24 {
                break elapsed.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        let per_sample = if per_iter_secs > 0.0 {
            ((SAMPLE_TARGET.as_secs_f64() / per_iter_secs) as u64).clamp(1, 1 << 24)
        } else {
            1 << 24
        };
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.sample_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; the setup cost is
    /// excluded from the measurement. One batch element per sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.sample_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.sample_ns.is_empty() {
        println!("  {id:<44} (no samples)");
        return;
    }
    let mean = b.sample_ns.iter().sum::<f64>() / b.sample_ns.len() as f64;
    let min = b.sample_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let rate = throughput.map(|t| {
        let per_sec = 1e9 / mean;
        match t {
            Throughput::Bytes(n) => {
                format!("  {:>10.1} MiB/s", per_sec * n as f64 / (1 << 20) as f64)
            }
            Throughput::Elements(n) => format!("  {:>10.0} elem/s", per_sec * n as f64),
        }
    });
    println!(
        "  {id:<44} {:>12} /iter (min {:>12}){}",
        format_ns(mean),
        format_ns(min),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Expands to a function running each benchmark target in order, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` invoking each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut b = Bencher::new(3);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.sample_ns.len(), 3);
        assert!(b.sample_ns.iter().all(|&ns| ns >= 0.0));
        assert!(count > 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(4);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.sample_ns.len(), 4);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness_self_test");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(8));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("trial", "drum").full, "trial/drum");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }
}
