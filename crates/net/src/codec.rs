//! Binary wire codec for [`GossipMessage`].
//!
//! A hand-rolled, length-checked format on top of `drum_core::bytes` (no
//! general serialization framework is available offline, and a fixed format
//! keeps datagrams compact). All integers are big-endian. Every decoder is
//! hardened against truncated, oversized and garbage input — a DoS-resistant
//! endpoint must survive arbitrary bytes on its well-known ports.

use drum_core::bytes::{Bytes, BytesMut};

use drum_core::digest::Digest;
use drum_core::ids::{MessageId, ProcessId};
use drum_core::message::{DataMessage, GossipMessage, PortRef};
use drum_crypto::auth::AuthTag;
use drum_crypto::seal::SealedBox;

/// Maximum accepted datagram payload (loopback UDP handles 64 KiB; we stay
/// comfortably below).
pub const MAX_WIRE_LEN: usize = 60 * 1024;

/// Maximum number of data messages in one pull-reply/push-data datagram.
pub const MAX_MESSAGES_PER_DATAGRAM: usize = 512;

/// Maximum digest intervals accepted in one datagram.
pub const MAX_DIGEST_INTERVALS: usize = 4096;

/// Maximum payload bytes per data message on the wire.
pub const MAX_PAYLOAD_LEN: usize = 8 * 1024;

const TAG_PULL_REQUEST: u8 = 1;
const TAG_PULL_REPLY: u8 = 2;
const TAG_PUSH_OFFER: u8 = 3;
const TAG_PUSH_REPLY: u8 = 4;
const TAG_PUSH_DATA: u8 = 5;

const PORT_NONE: u8 = 0;
const PORT_PLAIN: u8 = 1;
const PORT_SEALED: u8 = 2;

/// Decoding errors. Deliberately coarse: a hostile sender learns nothing
/// from which check failed, and the runtime just drops the datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the structure was complete.
    Truncated,
    /// A tag byte or enum discriminant was invalid.
    BadTag,
    /// A length field exceeded its hard limit.
    TooLarge,
    /// A digest violated its canonical-form invariants.
    BadDigest,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::BadTag => write!(f, "invalid tag"),
            DecodeError::TooLarge => write!(f, "length field exceeds limit"),
            DecodeError::BadDigest => write!(f, "malformed digest"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn put_digest(out: &mut BytesMut, digest: &Digest) {
    let sources: Vec<_> = digest.intervals().collect();
    out.put_u32(sources.len() as u32);
    for (source, intervals) in sources {
        out.put_u64(source.as_u64());
        out.put_u32(intervals.len() as u32);
        for &(lo, hi) in intervals {
            out.put_u64(lo);
            out.put_u64(hi);
        }
    }
}

fn get_digest(buf: &mut Bytes) -> Result<Digest, DecodeError> {
    need(buf, 4)?;
    let n_sources = buf.get_u32() as usize;
    if n_sources > MAX_DIGEST_INTERVALS {
        return Err(DecodeError::TooLarge);
    }
    let mut entries = Vec::with_capacity(n_sources.min(64));
    let mut total_intervals = 0usize;
    for _ in 0..n_sources {
        need(buf, 12)?;
        let source = ProcessId(buf.get_u64());
        let n_intervals = buf.get_u32() as usize;
        total_intervals += n_intervals;
        if total_intervals > MAX_DIGEST_INTERVALS {
            return Err(DecodeError::TooLarge);
        }
        let mut intervals = Vec::with_capacity(n_intervals.min(64));
        for _ in 0..n_intervals {
            need(buf, 16)?;
            intervals.push((buf.get_u64(), buf.get_u64()));
        }
        entries.push((source, intervals));
    }
    Digest::from_intervals(entries).map_err(|_| DecodeError::BadDigest)
}

fn put_port(out: &mut BytesMut, port: &PortRef) {
    match port {
        PortRef::None => out.put_u8(PORT_NONE),
        PortRef::Plain(p) => {
            out.put_u8(PORT_PLAIN);
            out.put_u16(*p);
        }
        PortRef::Sealed(sealed) => {
            out.put_u8(PORT_SEALED);
            out.put_u64(sealed.nonce);
            out.put_u8(sealed.ciphertext.len() as u8);
            out.put_slice(&sealed.ciphertext);
            out.put_slice(&sealed.tag);
        }
    }
}

fn get_port(buf: &mut Bytes) -> Result<PortRef, DecodeError> {
    need(buf, 1)?;
    match buf.get_u8() {
        PORT_NONE => Ok(PortRef::None),
        PORT_PLAIN => {
            need(buf, 2)?;
            Ok(PortRef::Plain(buf.get_u16()))
        }
        PORT_SEALED => {
            need(buf, 9)?;
            let nonce = buf.get_u64();
            let ct_len = buf.get_u8() as usize;
            if ct_len > drum_crypto::seal::MAX_SEALED_LEN {
                return Err(DecodeError::TooLarge);
            }
            need(buf, ct_len + 32)?;
            let mut ciphertext = vec![0u8; ct_len];
            buf.copy_to_slice(&mut ciphertext);
            let mut tag = [0u8; 32];
            buf.copy_to_slice(&mut tag);
            Ok(PortRef::Sealed(SealedBox {
                nonce,
                ciphertext,
                tag,
            }))
        }
        _ => Err(DecodeError::BadTag),
    }
}

fn put_data_message(out: &mut BytesMut, msg: &DataMessage) {
    out.put_u64(msg.id.source.as_u64());
    out.put_u64(msg.id.seq);
    out.put_u32(msg.hops);
    out.put_u32(msg.payload.len() as u32);
    out.put_slice(&msg.payload);
    out.put_slice(&msg.auth.0);
}

fn get_data_message(buf: &mut Bytes) -> Result<DataMessage, DecodeError> {
    need(buf, 24)?;
    let source = ProcessId(buf.get_u64());
    let seq = buf.get_u64();
    let hops = buf.get_u32();
    let payload_len = buf.get_u32() as usize;
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(DecodeError::TooLarge);
    }
    need(buf, payload_len + 32)?;
    let payload = buf.copy_to_bytes(payload_len);
    let mut tag = [0u8; 32];
    buf.copy_to_slice(&mut tag);
    Ok(DataMessage {
        id: MessageId::new(source, seq),
        hops,
        payload,
        auth: AuthTag(tag),
    })
}

fn put_messages(out: &mut BytesMut, messages: &[DataMessage]) {
    out.put_u32(messages.len() as u32);
    for m in messages {
        put_data_message(out, m);
    }
}

fn get_messages(buf: &mut Bytes) -> Result<Vec<DataMessage>, DecodeError> {
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    if n > MAX_MESSAGES_PER_DATAGRAM {
        return Err(DecodeError::TooLarge);
    }
    let mut out = Vec::with_capacity(n.min(128));
    for _ in 0..n {
        out.push(get_data_message(buf)?);
    }
    Ok(out)
}

/// Encodes a [`GossipMessage`] into a datagram payload.
pub fn encode(msg: &GossipMessage) -> Bytes {
    let mut out = BytesMut::with_capacity(128);
    encode_into(msg, &mut out);
    out.freeze()
}

/// Encodes a [`GossipMessage`] into a caller-owned buffer.
///
/// The buffer is cleared first, so its allocation is reused across calls —
/// a sender fanning one message out to many recipients (or many messages in
/// one poll iteration) pays for the datagram bytes once instead of a fresh
/// allocation per `encode`. Output is byte-identical to [`encode`].
pub fn encode_into(msg: &GossipMessage, out: &mut BytesMut) {
    out.clear();
    match msg {
        GossipMessage::PullRequest {
            from,
            digest,
            reply_port,
            nonce,
        } => {
            out.put_u8(TAG_PULL_REQUEST);
            out.put_u64(from.as_u64());
            out.put_u64(*nonce);
            put_port(out, reply_port);
            put_digest(out, digest);
        }
        GossipMessage::PullReply { from, messages } => {
            out.put_u8(TAG_PULL_REPLY);
            out.put_u64(from.as_u64());
            put_messages(out, messages);
        }
        GossipMessage::PushOffer {
            from,
            reply_port,
            nonce,
        } => {
            out.put_u8(TAG_PUSH_OFFER);
            out.put_u64(from.as_u64());
            out.put_u64(*nonce);
            put_port(out, reply_port);
        }
        GossipMessage::PushReply {
            from,
            digest,
            data_port,
            nonce,
        } => {
            out.put_u8(TAG_PUSH_REPLY);
            out.put_u64(from.as_u64());
            out.put_u64(*nonce);
            put_port(out, data_port);
            put_digest(out, digest);
        }
        GossipMessage::PushData { from, messages } => {
            out.put_u8(TAG_PUSH_DATA);
            out.put_u64(from.as_u64());
            put_messages(out, messages);
        }
    }
}

/// Classifies a datagram from its leading tag byte without decoding it.
///
/// Returns `None` for empty datagrams, unknown tags, and oversized inputs —
/// exactly the inputs [`decode`] would reject on its first checks. A shard
/// event loop triaging a flood can use this to attribute hostile traffic by
/// kind before paying for a full decode; a `Some` result promises nothing
/// about the rest of the datagram.
pub fn peek_kind(bytes: &[u8]) -> Option<drum_core::message::MessageKind> {
    use drum_core::message::MessageKind;
    if bytes.len() > MAX_WIRE_LEN {
        return None;
    }
    match *bytes.first()? {
        TAG_PULL_REQUEST => Some(MessageKind::PullRequest),
        TAG_PULL_REPLY => Some(MessageKind::PullReply),
        TAG_PUSH_OFFER => Some(MessageKind::PushOffer),
        TAG_PUSH_REPLY => Some(MessageKind::PushReply),
        TAG_PUSH_DATA => Some(MessageKind::PushData),
        _ => None,
    }
}

/// Decodes a datagram payload into a [`GossipMessage`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for any malformed input; decoding never
/// panics regardless of the bytes received.
pub fn decode(bytes: &[u8]) -> Result<GossipMessage, DecodeError> {
    if bytes.len() > MAX_WIRE_LEN {
        return Err(DecodeError::TooLarge);
    }
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 9)?;
    let tag = buf.get_u8();
    let from = ProcessId(buf.get_u64());
    let msg = match tag {
        TAG_PULL_REQUEST => {
            need(&buf, 8)?;
            let nonce = buf.get_u64();
            let reply_port = get_port(&mut buf)?;
            let digest = get_digest(&mut buf)?;
            GossipMessage::PullRequest {
                from,
                digest,
                reply_port,
                nonce,
            }
        }
        TAG_PULL_REPLY => GossipMessage::PullReply {
            from,
            messages: get_messages(&mut buf)?,
        },
        TAG_PUSH_OFFER => {
            need(&buf, 8)?;
            let nonce = buf.get_u64();
            let reply_port = get_port(&mut buf)?;
            GossipMessage::PushOffer {
                from,
                reply_port,
                nonce,
            }
        }
        TAG_PUSH_REPLY => {
            need(&buf, 8)?;
            let nonce = buf.get_u64();
            let data_port = get_port(&mut buf)?;
            let digest = get_digest(&mut buf)?;
            GossipMessage::PushReply {
                from,
                digest,
                data_port,
                nonce,
            }
        }
        TAG_PUSH_DATA => GossipMessage::PushData {
            from,
            messages: get_messages(&mut buf)?,
        },
        _ => return Err(DecodeError::BadTag),
    };
    if buf.has_remaining() {
        // Trailing garbage: reject, a legitimate sender never produces it.
        return Err(DecodeError::BadTag);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drum_crypto::keys::SecretKey;

    fn sample_digest() -> Digest {
        let mut d = Digest::new();
        for (s, q) in [(1u64, 0u64), (1, 1), (1, 5), (9, 3)] {
            d.insert(MessageId::new(ProcessId(s), q));
        }
        d
    }

    fn sample_data(seq: u64) -> DataMessage {
        DataMessage {
            id: MessageId::new(ProcessId(3), seq),
            hops: 4,
            payload: Bytes::from(vec![7u8; 50]),
            auth: AuthTag([9u8; 32]),
        }
    }

    fn sealed_port() -> PortRef {
        let key = SecretKey::from_bytes([2u8; 32]);
        PortRef::Sealed(drum_crypto::seal::seal_port(&key, 77, 50123).unwrap())
    }

    fn round_trip(msg: GossipMessage) {
        let encoded = encode(&msg);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(msg, decoded);
    }

    #[test]
    fn pull_request_round_trip() {
        round_trip(GossipMessage::PullRequest {
            from: ProcessId(5),
            digest: sample_digest(),
            reply_port: sealed_port(),
            nonce: 42,
        });
    }

    #[test]
    fn pull_request_with_plain_and_none_ports() {
        for port in [PortRef::None, PortRef::Plain(8080)] {
            round_trip(GossipMessage::PullRequest {
                from: ProcessId(5),
                digest: Digest::new(),
                reply_port: port,
                nonce: 0,
            });
        }
    }

    #[test]
    fn pull_reply_round_trip() {
        round_trip(GossipMessage::PullReply {
            from: ProcessId(1),
            messages: vec![sample_data(0), sample_data(1)],
        });
    }

    #[test]
    fn push_offer_round_trip() {
        round_trip(GossipMessage::PushOffer {
            from: ProcessId(2),
            reply_port: sealed_port(),
            nonce: 9,
        });
    }

    #[test]
    fn push_reply_round_trip() {
        round_trip(GossipMessage::PushReply {
            from: ProcessId(2),
            digest: sample_digest(),
            data_port: sealed_port(),
            nonce: 11,
        });
    }

    #[test]
    fn push_data_round_trip() {
        round_trip(GossipMessage::PushData {
            from: ProcessId(2),
            messages: vec![sample_data(7)],
        });
    }

    #[test]
    fn empty_messages_round_trip() {
        round_trip(GossipMessage::PullReply {
            from: ProcessId(1),
            messages: vec![],
        });
    }

    #[test]
    fn truncated_inputs_rejected() {
        let encoded = encode(&GossipMessage::PullRequest {
            from: ProcessId(5),
            digest: sample_digest(),
            reply_port: sealed_port(),
            nonce: 42,
        });
        for len in 0..encoded.len() {
            assert!(
                decode(&encoded[..len]).is_err(),
                "prefix of len {len} accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&GossipMessage::PushOffer {
            from: ProcessId(2),
            reply_port: PortRef::None,
            nonce: 0,
        })
        .to_vec();
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::BadTag));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut bytes = encode(&GossipMessage::PushOffer {
            from: ProcessId(2),
            reply_port: PortRef::None,
            nonce: 0,
        })
        .to_vec();
        bytes[0] = 200;
        assert_eq!(decode(&bytes), Err(DecodeError::BadTag));
    }

    #[test]
    fn oversized_counts_rejected() {
        // Hand-craft a pull-reply claiming 2^31 messages.
        let mut out = BytesMut::new();
        out.put_u8(TAG_PULL_REPLY);
        out.put_u64(1);
        out.put_u32(u32::MAX);
        assert_eq!(decode(&out.freeze()), Err(DecodeError::TooLarge));
    }

    #[test]
    fn oversized_datagram_rejected() {
        let huge = vec![0u8; MAX_WIRE_LEN + 1];
        assert_eq!(decode(&huge), Err(DecodeError::TooLarge));
    }

    #[test]
    fn non_canonical_digest_rejected() {
        // Overlapping intervals are invalid on the wire.
        let mut out = BytesMut::new();
        out.put_u8(TAG_PULL_REQUEST);
        out.put_u64(1); // from
        out.put_u64(0); // nonce
        out.put_u8(PORT_NONE);
        out.put_u32(1); // one source
        out.put_u64(7); // source id
        out.put_u32(2); // two intervals
        out.put_u64(0);
        out.put_u64(5);
        out.put_u64(3); // overlaps
        out.put_u64(9);
        assert_eq!(decode(&out.freeze()), Err(DecodeError::BadDigest));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
    }

    #[test]
    fn peek_kind_matches_full_decode() {
        use drum_core::message::MessageKind;
        let messages = [
            GossipMessage::PullRequest {
                from: ProcessId(5),
                digest: sample_digest(),
                reply_port: sealed_port(),
                nonce: 42,
            },
            GossipMessage::PullReply {
                from: ProcessId(1),
                messages: vec![sample_data(0)],
            },
            GossipMessage::PushOffer {
                from: ProcessId(2),
                reply_port: PortRef::None,
                nonce: 9,
            },
            GossipMessage::PushReply {
                from: ProcessId(2),
                digest: sample_digest(),
                data_port: sealed_port(),
                nonce: 11,
            },
            GossipMessage::PushData {
                from: ProcessId(2),
                messages: vec![sample_data(7)],
            },
        ];
        for msg in &messages {
            let bytes = encode(msg);
            assert_eq!(peek_kind(&bytes), Some(msg.kind()));
            // The peek only needs the first byte.
            assert_eq!(peek_kind(&bytes[..1]), Some(msg.kind()));
        }
        assert_eq!(peek_kind(&[]), None);
        assert_eq!(peek_kind(&[0]), None);
        assert_eq!(peek_kind(&[200]), None);
        assert_eq!(peek_kind(&vec![1u8; MAX_WIRE_LEN + 1]), None);
        // Tag byte alone decides — garbage after a valid tag still peeks.
        assert_eq!(
            peek_kind(&[TAG_PUSH_DATA, 0xFF, 0xFF]),
            Some(MessageKind::PushData)
        );
    }
}
