//! Figure 5: CDF — average fraction of correct processes that received
//!
//! Thin wrapper over [`drum_bench::figures::fig05`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig05(&mut out).expect("write fig05 to stdout");
}
