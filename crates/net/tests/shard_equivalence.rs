//! Per-thread vs. sharded runtime decision equivalence.
//!
//! Both runtimes drive the same [`NodeCore`] state machine; the only
//! difference is *who* calls its methods — a dedicated thread draining
//! every channel each poll iteration (`drain_all`), or a shard event loop
//! dispatching epoll tokens channel by channel (`drain_class`). These
//! tests drive two same-seed cores through both call patterns on identical
//! hostile input — valid messages past the budget, wrong-purpose traffic,
//! garbage, truncations — and require bit-identical decision counters.
//! A divergence here would mean the multiplexed runtime changes protocol
//! behavior, not just scheduling.

use std::net::UdpSocket;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use drum_core::bytes::Bytes;
use drum_core::config::GossipConfig;
use drum_core::digest::Digest;
use drum_core::ids::ProcessId;
use drum_core::message::{GossipMessage, PortRef};
use drum_crypto::keys::KeyStore;
use drum_net::codec;
use drum_net::transport::{bind_ephemeral, AddressBook, WellKnownSockets};
use drum_net::{
    BatchRx, BatchTx, ChannelClass, Delivery, NetConfig, NetStats, NodeCore, ProcessSpec,
};

const SLOT_LEN: usize = codec::MAX_WIRE_LEN + 1;

fn pull_request(nonce: u64, reply_port: u16) -> Vec<u8> {
    codec::encode(&GossipMessage::PullRequest {
        from: ProcessId(1),
        digest: Digest::new(),
        reply_port: PortRef::Plain(reply_port),
        nonce,
    })
    .to_vec()
}

fn push_offer(nonce: u64, reply_port: u16) -> Vec<u8> {
    codec::encode(&GossipMessage::PushOffer {
        from: ProcessId(1),
        reply_port: PortRef::Plain(reply_port),
        nonce,
    })
    .to_vec()
}

/// The hostile mix from `batch_equivalence`, aimed at one channel: valid
/// messages beyond any budget, a wrong-purpose message, garbage, a
/// truncation and an empty datagram.
fn hostile_mix(valid: impl Fn(u64) -> Vec<u8>, wrong: Vec<u8>) -> Vec<Vec<u8>> {
    let mut seq: Vec<Vec<u8>> = (0..10).map(&valid).collect();
    seq.push(wrong);
    seq.push(vec![0xFF; 40]);
    let mut truncated = valid(77);
    truncated.truncate(truncated.len() / 2);
    seq.push(truncated);
    seq.push(Vec::new());
    seq.push(valid(11));
    seq
}

/// One node-under-test plus a silent peer, with everything the manual
/// drivers need. The peer's sockets are bound (so sends succeed) but
/// never read — the node's decisions depend only on what we inject.
struct Rig {
    core: NodeCore,
    pull_addr: std::net::SocketAddr,
    push_addr: std::net::SocketAddr,
    _peer: WellKnownSockets,
    send_socket: UdpSocket,
    rx: BatchRx,
    tx: BatchTx,
    scratch: Vec<u8>,
    injector: UdpSocket,
    // Kept alive so the core never observes a channel disconnect.
    _publish_tx: Sender<Bytes>,
    _delivered_rx: Receiver<Delivery>,
}

fn rig(seed: u64) -> Rig {
    let key_store = KeyStore::new(seed);
    let members: Vec<ProcessId> = vec![ProcessId(0), ProcessId(1)];
    let (sockets, addrs) = WellKnownSockets::bind().unwrap();
    let (peer, peer_addrs) = WellKnownSockets::bind().unwrap();
    let book = AddressBook::new(vec![(ProcessId(0), addrs), (ProcessId(1), peer_addrs)]);
    let my_key = key_store.register(0);
    let spec = ProcessSpec {
        me: ProcessId(0),
        members,
        book,
        key_store,
        my_key,
        sockets,
        ablation: None,
        config: NetConfig::new(GossipConfig::drum()),
        seed,
    };
    let (publish_tx, publish_rx) = channel();
    let (delivered_tx, delivered_rx) = channel();
    Rig {
        core: NodeCore::new(spec, publish_rx, delivered_tx),
        pull_addr: addrs.pull,
        push_addr: addrs.push,
        _peer: peer,
        send_socket: bind_ephemeral().unwrap(),
        rx: BatchRx::new(SLOT_LEN),
        tx: BatchTx::new(),
        scratch: vec![0u8; SLOT_LEN],
        injector: bind_ephemeral().unwrap(),
        _publish_tx: publish_tx,
        _delivered_rx: delivered_rx,
    }
}

impl Rig {
    fn inject(&self, to: std::net::SocketAddr, datagrams: &[Vec<u8>]) {
        for d in datagrams {
            // Loopback can momentarily refuse (ENOBUFS) under bursts.
            while self.injector.send_to(d, to).is_err() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Total decisions recorded so far (every injected datagram lands in
    /// exactly one of these buckets).
    fn decisions(&self) -> u64 {
        let s = self.core.stats();
        s.received + s.port_mismatches + s.decode_errors
    }

    fn wait_for_decisions<F: FnMut(&mut Rig)>(&mut self, target: u64, mut drain: F) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.decisions() < target && Instant::now() < deadline {
            drain(self);
            if self.decisions() < target {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(
            self.decisions(),
            target,
            "injected datagrams never all surfaced"
        );
    }
}

/// Scheduling-independent fields only: syscall accounting legitimately
/// differs between one-batcher-per-node and shared-batcher dispatch.
fn decision_stats(mut s: NetStats) -> NetStats {
    s.syscalls_recv = 0;
    s.syscalls_send = 0;
    s.batch_recv_datagrams = 0;
    s
}

#[test]
fn per_thread_and_sharded_call_patterns_make_identical_decisions() {
    const ROUNDS: u64 = 4;
    const SEED: u64 = 1234;
    // The node replies to valid requests at this dead (but real) port; a
    // bound socket absorbs them without ICMP noise.
    let dead = bind_ephemeral().unwrap();
    let dead_port = dead.local_addr().unwrap().port();

    let pulls = hostile_mix(|n| pull_request(n, dead_port), push_offer(99, dead_port));
    let pushes = hostile_mix(|n| push_offer(n, dead_port), pull_request(99, dead_port));
    let per_round = (pulls.len() + pushes.len()) as u64;

    // Mode A: the per-thread runtime's order — start, drain every channel
    // each poll iteration, finish.
    let mut a = rig(SEED);
    for r in 0..ROUNDS {
        let Rig {
            core,
            send_socket,
            tx,
            ..
        } = &mut a;
        core.start_round(send_socket, tx);
        a.inject(a.pull_addr, &pulls);
        a.inject(a.push_addr, &pushes);
        a.wait_for_decisions((r + 1) * per_round, |rig| {
            let Rig {
                core,
                rx,
                scratch,
                send_socket,
                tx,
                ..
            } = rig;
            core.drain_all(rx, scratch, send_socket, tx);
        });
        a.core.finish_round();
    }

    // Mode B: the shard event loop's order — start, dispatch channel by
    // channel in token drain order, finish.
    let mut b = rig(SEED);
    for r in 0..ROUNDS {
        let Rig {
            core,
            send_socket,
            tx,
            ..
        } = &mut b;
        core.start_round(send_socket, tx);
        b.inject(b.pull_addr, &pulls);
        b.inject(b.push_addr, &pushes);
        b.wait_for_decisions((r + 1) * per_round, |rig| {
            let Rig {
                core,
                rx,
                scratch,
                send_socket,
                tx,
                ..
            } = rig;
            for class in ChannelClass::ALL {
                core.drain_class(class, rx, scratch, send_socket, tx);
            }
        });
        b.core.finish_round();
    }

    let stats_a = decision_stats(a.core.finalize(None));
    let stats_b = decision_stats(b.core.finalize(None));
    assert_eq!(
        stats_a, stats_b,
        "per-thread and sharded dispatch diverged on identical input"
    );
    // The hostile mix actually exercised every decision path.
    assert_eq!(stats_a.rounds, ROUNDS);
    assert_eq!(stats_a.received, ROUNDS * 22); // 11 valid per channel
    assert_eq!(stats_a.port_mismatches, ROUNDS * 2);
    assert_eq!(stats_a.decode_errors, ROUNDS * 6);
    assert!(
        stats_a.budget_drops > 0,
        "budget never engaged: {stats_a:?}"
    );
    assert!(stats_a.sent > 0);
}

#[test]
fn same_seed_cores_draw_identical_jitter_streams() {
    // The per-engine RNG stream must be a function of the seed alone, not
    // of which runtime drives the core — shard-mode determinism (and the
    // equivalence test above) rests on this.
    let gaps = |seed: u64| -> Vec<Duration> {
        let mut r = rig(seed);
        let t0 = Instant::now();
        let mut prev = t0;
        (0..32)
            .map(|_| {
                let next = r.core.next_deadline(prev, t0);
                let gap = next - prev;
                prev = next;
                gap
            })
            .collect()
    };
    let x = gaps(42);
    let y = gaps(42);
    let z = gaps(43);
    assert_eq!(x, y, "same seed must reproduce the jitter stream");
    assert_ne!(x, z, "different seeds must not share a jitter stream");
    // Jitter bounds: every gap within round × [1 − j, 1 + j].
    let round = Duration::from_millis(100);
    for gap in &x {
        assert!(
            *gap >= round.mul_f64(0.8) && *gap <= round.mul_f64(1.2),
            "gap {gap:?} outside jitter bounds"
        );
    }
}
