//! Figure 11: CDF of per-receiver average latency (real UDP measurements)
//!
//! Thin wrapper over [`drum_bench::figures::fig11`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig11(&mut out).expect("write fig11 to stdout");
}
