//! The per-process threaded runtime: unsynchronized local rounds over real
//! UDP sockets.
//!
//! Mirrors the paper's Java implementation (§8): each process runs its own
//! round loop whose duration is randomly jittered, performs the full
//! push-offer/push-reply/push-data handshake plus pull exchanges through
//! the [`drum_core::engine::Engine`], drains its sockets continuously, and
//! discards whatever the per-round budgets reject. "The operations that
//! occur in a round are not synchronized" — process A may send before
//! receiving, B the other way around; only the local round boundaries
//! matter.

use std::io;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver, Sender};

use drum_core::bytes::{Bytes, BytesMut};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use drum_core::config::GossipConfig;
use drum_core::engine::{Engine, Outbound, PortPurpose, SendPort};
use drum_core::ids::ProcessId;
use drum_core::message::{DataMessage, GossipMessage, MessageKind};
use drum_core::view::Membership;
use drum_crypto::keys::{KeyStore, SecretKey};
use drum_trace::{names, trace_event, Tracer};

use crate::codec;
use crate::sys;
use crate::transport::{
    bind_ephemeral, AblationSockets, AddressBook, BatchRx, BatchTx, SocketPool, WellKnownSockets,
};

/// Configuration of the networked runtime.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Protocol configuration (variant, fan-out, bounds, ports).
    pub gossip: GossipConfig,
    /// Nominal round duration (1 s in the paper; tests use tens of ms).
    pub round: Duration,
    /// Uniform jitter applied per round: duration ∈ `round × [1−j, 1+j]`.
    /// Round-length randomness is itself a defense: "the attacker cannot
    /// aim its messages for the beginning of a round" (§4).
    pub jitter: f64,
    /// Socket polling interval inside a round. Only the per-datagram
    /// fallback path sleep-polls at this interval; the batched path blocks
    /// in `epoll_wait` until a socket is readable (see DESIGN.md §14).
    pub poll: Duration,
    /// Probability of dropping each outbound datagram (emulated link loss;
    /// 0.0 by default — loopback is lossless, the paper's LAN loses ~1%).
    pub loss: f64,
    /// Observability: cloned into every process (and the attacker, when a
    /// cluster is started through `experiment`). Net events carry
    /// wall-clock timestamps; the registry counters aggregate across all
    /// processes sharing the tracer. Disabled by default.
    pub tracer: Tracer,
}

impl NetConfig {
    /// Paper-like defaults scaled for local experiments: 100 ms rounds,
    /// ±20% jitter, 1 ms polling.
    pub fn new(gossip: GossipConfig) -> Self {
        NetConfig {
            gossip,
            round: Duration::from_millis(100),
            jitter: 0.2,
            poll: Duration::from_millis(1),
            loss: 0.0,
            tracer: Tracer::disabled(),
        }
    }

    /// Returns a copy with the given tracer attached.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Returns a copy with emulated outbound link loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1)`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1): {loss}");
        self.loss = loss;
        self
    }

    /// Returns a copy with a different round duration.
    pub fn with_round(mut self, round: Duration) -> Self {
        self.round = round;
        self
    }
}

/// A data message delivered to the application, with its arrival time.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The delivered message.
    pub message: DataMessage,
    /// Local arrival instant.
    pub at: Instant,
}

/// Counters reported by a process when it stops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Local rounds executed.
    pub rounds: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// Datagrams whose kind did not match the port they arrived on.
    pub port_mismatches: u64,
    /// Messages dropped by the per-round budgets (sum over rounds).
    pub budget_drops: u64,
    /// Data messages dropped due to failed source authentication.
    pub auth_drops: u64,
    /// New data messages delivered to the application.
    pub delivered: u64,
    /// Datagrams successfully sent.
    pub sent: u64,
    /// Datagrams that decoded successfully (staged or immediate).
    pub received: u64,
    /// Receive syscalls made (`recvmmsg` on the batched path, `recv_from`
    /// on the fallback — the amortization the batching buys is visible as
    /// this staying far below the datagram count under flood).
    pub syscalls_recv: u64,
    /// Send syscalls made (`sendmmsg` or `send_to`).
    pub syscalls_send: u64,
    /// Datagrams moved by batched (`recvmmsg`) receive calls; zero on the
    /// fallback path.
    pub batch_recv_datagrams: u64,
}

/// Handle to a running process.
#[derive(Debug)]
pub struct ProcessHandle {
    id: ProcessId,
    publish_tx: Sender<Bytes>,
    delivered_rx: Receiver<Delivery>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<NetStats>>,
}

impl ProcessHandle {
    /// The process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Queues a payload for multicast origination at this process's next
    /// round loop iteration.
    pub fn publish(&self, payload: Bytes) {
        // The runtime thread only exits after `stop`, so a send failure
        // just means the process is already shutting down.
        let _ = self.publish_tx.send(payload);
    }

    /// Receiver of delivered messages.
    pub fn delivered(&self) -> &Receiver<Delivery> {
        &self.delivered_rx
    }

    /// Drains everything currently delivered.
    pub fn take_delivered(&self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Ok(d) = self.delivered_rx.try_recv() {
            out.push(d);
        }
        out
    }

    /// Signals the process to stop and waits for it; returns final stats.
    pub fn shutdown(mut self) -> NetStats {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .take()
            .expect("shutdown called once")
            .join()
            .unwrap_or_default()
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Everything needed to launch one process.
pub struct ProcessSpec {
    /// This process's id.
    pub me: ProcessId,
    /// Full member list (self included or not — normalized internally).
    pub members: Vec<ProcessId>,
    /// Cluster address book.
    pub book: AddressBook,
    /// Shared PKI.
    pub key_store: KeyStore,
    /// This process's secret key.
    pub my_key: SecretKey,
    /// Pre-bound well-known sockets (so the book could be built first).
    pub sockets: WellKnownSockets,
    /// Pre-bound fixed reply sockets for the no-random-ports ablation;
    /// must be `Some` exactly when `config.gossip.random_ports == false`.
    pub ablation: Option<AblationSockets>,
    /// Runtime configuration.
    pub config: NetConfig,
    /// RNG seed.
    pub seed: u64,
}

/// Spawns a process thread running the gossip round loop.
///
/// # Errors
///
/// Returns an [`io::Error`] if the outbound send socket cannot be bound.
pub fn spawn_process(spec: ProcessSpec) -> io::Result<ProcessHandle> {
    let send_socket = bind_ephemeral()?;
    let (publish_tx, publish_rx) = channel::<Bytes>();
    let (delivered_tx, delivered_rx) = channel::<Delivery>();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let id = spec.me;

    let join = std::thread::Builder::new()
        .name(format!("drum-{}", spec.me))
        .spawn(move || run_process(spec, send_socket, publish_rx, delivered_tx, stop_flag))
        .expect("failed to spawn process thread");

    Ok(ProcessHandle {
        id,
        publish_tx,
        delivered_rx,
        stop,
        join: Some(join),
    })
}

/// Bound on each staged-arrival reservoir (per channel, per round).
const STAGE_CAP: usize = 1024;

/// Upper bound on a single `epoll_wait` inside the round loop. Bounds the
/// latency of noticing a stop request (and of the round-boundary check)
/// without reintroducing the 1 kHz sleep-poll spin: a quiet round makes at
/// most ~40 wakeups per second.
const EPOLL_WAIT_CAP_MS: u128 = 25;

/// Stages one arrival into its bounded per-channel reservoir. Reservoir
/// replacement keeps the retained subset a uniform sample over every
/// arrival of the round, so acceptance is independent of arrival timing.
fn stage_arrival(
    slot: usize,
    msg: GossipMessage,
    staged: &mut [Vec<GossipMessage>; 5],
    staged_seen: &mut [u64; 5],
    rng: &mut SmallRng,
) {
    staged_seen[slot] += 1;
    let q = &mut staged[slot];
    if q.len() < STAGE_CAP {
        q.push(msg);
    } else {
        let i = rng.random_range(0..staged_seen[slot]);
        if (i as usize) < STAGE_CAP {
            q[i as usize] = msg;
        }
    }
}

/// Drains one attackable socket until it would block, staging arrivals of
/// the designated kind and counting mismatches/garbage. Shared by the
/// well-known ports and the fixed reply ports of the ablation mode.
///
/// Datagrams move through `rx` — one `recvmmsg` per batch, or one
/// `recv_from` per datagram on the fallback path. Both orders match the
/// kernel queue, so the staging decisions (and therefore the reservoir RNG
/// draws) are identical in either mode.
#[allow(clippy::too_many_arguments)]
fn drain_attackable(
    socket: &UdpSocket,
    expected: MessageKind,
    slot: usize,
    rx: &mut BatchRx,
    scratch: &mut [u8],
    staged: &mut [Vec<GossipMessage>; 5],
    staged_seen: &mut [u64; 5],
    stats: &mut NetStats,
    rng: &mut SmallRng,
) {
    rx.drain_socket(socket, scratch, |bytes| match codec::decode(bytes) {
        Ok(msg) if msg.kind() == expected => {
            stats.received += 1;
            stage_arrival(slot, msg, staged, staged_seen, rng);
        }
        Ok(_) => stats.port_mismatches += 1,
        Err(_) => stats.decode_errors += 1,
    });
}

fn shuffle_in_place(v: &mut [GossipMessage], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i as u64) as usize;
        v.swap(i, j);
    }
}

fn jittered(round: Duration, jitter: f64, rng: &mut SmallRng) -> Duration {
    if jitter <= 0.0 {
        return round;
    }
    let factor = 1.0 + rng.random_range(-jitter..jitter);
    round.mul_f64(factor.max(0.05))
}

fn run_process(
    spec: ProcessSpec,
    send_socket: UdpSocket,
    publish_rx: Receiver<Bytes>,
    delivered_tx: Sender<Delivery>,
    stop: Arc<AtomicBool>,
) -> NetStats {
    let ProcessSpec {
        me,
        members,
        book,
        key_store,
        my_key,
        sockets,
        ablation,
        config,
        seed,
    } = spec;
    let membership = Membership::new(me, members);
    let mut engine = Engine::new(config.gossip.clone(), membership, key_store, my_key, seed);
    if let Some(ab) = &ablation {
        // Figure 12(a) ablation: fixed reply ports that the engine will
        // advertise instead of fresh random ones.
        let port = |s: &UdpSocket| s.local_addr().map(|a| a.port()).unwrap_or(0);
        engine.set_fixed_ports(
            port(&ab.pull_reply),
            port(&ab.push_reply),
            port(&ab.push_data),
        );
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ seed_of(me));
    let mut pool = SocketPool::new(config.gossip.port_lifetime_rounds.max(1));
    let tracer = config.tracer.clone();
    let reg = tracer.registry().clone();
    let c_sent = reg.counter(names::MESSAGES_SENT);
    let c_received = reg.counter(names::MESSAGES_RECEIVED);
    let c_bound = reg.counter(names::DROPPED_BY_BOUND);
    let c_pull_refused = reg.counter(names::PULL_REQUESTS_REFUSED);
    let c_decode = reg.counter(names::DECODE_ERRORS);
    let c_sys_recv = reg.counter(names::SYSCALLS_RECV);
    let c_sys_send = reg.counter(names::SYSCALLS_SEND);
    let c_batch_fill = reg.counter(names::BATCH_FILL);
    pool.set_rotation_counter(reg.counter(names::PORT_ROTATIONS));

    // Batched syscall I/O (DESIGN.md §14): one recvmmsg drains up to 64
    // datagrams, the encode-once fan-out flushes through one sendmmsg per
    // flush, and the round loop blocks in epoll instead of spinning a
    // sleep-poll. Every piece degrades independently to the per-datagram
    // fallback (non-Linux, `DRUM_NET_NO_BATCH=1`, or an epoll setup error)
    // with identical accept/drop behavior.
    let mut batch_rx = BatchRx::new(codec::MAX_WIRE_LEN + 1);
    let mut batch_tx = BatchTx::new();
    let epoll = if sys::enabled() {
        sys::Epoll::new().ok().map(Arc::new).filter(|ep| {
            // All-or-nothing registration: a partially registered set
            // would sleep through live sockets, so any failure reverts
            // the whole round loop to the sleep-poll fallback.
            let mut ok = ep.add(&sockets.pull).is_ok() && ep.add(&sockets.push).is_ok();
            if let Some(ab) = &ablation {
                ok &= ep.add(&ab.pull_reply).is_ok()
                    && ep.add(&ab.push_reply).is_ok()
                    && ep.add(&ab.push_data).is_ok();
            }
            ok
        })
    } else {
        None
    };
    if let Some(ep) = &epoll {
        pool.set_epoll(ep.clone());
    }
    trace_event!(
        tracer,
        "net",
        "proc.start",
        tracer.wall_now(),
        me = me.as_u64(),
        variant = config.gossip.variant.to_string(),
        random_ports = config.gossip.random_ports
    );
    let mut prev = NetStats::default();
    let mut stats = NetStats::default();
    let mut scratch = vec![0u8; codec::MAX_WIRE_LEN + 1];
    // Arrivals on attackable channels staged during round r are processed
    // right after round r+1's budget reset (see below).
    let mut staged: [Vec<GossipMessage>; 5] = Default::default();
    let mut staged_seen = [0u64; 5];

    let loss = config.loss;
    // Drains `outs`, encoding into the reusable `wire` scratch. The engine
    // fans the same `PushData`/`PushOffer`/`PullRequest` to several
    // recipients back-to-back, so the encoder runs only when the message
    // actually changes from the previously encoded one (encode-once
    // fan-out); the loss draw stays per-datagram either way. Datagrams
    // leave through `tx`: one sendmmsg per batch on the batched path
    // (repeats share the arena bytes), one send_to each on the fallback.
    let send_out = |outs: &mut Vec<Outbound>,
                    wire: &mut BytesMut,
                    tx: &mut BatchTx,
                    stats: &mut NetStats,
                    rng: &mut SmallRng| {
        let mut encoded: Option<usize> = None;
        for i in 0..outs.len() {
            if loss > 0.0 && rng.random_bool(loss) {
                continue; // emulated link loss
            }
            let addr = match outs[i].port {
                SendPort::WellKnownPull => match book.addrs_of(outs[i].to) {
                    Some(a) => a.pull,
                    None => continue,
                },
                SendPort::WellKnownPush => match book.addrs_of(outs[i].to) {
                    Some(a) => a.push,
                    None => continue,
                },
                SendPort::Port(0) => continue, // allocation failed upstream
                SendPort::Port(p) => AddressBook::loopback(p),
            };
            let repeat = matches!(encoded, Some(j) if outs[j].msg == outs[i].msg);
            if !repeat {
                codec::encode_into(&outs[i].msg, wire);
                encoded = Some(i);
            }
            tx.push(&send_socket, addr, &wire[..], repeat);
        }
        stats.sent += tx.finish(&send_socket);
        outs.clear();
    };
    // Outbound scratch reused across rounds and poll iterations: `send_out`
    // drains the vectors, so their capacity (and the wire buffer's) is
    // allocated once and amortized over the process lifetime.
    let mut wire = BytesMut::with_capacity(codec::MAX_WIRE_LEN);
    let mut round_outs: Vec<Outbound> = Vec::new();
    let mut staged_responses: Vec<Outbound> = Vec::new();
    let mut responses: Vec<Outbound> = Vec::new();
    let mut drained: Vec<(PortPurpose, GossipMessage)> = Vec::new();

    while !stop.load(Ordering::Relaxed) {
        let deadline = Instant::now() + jittered(config.round, config.jitter, &mut rng);

        // Accept application publishes at round boundaries.
        while let Ok(payload) = publish_rx.try_recv() {
            engine.publish(payload);
        }

        round_outs.extend(engine.begin_round(&mut pool));
        send_out(
            &mut round_outs,
            &mut wire,
            &mut batch_tx,
            &mut stats,
            &mut rng,
        );

        // Poll sockets until the round ends. Messages on *attackable*
        // channels (the well-known ports, plus the fixed reply ports in
        // ablation mode) are STAGED: collected all round long into bounded
        // reservoirs and only processed — as a uniformly random
        // budget-sized subset — at the end of the round. This realizes the
        // paper's model exactly: "p discards all unread messages from its
        // incoming message buffers" at round end, with the accepted subset
        // independent of arrival timing, and it keeps the OS queues
        // drained so accepted pull-requests are never stale.
        //
        // Messages on random (concealed) ports are processed immediately:
        // the adversary cannot contend there, and immediate processing
        // gives the model's same-round pull-replies.
        // Process the previous round's staged arrivals now, against the
        // fresh budgets: a uniformly random subset per channel is accepted
        // (the reservoirs + shuffle make acceptance independent of arrival
        // timing), and — crucially for the shared-bounds ablation — the
        // flood charges the budget *before* this round's mid-round replies
        // contend for it, exactly as a bounded FCFS reader would behave.
        for (q, seen) in staged.iter_mut().zip(staged_seen.iter_mut()) {
            *seen = 0;
            shuffle_in_place(q, &mut rng);
            for msg in q.drain(..) {
                engine.handle_into(msg, &mut pool, &mut staged_responses);
            }
        }
        send_out(
            &mut staged_responses,
            &mut wire,
            &mut batch_tx,
            &mut stats,
            &mut rng,
        );
        {
            let now = Instant::now();
            for msg in engine.take_delivered() {
                let _ = delivered_tx.send(Delivery {
                    message: msg,
                    at: now,
                });
            }
        }

        loop {
            // Well-known ports: stage their designated message kinds.
            for (socket, expected, slot) in [
                (&sockets.pull, MessageKind::PullRequest, 0usize),
                (&sockets.push, MessageKind::PushOffer, 1),
            ] {
                drain_attackable(
                    socket,
                    expected,
                    slot,
                    &mut batch_rx,
                    &mut scratch,
                    &mut staged,
                    &mut staged_seen,
                    &mut stats,
                    &mut rng,
                );
            }

            // Ablation mode: the fixed reply ports are attackable too, so
            // they get the same staged treatment (Figure 12(a)).
            if let Some(ab) = &ablation {
                for (socket, expected, slot) in [
                    (&ab.pull_reply, MessageKind::PullReply, 2usize),
                    (&ab.push_reply, MessageKind::PushReply, 3),
                    (&ab.push_data, MessageKind::PushData, 4),
                ] {
                    drain_attackable(
                        socket,
                        expected,
                        slot,
                        &mut batch_rx,
                        &mut scratch,
                        &mut staged,
                        &mut staged_seen,
                        &mut stats,
                        &mut rng,
                    );
                }
            }

            // Random ports: kind must match the port's allocated purpose;
            // processed immediately (unattackable).
            pool.drain(
                &mut batch_rx,
                &mut scratch,
                |purpose, bytes| match codec::decode(bytes) {
                    Ok(msg) => {
                        stats.received += 1;
                        drained.push((purpose, msg));
                    }
                    Err(_) => stats.decode_errors += 1,
                },
            );
            for (purpose, msg) in drained.drain(..) {
                let matches = matches!(
                    (purpose, msg.kind()),
                    (PortPurpose::PullReply, MessageKind::PullReply)
                        | (PortPurpose::PushReply, MessageKind::PushReply)
                        | (PortPurpose::PushData, MessageKind::PushData)
                );
                if matches {
                    engine.handle_into(msg, &mut pool, &mut responses);
                } else {
                    stats.port_mismatches += 1;
                }
            }

            send_out(
                &mut responses,
                &mut wire,
                &mut batch_tx,
                &mut stats,
                &mut rng,
            );

            let now = Instant::now();
            for msg in engine.take_delivered() {
                let _ = delivered_tx.send(Delivery {
                    message: msg,
                    at: now,
                });
            }

            let now = Instant::now();
            if now >= deadline || stop.load(Ordering::Relaxed) {
                break;
            }
            match &epoll {
                // Batched path: block until any live socket is readable or
                // the round deadline nears — quiet rounds make a handful
                // of wakeups instead of a 1 kHz sleep-poll spin, flooded
                // rounds wake once per kernel batch. The wait is capped so
                // a stop request is still honored promptly, and the final
                // sub-millisecond remainder busy-polls (epoll timeouts are
                // whole milliseconds).
                Some(ep) => {
                    let remaining = deadline.saturating_duration_since(now);
                    let wait_ms = remaining.as_millis().min(EPOLL_WAIT_CAP_MS) as i32;
                    if wait_ms >= 1 {
                        let _ = ep.wait(wait_ms);
                    }
                }
                // Fallback: the seed's fixed-interval sleep-poll.
                None => std::thread::sleep(config.poll),
            }
        }

        let round_stats = engine.end_round();
        stats.rounds += 1;
        stats.syscalls_recv = batch_rx.syscalls();
        stats.syscalls_send = batch_tx.syscalls();
        stats.batch_recv_datagrams = batch_rx.batched_datagrams();
        let round_drops = round_stats.dropped_budget.iter().sum::<u64>();
        stats.budget_drops += round_drops;
        stats.auth_drops += round_stats.dropped_auth;
        stats.delivered += round_stats.delivered;
        pool.expire(engine.round());

        // Per-round observability: registry counters take the deltas (so
        // cluster-wide totals aggregate across processes), and one event
        // summarizes the round. Both are no-ops with a disabled tracer
        // beyond a handful of relaxed atomic adds.
        c_sent.add(stats.sent - prev.sent);
        c_received.add(stats.received - prev.received);
        c_bound.add(round_drops);
        c_pull_refused.add(round_stats.dropped_of(MessageKind::PullRequest));
        c_decode.add(stats.decode_errors - prev.decode_errors);
        c_sys_recv.add(stats.syscalls_recv - prev.syscalls_recv);
        c_sys_send.add(stats.syscalls_send - prev.syscalls_send);
        c_batch_fill.add(stats.batch_recv_datagrams - prev.batch_recv_datagrams);
        trace_event!(
            tracer,
            "net",
            "round",
            tracer.wall_now(),
            me = me.as_u64(),
            round = engine.round().as_u64(),
            sent = stats.sent - prev.sent,
            received = stats.received - prev.received,
            budget_drops = round_drops,
            decode_errors = stats.decode_errors - prev.decode_errors,
            port_mismatches = stats.port_mismatches - prev.port_mismatches,
            delivered = round_stats.delivered
        );
        prev = stats;
    }

    trace_event!(
        tracer,
        "net",
        "proc.stop",
        tracer.wall_now(),
        me = me.as_u64(),
        rounds = stats.rounds,
        sent = stats.sent,
        received = stats.received,
        budget_drops = stats.budget_drops,
        delivered = stats.delivered
    );
    stats
}

/// Mixes a process id into a seed so that a shared base seed still gives
/// every process its own RNG stream.
pub fn seed_of(me: ProcessId) -> u64 {
    me.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Draws a base seed from OS entropy, for deployments where the port and
/// peer randomization must be unpredictable to an outside observer rather
/// than reproducible. Experiments that need replayable runs should keep
/// passing a fixed [`ProcessSpec::seed`] instead.
pub fn os_random_seed() -> u64 {
    SmallRng::from_os_rng().next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::WellKnownSockets;

    fn cluster(n: u64, gossip: GossipConfig, round_ms: u64) -> Vec<ProcessHandle> {
        let key_store = KeyStore::new(99);
        let members: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let mut socks = Vec::new();
        let mut entries = Vec::new();
        for &m in &members {
            let (s, addrs) = WellKnownSockets::bind().unwrap();
            socks.push((m, s));
            entries.push((m, addrs));
        }
        let book = AddressBook::new(entries);
        socks
            .into_iter()
            .map(|(m, sockets)| {
                let my_key = key_store.register(m.as_u64());
                spawn_process(ProcessSpec {
                    me: m,
                    members: members.clone(),
                    book: book.clone(),
                    key_store: key_store.clone(),
                    my_key,
                    sockets,
                    ablation: None,
                    config: NetConfig::new(gossip.clone())
                        .with_round(Duration::from_millis(round_ms)),
                    seed: seed_of(m),
                })
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn drum_disseminates_over_udp() {
        let handles = cluster(6, GossipConfig::drum(), 40);
        handles[0].publish(Bytes::from_static(b"hello udp"));
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut received = [false; 6];
        received[0] = true;
        while Instant::now() < deadline && received.iter().any(|r| !r) {
            for (i, h) in handles.iter().enumerate() {
                for d in h.take_delivered() {
                    assert_eq!(d.message.payload, Bytes::from_static(b"hello udp"));
                    received[i] = true;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (i, r) in received.iter().enumerate() {
            assert!(*r, "process {i} never received the message");
        }
        for h in handles {
            let stats = h.shutdown();
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn push_only_disseminates_over_udp() {
        let handles = cluster(5, GossipConfig::push(), 40);
        handles[0].publish(Bytes::from_static(b"push"));
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = 0;
        while Instant::now() < deadline && got < 4 {
            got += handles[1..]
                .iter()
                .map(|h| h.take_delivered().len())
                .sum::<usize>();
            std::thread::sleep(Duration::from_millis(25));
        }
        // At least some processes must have it quickly; exact counts are
        // timing dependent.
        assert!(got > 0, "nobody received the pushed message");
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn with_loss_validates_range() {
        let cfg = NetConfig::new(GossipConfig::drum()).with_loss(0.25);
        assert_eq!(cfg.loss, 0.25);
        let result =
            std::panic::catch_unwind(|| NetConfig::new(GossipConfig::drum()).with_loss(1.0));
        assert!(result.is_err(), "loss = 1.0 must be rejected");
    }

    #[test]
    fn lossy_links_slow_but_do_not_stop_dissemination() {
        let key_store = KeyStore::new(5);
        let members: Vec<ProcessId> = (0..5).map(ProcessId).collect();
        let mut socks = Vec::new();
        let mut entries = Vec::new();
        for &m in &members {
            let (s, addrs) = WellKnownSockets::bind().unwrap();
            socks.push((m, s));
            entries.push((m, addrs));
        }
        let book = AddressBook::new(entries);
        let handles: Vec<ProcessHandle> = socks
            .into_iter()
            .map(|(m, sockets)| {
                let my_key = key_store.register(m.as_u64());
                spawn_process(ProcessSpec {
                    me: m,
                    members: members.clone(),
                    book: book.clone(),
                    key_store: key_store.clone(),
                    my_key,
                    sockets,
                    ablation: None,
                    config: NetConfig::new(GossipConfig::drum())
                        .with_round(Duration::from_millis(40))
                        .with_loss(0.2),
                    seed: seed_of(m),
                })
                .unwrap()
            })
            .collect();

        handles[0].publish(Bytes::from_static(b"lossy"));
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut reached = 0;
        let mut seen = [false; 5];
        seen[0] = true;
        while Instant::now() < deadline && reached < 5 {
            for (i, h) in handles.iter().enumerate() {
                if !h.take_delivered().is_empty() {
                    seen[i] = true;
                }
            }
            reached = seen.iter().filter(|s| **s).count();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(reached, 5, "20% loss must not stop dissemination");
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn tracer_counts_cluster_traffic() {
        use drum_trace::{names, MemorySink, Tracer};

        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());

        let key_store = KeyStore::new(7);
        let members: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let mut socks = Vec::new();
        let mut entries = Vec::new();
        for &m in &members {
            let (s, addrs) = WellKnownSockets::bind().unwrap();
            socks.push((m, s));
            entries.push((m, addrs));
        }
        let book = AddressBook::new(entries);
        let handles: Vec<ProcessHandle> = socks
            .into_iter()
            .map(|(m, sockets)| {
                let my_key = key_store.register(m.as_u64());
                spawn_process(ProcessSpec {
                    me: m,
                    members: members.clone(),
                    book: book.clone(),
                    key_store: key_store.clone(),
                    my_key,
                    sockets,
                    ablation: None,
                    config: NetConfig::new(GossipConfig::drum())
                        .with_round(Duration::from_millis(30))
                        .with_tracer(tracer.clone()),
                    seed: seed_of(m),
                })
                .unwrap()
            })
            .collect();

        handles[0].publish(Bytes::from_static(b"traced"));
        std::thread::sleep(Duration::from_millis(400));
        let stats: Vec<NetStats> = handles.into_iter().map(|h| h.shutdown()).collect();

        // Registry counters aggregate across all four processes and must
        // agree with the per-process stats the runtime reports.
        let reg = tracer.registry();
        let total_sent: u64 = stats.iter().map(|s| s.sent).sum();
        assert!(reg.counter(names::MESSAGES_SENT).get() <= total_sent);
        assert!(reg.counter(names::MESSAGES_SENT).get() > 0);
        assert!(reg.counter(names::MESSAGES_RECEIVED).get() > 0);
        assert!(reg.counter(names::PORT_ROTATIONS).get() > 0);

        let events = sink.take();
        assert_eq!(
            events.iter().filter(|e| e.name == "proc.start").count(),
            4,
            "one proc.start per process"
        );
        assert!(events
            .iter()
            .any(|e| e.target == "net" && e.name == "round"));
        assert_eq!(
            events.iter().filter(|e| e.name == "proc.stop").count(),
            4,
            "one proc.stop per process"
        );
    }

    #[test]
    fn garbage_datagrams_counted_not_fatal() {
        // Built by hand (not via `cluster`) so the address book is in scope
        // and garbage can be aimed at real well-known ports.
        let key_store = KeyStore::new(99);
        let members: Vec<ProcessId> = (0..2).map(ProcessId).collect();
        let mut socks = Vec::new();
        let mut entries = Vec::new();
        for &m in &members {
            let (s, addrs) = WellKnownSockets::bind().unwrap();
            socks.push((m, s));
            entries.push((m, addrs));
        }
        let book = AddressBook::new(entries);
        let p0 = book.addrs_of(ProcessId(0)).unwrap();
        let (p0_pull, p0_push) = (p0.pull, p0.push);
        let handles: Vec<ProcessHandle> = socks
            .into_iter()
            .map(|(m, sockets)| {
                let my_key = key_store.register(m.as_u64());
                spawn_process(ProcessSpec {
                    me: m,
                    members: members.clone(),
                    book: book.clone(),
                    key_store: key_store.clone(),
                    my_key,
                    sockets,
                    ablation: None,
                    config: NetConfig::new(GossipConfig::drum())
                        .with_round(Duration::from_millis(30)),
                    seed: seed_of(m),
                })
                .unwrap()
            })
            .collect();

        // Blast malformed datagrams at p0's well-known ports while a real
        // multicast is in flight: empty, truncated, bad-tag, and oversized
        // junk must all be counted as decode errors, never crash the
        // process or stop dissemination.
        let sender = bind_ephemeral().unwrap();
        handles[0].publish(Bytes::from_static(b"still works"));
        let garbage: [&[u8]; 4] = [b"", b"\xFF", b"\x01\x02\x03", &[0xAAu8; 512]];
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut p1_got = false;
        while Instant::now() < deadline && !p1_got {
            for junk in garbage {
                let _ = sender.send_to(junk, p0_pull);
                let _ = sender.send_to(junk, p0_push);
            }
            p1_got = !handles[1].take_delivered().is_empty();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(p1_got, "dissemination must survive the garbage flood");

        let mut handles = handles.into_iter();
        let s0 = handles.next().unwrap().shutdown();
        let s1 = handles.next().unwrap().shutdown();
        assert!(s0.rounds > 0 && s1.rounds > 0);
        assert!(
            s0.decode_errors > 0,
            "p0 must have counted the malformed datagrams: {s0:?}"
        );
    }
}
