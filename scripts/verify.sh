#!/usr/bin/env sh
# Hermetic verification: the workspace must build, test and stay formatted
# with no network access and no crates.io dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo build --offline --benches --features criterion"
cargo build --offline --benches --features criterion

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> verify: all green"
