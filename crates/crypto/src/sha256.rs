//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! The Drum paper assumes standard cryptographic primitives for source
//! authentication and for concealing the randomly chosen ports. No
//! third-party cryptography crates are available in this build environment,
//! so the primitive is implemented here and verified against the official
//! FIPS test vectors in the unit tests below.
//!
//! # Examples
//!
//! ```
//! use drum_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     drum_crypto::hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// Internal block size of SHA-256 in bytes (also the HMAC block size).
pub const BLOCK_LEN: usize = 64;

/// SHA-256 round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 prime numbers.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: the first 32 bits of the fractional parts of the
/// square roots of the first 8 prime numbers.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// Feed data with [`Sha256::update`] and obtain the digest with
/// [`Sha256::finalize`]. For one-shot hashing use [`Sha256::digest`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (used for the length padding).
    len: u64,
    /// Partially filled block.
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sha256")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the 32-byte digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        // Fill a partially filled block first.
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                compress(&mut self.state, &self.buf);
                self.buf_len = 0;
            }
        }
        // Compress full blocks directly from the input slice — no staging
        // copy through `buf`.
        let mut blocks = data.chunks_exact(BLOCK_LEN);
        for block in &mut blocks {
            compress(&mut self.state, block);
        }
        // Stash the tail.
        let tail = blocks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 terminator, zeros, then the bit length — one extra
        // block when fewer than 9 bytes remain in the current one.
        let mut block = [0u8; BLOCK_LEN];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x80;
        if self.buf_len + 1 > BLOCK_LEN - 8 {
            compress(&mut self.state, &block);
            block = [0u8; BLOCK_LEN];
        }
        block[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut self.state, &block);

        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// The SHA-256 compression function over one 64-byte block.
///
/// A free function over the state words (rather than a method) so callers
/// can compress blocks borrowed from other `Sha256` fields — or straight
/// from caller-owned input slices — without aliasing conflicts.
///
/// Dispatches to the x86-64 SHA-NI implementation when the CPU supports it
/// (the feature probe is cached by `std`), falling back to the portable
/// software rounds below. Both produce identical digests.
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), BLOCK_LEN);
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        shani::compress(state, block);
        return;
    }
    compress_soft(state, block);
}

/// Portable software implementation of the compression function.
fn compress_soft(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), BLOCK_LEN);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// SHA-256 compression via the x86-64 SHA new instructions.
///
/// The sole `unsafe` island in this crate (see the crate-level lint note):
/// the intrinsics themselves are `unsafe` only because they require the
/// `sha`/`ssse3`/`sse4.1` CPU features, which [`available`] probes at
/// runtime before any call. The round sequence follows Intel's published
/// SHA extensions reference flow; the FIPS 180-4 vectors in the test module
/// below cover it on hardware that has the extension.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod shani {
    use super::{BLOCK_LEN, K};
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi32,
        _mm_set_epi64x, _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32,
        _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_storeu_si128,
    };

    /// Whether this CPU can run [`compress`]. `std` caches the CPUID probe,
    /// so steady-state cost is one atomic load.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Compresses one 64-byte block into `state`.
    ///
    /// Panics in debug builds if called without [`available`]; in release the
    /// caller's feature check is the guarantee the intrinsics need.
    #[inline]
    pub fn compress(state: &mut [u32; 8], block: &[u8]) {
        debug_assert!(available());
        // SAFETY: the dispatcher only reaches this after `available()`
        // confirmed the sha/ssse3/sse4.1 features at runtime.
        unsafe { compress_block(state, block) }
    }

    /// Four consecutive round constants as one vector, lowest lane first.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn k4(i: usize) -> __m128i {
        _mm_set_epi32(
            K[i + 3] as i32,
            K[i + 2] as i32,
            K[i + 1] as i32,
            K[i] as i32,
        )
    }

    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn compress_block(state: &mut [u32; 8], block: &[u8]) {
        debug_assert_eq!(block.len(), BLOCK_LEN);
        // Byte shuffle turning the big-endian message words little-endian.
        let mask = _mm_set_epi64x(
            0x0c0d_0e0f_0809_0a0bu64 as i64,
            0x0405_0607_0001_0203u64 as i64,
        );

        // Load state and rearrange the (a..h) words into the ABEF/CDGH lane
        // order the sha256rnds2 instruction works in.
        let tmp = _mm_loadu_si128(state.as_ptr().cast());
        let mut state1 = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let tmp = _mm_shuffle_epi32(tmp, 0xb1); // CDAB
        state1 = _mm_shuffle_epi32(state1, 0x1b); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
        state1 = _mm_blend_epi16(state1, tmp, 0xf0); // CDGH

        let abef_save = state0;
        let cdgh_save = state1;

        // Each sha256rnds2 performs two rounds; a shuffled reissue of the
        // same wk vector covers the other two of each four-round group.
        macro_rules! rounds4 {
            ($wk:expr) => {{
                let wk = $wk;
                state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
                state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(wk, 0x0e));
            }};
        }

        // Rounds 0-15: message words straight from the block.
        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), mask);
        let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), mask);
        let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), mask);
        let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), mask);
        rounds4!(_mm_add_epi32(msg0, k4(0)));
        rounds4!(_mm_add_epi32(msg1, k4(4)));
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4!(_mm_add_epi32(msg2, k4(8)));
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4!(_mm_add_epi32(msg3, k4(12)));

        // Rounds 16-63: extend the schedule four words at a time. Each step
        // finishes w[i..i+4] from the three prior vectors, then runs the
        // four rounds that consume it.
        macro_rules! extend_rounds4 {
            ($cur:ident, $prev1:ident, $prev2:ident, $base:expr) => {{
                let tmp = _mm_alignr_epi8($prev1, $prev2, 4);
                $cur = _mm_sha256msg2_epu32(_mm_add_epi32($cur, tmp), $prev1);
                rounds4!(_mm_add_epi32($cur, k4($base)));
            }};
        }
        extend_rounds4!(msg0, msg3, msg2, 16);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        extend_rounds4!(msg1, msg0, msg3, 20);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        extend_rounds4!(msg2, msg1, msg0, 24);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        extend_rounds4!(msg3, msg2, msg1, 28);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        extend_rounds4!(msg0, msg3, msg2, 32);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        extend_rounds4!(msg1, msg0, msg3, 36);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        extend_rounds4!(msg2, msg1, msg0, 40);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        extend_rounds4!(msg3, msg2, msg1, 44);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        extend_rounds4!(msg0, msg3, msg2, 48);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        extend_rounds4!(msg1, msg0, msg3, 52);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        extend_rounds4!(msg2, msg1, msg0, 56);
        extend_rounds4!(msg3, msg2, msg1, 60);
        let _ = (msg0, msg1, msg2, msg3);

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);

        // Undo the ABEF/CDGH arrangement and store.
        let tmp = _mm_shuffle_epi32(state0, 0x1b); // FEBA
        state1 = _mm_shuffle_epi32(state1, 0xb1); // DCHG
        state0 = _mm_blend_epi16(tmp, state1, 0xf0); // DCBA
        state1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
        _mm_storeu_si128(state.as_mut_ptr().cast(), state0);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), state1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hex_digest(data: &[u8]) -> String {
        hex::encode(&Sha256::digest(data))
    }

    // Pins the portable fallback directly: on SHA-NI hardware the public API
    // never reaches `compress_soft`, so exercise it by hand with the padded
    // single-block message for "abc".
    #[test]
    fn soft_compress_matches_fips_abc() {
        let mut block = [0u8; BLOCK_LEN];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[BLOCK_LEN - 8..].copy_from_slice(&24u64.to_be_bytes());
        let mut state = H0;
        compress_soft(&mut state, &block);
        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        assert_eq!(
            hex::encode(&out),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    // The dispatcher and the portable rounds must agree bit-for-bit on
    // arbitrary blocks and chained states (trivially true without SHA-NI).
    #[test]
    fn soft_and_dispatched_compress_agree() {
        let mut block = [0u8; BLOCK_LEN];
        let mut fast = H0;
        let mut soft = H0;
        for round in 0u32..50 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = (i as u32).wrapping_mul(37).wrapping_add(round * 101) as u8;
            }
            compress(&mut fast, &block);
            compress_soft(&mut soft, &block);
            assert_eq!(fast, soft, "diverged at round {round}");
        }
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        assert_eq!(
            hex_digest(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            ),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn many_small_updates_match_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Sha256::new();
        for b in &data {
            h.update(core::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha256::digest(b"drum"), Sha256::digest(b"drun"));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Sha256::new()).is_empty());
    }
}
