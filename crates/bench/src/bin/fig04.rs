//! Figure 4: standard deviation of the propagation times of Figure 3.
//!
//! Thin wrapper over [`drum_bench::figures::fig04`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig04(&mut out).expect("write fig04 to stdout");
}
