//! Appendix B of the paper: `p̃` — the probability that message `M`
//! propagates beyond its (attacked) source in one round of **Pull**.
//!
//! In Pull, `M` leaves the source only when some valid pull-request survives
//! the flood of `x` fabricated requests on the source's pull port. The
//! number of rounds until that happens is geometric with parameter `p̃`,
//! which explains both Pull's long delays (Figure 5 discussion) and its
//! large standard deviation (Figure 4).

use crate::logmath::LogFactorial;

/// `p̃(n, F, x)`: probability that at least one valid pull-request is read
/// at the source in a round, when the source is attacked with `x ≥ F`
/// fabricated pull-requests.
///
/// `Y ~ Binomial(n-1, F/(n-1))` valid requests arrive; the source reads `F`
/// of the `Y + x` total, so the probability that *none* of the `Y` valid
/// ones is read is `x!(Y+x-F)! / ((x-F)!(Y+x)!)` (Appendix B).
///
/// # Panics
///
/// Panics if `n < 2`, `fan_out == 0`, or `x < fan_out` (the closed form
/// requires `x ≥ F`; for weaker attacks use `p_tilde_weak`).
pub fn p_tilde(n: usize, fan_out: usize, x: u64) -> f64 {
    assert!(n >= 2, "need at least two processes");
    assert!(fan_out >= 1, "fan-out must be positive");
    assert!(x >= fan_out as u64, "closed form requires x >= F");
    let f = fan_out;
    let x = x as usize;
    let lf = LogFactorial::up_to(n + x);
    let q = f as f64 / (n - 1) as f64;
    let mut acc = 0.0;
    for y in 0..n {
        let pr_y = lf.binom_pmf(n - 1, y, q);
        if pr_y == 0.0 {
            continue;
        }
        // ln [ x! (y+x-F)! / ((x-F)! (y+x)!) ]
        let ln_none = lf.ln_factorial(x) + lf.ln_factorial(y + x - f)
            - lf.ln_factorial(x - f)
            - lf.ln_factorial(y + x);
        let p_read = 1.0 - ln_none.exp();
        acc += p_read * pr_y;
    }
    acc
}

/// `p̃` for attacks weaker than `F` (including none): every valid request
/// is read whenever `Y + x ≤ F`; otherwise `F` of `Y + x` are read.
pub fn p_tilde_weak(n: usize, fan_out: usize, x: u64) -> f64 {
    assert!(n >= 2);
    assert!(fan_out >= 1);
    if x >= fan_out as u64 {
        return p_tilde(n, fan_out, x);
    }
    let f = fan_out;
    let x = x as usize;
    let lf = LogFactorial::up_to(n + x + f);
    let q = f as f64 / (n - 1) as f64;
    let mut acc = 0.0;
    for y in 0..n {
        let pr_y = lf.binom_pmf(n - 1, y, q);
        if pr_y == 0.0 || y == 0 {
            continue;
        }
        let p_read = if y + x <= f {
            1.0
        } else {
            // None of the y valid ones among the F read:
            // C(y+x-F .. ) hypergeometric tail = Π_{i=0}^{F-1} (y+x-F... )
            // Equivalent product form: Π_{i=0}^{F-1} (x' - i)/(y + x - i)
            // where x' = y + x - y = x... reuse the factorial identity with
            // "misses" = y+x-F of the non-valid pool:
            let ln_none = lf.ln_factorial(x) + lf.ln_factorial(y + x - f)
                - lf.ln_factorial(x.saturating_sub(f))
                - lf.ln_factorial(y + x);
            // For x < F the "all slots filled by fakes" event is impossible
            // (not enough fakes to occupy every slot), so some valid request
            // is always read.
            if x < f {
                1.0
            } else {
                1.0 - ln_none.exp()
            }
        };
        acc += p_read * pr_y;
    }
    acc
}

/// Expected number of rounds for `M` to leave the source in Pull:
/// `1/p̃` (geometric distribution).
pub fn expected_rounds_to_leave_source(n: usize, fan_out: usize, x: u64) -> f64 {
    1.0 / p_tilde(n, fan_out, x)
}

/// Standard deviation of the rounds to leave the source:
/// `sqrt(1 - p̃)/p̃`.
pub fn std_rounds_to_leave_source(n: usize, fan_out: usize, x: u64) -> f64 {
    let p = p_tilde(n, fan_out, x);
    (1.0 - p).sqrt() / p
}

/// Probability that `M` has *not* left the source within `k` rounds:
/// `(1-p̃)^k` — the paper computes 0.54 / 0.3 / 0.16 for k = 5/10/15 with
/// `n = 1000`, `F = 4`, `x = 128`.
pub fn prob_stuck_after(n: usize, fan_out: usize, x: u64, k: u32) -> f64 {
    (1.0 - p_tilde(n, fan_out, x)).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_tilde_in_unit_interval() {
        for &x in &[4u64, 16, 128, 512] {
            let p = p_tilde(1000, 4, x);
            assert!((0.0..=1.0).contains(&p), "x = {x}: {p}");
        }
    }

    #[test]
    fn p_tilde_decreases_with_x() {
        let mut prev = 1.0;
        for &x in &[4u64, 8, 16, 32, 64, 128, 256] {
            let p = p_tilde(1000, 4, x);
            assert!(p < prev, "not decreasing at x = {x}");
            prev = p;
        }
    }

    #[test]
    fn paper_values_for_stuck_probability() {
        // §7.2: with F = 4 and x = 128 the probability of M not being
        // propagated beyond the source in 5, 10, 15 rounds is 0.54, 0.3,
        // 0.16 respectively (n = 1000).
        let p5 = prob_stuck_after(1000, 4, 128, 5);
        let p10 = prob_stuck_after(1000, 4, 128, 10);
        let p15 = prob_stuck_after(1000, 4, 128, 15);
        assert!((p5 - 0.54).abs() < 0.03, "p5 = {p5}");
        assert!((p10 - 0.30).abs() < 0.03, "p10 = {p10}");
        assert!((p15 - 0.16).abs() < 0.03, "p15 = {p15}");
    }

    #[test]
    fn paper_value_for_std() {
        // §7.2: numerical calculation of p̃ with F = 4, x = 128 yields an
        // STD of 8.17 rounds.
        let std = std_rounds_to_leave_source(1000, 4, 128);
        assert!((std - 8.17).abs() < 0.25, "std = {std}");
    }

    #[test]
    fn expected_rounds_grows_with_x() {
        let e1 = expected_rounds_to_leave_source(1000, 4, 32);
        let e2 = expected_rounds_to_leave_source(1000, 4, 128);
        let e3 = expected_rounds_to_leave_source(1000, 4, 512);
        assert!(e1 < e2 && e2 < e3);
        // Corollary-2-style linear growth: quadrupling x roughly quadruples
        // the expected wait (within 2x slack).
        assert!(e3 / e2 > 2.0, "e3/e2 = {}", e3 / e2);
    }

    #[test]
    fn weak_attack_extends_smoothly() {
        // x = 0: some request is read whenever at least one arrives.
        let p0 = p_tilde_weak(1000, 4, 0);
        assert!(p0 > 0.9, "p0 = {p0}");
        // Continuity at x = F.
        let at_f = p_tilde_weak(1000, 4, 4);
        let closed = p_tilde(1000, 4, 4);
        assert!((at_f - closed).abs() < 1e-12);
        // Monotone across the weak range.
        let p2 = p_tilde_weak(1000, 4, 2);
        assert!(p2 <= p0 && p2 >= at_f);
    }

    #[test]
    #[should_panic(expected = "x >= F")]
    fn p_tilde_requires_strong_attack() {
        p_tilde(100, 4, 2);
    }
}
