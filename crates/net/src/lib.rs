//! Threaded UDP runtime for the Drum gossip protocol — the §8 measurement
//! substrate of the paper (Badishi, Keidar, Sasson, DSN 2004).
//!
//! Where the paper ran a Java implementation on 50 Emulab machines, this
//! crate runs one logical process per thread over real UDP sockets on the
//! loopback interface (see `DESIGN.md` for the substitution argument):
//!
//! * [`codec`] — hardened binary wire format;
//! * [`transport`] — well-known + random ephemeral sockets, address book;
//! * [`runtime`] — the unsynchronized per-process round loop driving a
//!   [`drum_core::engine::Engine`];
//! * [`shard`] — the multiplexed runtime: one event loop (shared epoll +
//!   timer wheel) drives many engines per OS thread, lifting single-process
//!   clusters to 1,000+ real-UDP nodes;
//! * [`attack`] — fabricated-traffic generators (the adversary);
//! * [`experiment`] — clusters, throughput/latency reports (Figures 10–11)
//!   and propagation-round measurements (Figure 9).
//!
//! # Examples
//!
//! A three-process Drum cluster delivering one multicast:
//!
//! ```
//! use std::time::{Duration, Instant};
//! use drum_core::config::ProtocolVariant;
//! use drum_net::experiment::{paper_cluster_config, Cluster};
//!
//! # fn main() -> std::io::Result<()> {
//! let config = paper_cluster_config(
//!     ProtocolVariant::Drum, 3, 0, 0.0, Duration::from_millis(30), 42);
//! let cluster = Cluster::start(config)?;
//! cluster.publish_from_source(0, 50);
//!
//! let deadline = Instant::now() + Duration::from_secs(10);
//! let mut deliveries = 0;
//! while Instant::now() < deadline && deliveries == 0 {
//!     deliveries = cluster.handles()[1..]
//!         .iter()
//!         .map(|h| h.take_delivered().len())
//!         .sum();
//!     std::thread::sleep(Duration::from_millis(10));
//! }
//! assert!(deliveries > 0);
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

// Unsafe code is denied crate-wide and allowed in exactly one place: the
// `sys` module, whose raw Linux syscall shims (recvmmsg/sendmmsg/epoll)
// back the batched I/O fast path. Everything else in this crate is safe
// Rust, and every batched path has a safe per-datagram fallback
// (`DRUM_NET_NO_BATCH=1`, or any non-Linux target).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod codec;
pub mod experiment;
pub mod runtime;
pub mod shard;
#[allow(unsafe_code)]
pub mod sys;
pub mod transport;

pub use attack::{spawn_attacker, AttackerConfig, AttackerHandle, FloodStrategy};
pub use codec::{
    decode, decode_frame, encode, frame_signed_body, is_frame, peek_kind, DecodeError, Frame,
    FrameBuilder, FRAME_BUDGET, FRAME_HEADER_LEN, FRAME_ITEM_OVERHEAD, FRAME_TAG_LEN,
    MAX_FRAME_MESSAGES,
};
pub use experiment::{
    paper_cluster_config, propagation_experiment, resolve_shards, soak_experiment,
    throughput_experiment, Cluster, ClusterConfig, NodeHandle, PropagationReport, ReceiverReport,
    SoakPhase, SoakReport, ThroughputReport,
};
pub use runtime::{
    os_random_seed, spawn_process, ChannelClass, Delivery, NetConfig, NetStats, NodeCore,
    ProcessHandle, ProcessSpec,
};
pub use shard::{spawn_shard, EngineHandle, ShardCore, ShardHandle, TimerWheel};
pub use transport::{AddressBook, BatchRx, BatchTx, SocketPool, WellKnownAddrs, WellKnownSockets};

#[cfg(test)]
mod proptests {
    use crate::codec::{decode, encode};
    use drum_core::digest::Digest;
    use drum_core::ids::{MessageId, ProcessId};
    use drum_core::message::{DataMessage, GossipMessage, PortRef};
    use drum_crypto::auth::AuthTag;
    use drum_testkit::prop::{check, Config, Gen};
    use drum_testkit::{prop_assert, prop_assert_eq};

    fn arb_digest(g: &mut Gen) -> Digest {
        g.vec_with(0..64, |g| (g.u64_in(0..16), g.u64_in(0..128)))
            .into_iter()
            .map(|(s, q)| MessageId::new(ProcessId(s), q))
            .collect()
    }

    fn arb_key(g: &mut Gen) -> [u8; 32] {
        let mut key = [0u8; 32];
        for b in &mut key {
            *b = g.u8();
        }
        key
    }

    fn arb_port(g: &mut Gen) -> PortRef {
        match g.u64_in(0..3) {
            0 => PortRef::None,
            1 => PortRef::Plain(g.u16()),
            _ => {
                let k = drum_crypto::keys::SecretKey::from_bytes(arb_key(g));
                PortRef::Sealed(drum_crypto::seal::seal_port(&k, g.u64(), g.u16()).unwrap())
            }
        }
    }

    fn arb_messages(g: &mut Gen) -> Vec<DataMessage> {
        g.vec_with(0..8, |g| DataMessage {
            id: MessageId::new(ProcessId(g.u64()), g.u64()),
            hops: g.u32_in(0..u32::MAX),
            payload: g.bytes(0..100).into(),
            auth: AuthTag(arb_key(g)),
        })
    }

    fn arb_message(g: &mut Gen) -> GossipMessage {
        match g.u64_in(0..5) {
            0 => GossipMessage::PullRequest {
                from: ProcessId(g.u64()),
                digest: arb_digest(g),
                reply_port: arb_port(g),
                nonce: g.u64(),
            },
            1 => GossipMessage::PullReply {
                from: ProcessId(g.u64()),
                messages: arb_messages(g),
            },
            2 => GossipMessage::PushOffer {
                from: ProcessId(g.u64()),
                reply_port: arb_port(g),
                nonce: g.u64(),
            },
            3 => GossipMessage::PushReply {
                from: ProcessId(g.u64()),
                digest: arb_digest(g),
                data_port: arb_port(g),
                nonce: g.u64(),
            },
            _ => GossipMessage::PushData {
                from: ProcessId(g.u64()),
                messages: arb_messages(g),
            },
        }
    }

    #[test]
    fn codec_round_trips() {
        check("codec_round_trips", Config::default(), |g| {
            let msg = arb_message(g);
            let bytes = encode(&msg);
            prop_assert_eq!(decode(&bytes).unwrap(), msg);
            Ok(())
        });
    }

    #[test]
    fn encode_into_matches_encode() {
        use drum_core::bytes::BytesMut;
        // A reused (dirty) scratch buffer must produce the exact bytes of a
        // fresh `encode` for every message — the zero-allocation fan-out
        // path cannot change the wire format.
        check("encode_into_matches_encode", Config::default(), |g| {
            let mut scratch = BytesMut::with_capacity(16);
            scratch.put_slice(b"stale bytes from a previous datagram");
            for _ in 0..4 {
                let msg = arb_message(g);
                crate::codec::encode_into(&msg, &mut scratch);
                prop_assert_eq!(&scratch[..], &encode(&msg)[..]);
            }
            Ok(())
        });
    }

    #[test]
    fn decode_never_panics_on_garbage() {
        check("decode_never_panics_on_garbage", Config::default(), |g| {
            let bytes = g.bytes(0..512);
            let _ = decode(&bytes);
            Ok(())
        });
    }

    #[test]
    fn decode_never_panics_on_mutations() {
        check("decode_never_panics_on_mutations", Config::default(), |g| {
            let msg = arb_message(g);
            let mut bytes = encode(&msg).to_vec();
            if !bytes.is_empty() {
                let i = g.index(bytes.len());
                bytes[i] = g.u8();
            }
            let _ = decode(&bytes);
            Ok(())
        });
    }

    #[test]
    fn decode_frame_never_panics_on_garbage() {
        use crate::codec::decode_frame;
        check(
            "decode_frame_never_panics_on_garbage",
            Config::default(),
            |g| {
                // Arbitrary bytes, and arbitrary bytes forced to look like a
                // frame (lead tag byte 6) so the parser's interior is
                // actually exercised rather than rejected at the first byte.
                let mut bytes = g.bytes(0..2048);
                let _ = decode_frame(&bytes);
                if !bytes.is_empty() {
                    bytes[0] = 6;
                }
                let _ = decode_frame(&bytes);
                Ok(())
            },
        );
    }

    #[test]
    fn frame_pack_unpack_round_trips() {
        use crate::codec::{decode_frame, frame_signed_body, FrameBuilder};
        use drum_core::bytes::BytesMut;
        use drum_crypto::keys::SecretKey;

        check("frame_pack_unpack_round_trips", Config::default(), |g| {
            let key = SecretKey::from_bytes(arb_key(g)).hmac_key();
            let sender = ProcessId(g.u64_in(0..64));
            let nonce = g.u64();
            let msgs = g.vec_with(1..12, arb_message);
            let mut builder = FrameBuilder::new();
            let mut wire = BytesMut::with_capacity(16);
            let mut cursor = 0usize;
            // Greedy fill may split the list over several frames; every
            // frame must decode back to exactly the packed prefix, carry a
            // verifiable tag, and preserve message order.
            while cursor < msgs.len() {
                let mut packed = 0usize;
                while cursor + packed < msgs.len() && builder.push(&msgs[cursor + packed]) {
                    packed += 1;
                }
                prop_assert!(packed > 0, "an empty builder must accept any message");
                let n = builder.finish_into(
                    sender,
                    nonce,
                    |body| drum_crypto::sign_frame_with(&key, sender.as_u64(), nonce, body),
                    &mut wire,
                );
                prop_assert_eq!(n, packed);
                let frame = decode_frame(&wire[..]).unwrap();
                prop_assert_eq!(frame.sender, sender);
                prop_assert_eq!(frame.nonce, nonce);
                prop_assert_eq!(&frame.messages[..], &msgs[cursor..cursor + packed]);
                let body = frame_signed_body(&wire[..]).unwrap();
                prop_assert!(drum_crypto::verify_frame_with(
                    &key,
                    sender.as_u64(),
                    nonce,
                    body,
                    &frame.auth
                )
                .is_ok());
                cursor += packed;
            }
            Ok(())
        });
    }

    #[test]
    fn decode_frame_never_panics_on_mutations() {
        use crate::codec::{decode_frame, FrameBuilder};
        use drum_core::bytes::BytesMut;
        use drum_crypto::auth::AuthTag;

        check(
            "decode_frame_never_panics_on_mutations",
            Config::default(),
            |g| {
                let msgs = g.vec_with(1..6, arb_message);
                let mut builder = FrameBuilder::new();
                for m in &msgs {
                    let _ = builder.push(m);
                }
                let mut wire = BytesMut::with_capacity(16);
                builder.finish_into(ProcessId(1), 7, |_| AuthTag::zero(), &mut wire);
                let mut bytes = wire[..].to_vec();
                let i = g.index(bytes.len());
                bytes[i] = g.u8();
                let _ = decode_frame(&bytes);
                // Truncations of a valid frame never panic either.
                let cut = g.index(bytes.len());
                let _ = decode_frame(&bytes[..cut]);
                Ok(())
            },
        );
    }
}
