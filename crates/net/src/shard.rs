//! The sharded (multiplexed) runtime: one event loop drives many engines.
//!
//! A *shard* owns N [`NodeCore`]s on a single OS thread. Every receive
//! socket of every engine is registered in one shared epoll instance with
//! a token of `pack_token(engine, class)`, so a readiness event routes
//! straight to the owning engine's drain for exactly that channel — one
//! `epoll_pwait` wakeup serves datagram work for many engines. Round
//! starts fire from a per-shard [`TimerWheel`] (a binary heap of
//! fixed-cadence deadlines), replacing N per-thread sleeps: the loop
//! blocks until the earliest deadline across all engines or until any
//! socket is readable, eliminating the per-node sub-millisecond busy-poll
//! remainder.
//!
//! Behavior is decision-equivalent to the per-thread runtime: both drive
//! the same [`NodeCore`] methods in the same order, with the same
//! per-engine RNG streams (`tests/shard_equivalence.rs` pins this, the
//! same recipe as the batched-I/O equivalence suite). This lifts real-UDP
//! single-process clusters from ~50 threads to 1,000+ engines (ROADMAP
//! item 1): 1,000 engines need ~2,000 well-known sockets plus the rotating
//! pools, comfortably inside a 20k fd limit, and a handful of shard
//! threads instead of a thousand.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use drum_core::bytes::Bytes;
use drum_core::ids::ProcessId;
use drum_trace::{names, Counter};

use crate::codec;
use crate::runtime::{
    seed_of, unpack_token, Delivery, NetStats, NodeCore, ProcessSpec, EPOLL_WAIT_CAP_MS,
};
use crate::sys;
use crate::transport::{bind_ephemeral, BatchRx, BatchTx};

// `seed_of` is pulled in so rustdoc links resolve; it is also the seed
// convention shard clusters share with the per-thread mode.
const _: fn(ProcessId) -> u64 = seed_of;

/// A binary heap of fixed-cadence round deadlines, one live entry per
/// engine. Deadlines pop in nondecreasing order; ties break on the lower
/// engine index so firing order is deterministic.
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(Instant, usize)>>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `engine`'s next deadline.
    pub fn push(&mut self, deadline: Instant, engine: usize) {
        self.heap.push(Reverse((deadline, engine)));
    }

    /// The earliest armed deadline, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((d, _))| *d)
    }

    /// Pops the earliest deadline if it is due at `now`.
    pub fn pop_due(&mut self, now: Instant) -> Option<(Instant, usize)> {
        match self.heap.peek() {
            Some(Reverse((d, _))) if *d <= now => self.heap.pop().map(|Reverse(e)| e),
            _ => None,
        }
    }

    /// Number of armed deadlines.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the wheel is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One engine's application-facing channels within a shard — the sharded
/// counterpart of [`crate::runtime::ProcessHandle`] (minus the join: the
/// shard thread owns shutdown for all of its engines).
#[derive(Debug)]
pub struct EngineHandle {
    id: ProcessId,
    publish_tx: Sender<Bytes>,
    delivered_rx: Receiver<Delivery>,
}

impl EngineHandle {
    /// The engine's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Queues a payload for multicast origination at this engine's next
    /// round start.
    pub fn publish(&self, payload: Bytes) {
        let _ = self.publish_tx.send(payload);
    }

    /// Receiver of delivered messages.
    pub fn delivered(&self) -> &Receiver<Delivery> {
        &self.delivered_rx
    }

    /// Drains everything currently delivered.
    pub fn take_delivered(&self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Ok(d) = self.delivered_rx.try_recv() {
            out.push(d);
        }
        out
    }
}

/// Handle to a running shard thread. Dropping it stops the shard.
#[derive(Debug)]
pub struct ShardHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<Vec<NetStats>>>,
}

impl ShardHandle {
    /// Signals the shard to stop and waits for it; returns each engine's
    /// final stats, in the order the specs were passed to [`spawn_shard`].
    pub fn shutdown(mut self) -> Vec<NetStats> {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .take()
            .expect("shutdown called once")
            .join()
            .unwrap_or_default()
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The single-threaded state of one shard: N nodes, their shared send
/// socket and I/O batchers, the shared epoll instance, and the timer
/// wheel. [`spawn_shard`] runs it on its own thread; tests drive the same
/// steps ([`ShardCore::start_all`], [`ShardCore::fire_due`],
/// [`ShardCore::poll_io`]) with synthetic clocks.
pub struct ShardCore {
    nodes: Vec<NodeCore>,
    send_socket: UdpSocket,
    rx: BatchRx,
    tx: BatchTx,
    scratch: Vec<u8>,
    epoll: Option<Arc<sys::Epoll>>,
    wheel: TimerWheel,
    tokens: Vec<u64>,
    poll: Duration,
    prev_sys: (u64, u64, u64),
    c_wakeups: Counter,
    c_dispatch: Counter,
    c_sys_recv: Counter,
    c_sys_send: Counter,
    c_batch_fill: Counter,
}

impl ShardCore {
    /// Builds a shard from one `(spec, publish_rx, delivered_tx)` lane per
    /// engine. Binds the shared send socket and registers every engine's
    /// receive sockets in the shared epoll instance with engine-indexed
    /// tokens (all-or-nothing: any registration failure reverts the whole
    /// shard to the sleep-poll fallback).
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if `lanes` is empty or the send socket
    /// cannot be bound.
    pub fn new(lanes: Vec<(ProcessSpec, Receiver<Bytes>, Sender<Delivery>)>) -> io::Result<Self> {
        let first = lanes
            .first()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty shard"))?;
        let poll = first.0.config.poll;
        let reg = first.0.config.tracer.registry().clone();
        let send_socket = bind_ephemeral()?;
        let mut nodes: Vec<NodeCore> = lanes
            .into_iter()
            .map(|(spec, publish_rx, delivered_tx)| NodeCore::new(spec, publish_rx, delivered_tx))
            .collect();
        let epoll = if sys::enabled() {
            sys::Epoll::new().ok().map(Arc::new).filter(|ep| {
                nodes
                    .iter_mut()
                    .enumerate()
                    .all(|(i, n)| n.register_tagged(ep, i))
            })
        } else {
            None
        };
        Ok(ShardCore {
            nodes,
            send_socket,
            rx: BatchRx::new(codec::MAX_WIRE_LEN + 1),
            tx: BatchTx::new(),
            scratch: vec![0u8; codec::MAX_WIRE_LEN + 1],
            epoll,
            wheel: TimerWheel::new(),
            tokens: Vec::new(),
            poll,
            prev_sys: (0, 0, 0),
            c_wakeups: reg.counter(names::SHARD_WAKEUPS),
            c_dispatch: reg.counter(names::SHARD_DISPATCH),
            c_sys_recv: reg.counter(names::SYSCALLS_RECV),
            c_sys_send: reg.counter(names::SYSCALLS_SEND),
            c_batch_fill: reg.counter(names::BATCH_FILL),
        })
    }

    /// Number of engines in the shard.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the shard has no engines.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the shard got tagged epoll dispatch (vs the sleep-poll
    /// drain-everyone fallback).
    pub fn dispatching(&self) -> bool {
        self.epoll.is_some()
    }

    /// Borrows one engine's core (test observability).
    pub fn node(&self, engine: usize) -> &NodeCore {
        &self.nodes[engine]
    }

    /// Starts every engine's first round and arms its first deadline.
    pub fn start_all(&mut self, now: Instant) {
        for i in 0..self.nodes.len() {
            let deadline = self.nodes[i].next_deadline(now, now);
            self.nodes[i].start_round(&self.send_socket, &mut self.tx);
            self.wheel.push(deadline, i);
        }
    }

    /// Fires every due deadline: each fired engine finishes its running
    /// round, starts the next, and is re-armed on the fixed cadence (its
    /// new deadline advances from the fired one, not from `now` — see
    /// `runtime::advance_deadline`). Returns how many engines fired.
    pub fn fire_due(&mut self, now: Instant) -> usize {
        let mut fired = 0;
        while let Some((deadline, i)) = self.wheel.pop_due(now) {
            let next = self.nodes[i].next_deadline(deadline, now);
            self.nodes[i].round_tick(&self.send_socket, &mut self.tx);
            self.wheel.push(next, i);
            fired += 1;
        }
        fired
    }

    /// One I/O pass: block until any socket is readable or the earliest
    /// wheel deadline nears (capped like the per-thread loop), then
    /// dispatch each ready token to the owning engine's channel drain. On
    /// the fallback path, drain every engine and sleep one poll interval.
    pub fn poll_io(&mut self, now: Instant) {
        let until = self
            .wheel
            .next_deadline()
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(self.poll);
        match self.epoll.clone() {
            Some(ep) => {
                // A timeout of 0 keeps the sub-millisecond remainder a
                // non-blocking drain instead of an overshooting sleep
                // (epoll timeouts are whole milliseconds).
                let wait_ms = until.as_millis().min(EPOLL_WAIT_CAP_MS) as i32;
                self.tokens.clear();
                let _ = ep.wait_tagged(wait_ms, &mut self.tokens);
                self.c_wakeups.inc();
                if self.tokens.is_empty() {
                    return;
                }
                // Dedup: 64 ready events on one engine's pool collapse to
                // one drain (the drain empties every live pool socket).
                self.tokens.sort_unstable();
                self.tokens.dedup();
                let mut dispatched = 0u64;
                for k in 0..self.tokens.len() {
                    let (engine, class) = unpack_token(self.tokens[k]);
                    let Some(class) = class else { continue };
                    let Some(node) = self.nodes.get_mut(engine) else {
                        continue;
                    };
                    node.drain_class(
                        class,
                        &mut self.rx,
                        &mut self.scratch,
                        &self.send_socket,
                        &mut self.tx,
                    );
                    dispatched += 1;
                }
                self.c_dispatch.add(dispatched);
            }
            None => {
                for i in 0..self.nodes.len() {
                    self.nodes[i].drain_all(
                        &mut self.rx,
                        &mut self.scratch,
                        &self.send_socket,
                        &mut self.tx,
                    );
                }
                let nap = until.min(self.poll);
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
        }
    }

    /// Mirrors the shared batchers' syscall totals into the registry as
    /// deltas. The per-engine `finish_round` cannot do this (the batchers
    /// are shared by the whole shard), so the shard accounts once per loop
    /// iteration.
    fn account_sys(&mut self) {
        let cur = (
            self.rx.syscalls(),
            self.tx.syscalls(),
            self.rx.batched_datagrams(),
        );
        self.c_sys_recv.add(cur.0 - self.prev_sys.0);
        self.c_sys_send.add(cur.1 - self.prev_sys.1);
        self.c_batch_fill.add(cur.2 - self.prev_sys.2);
        self.prev_sys = cur;
    }

    /// The blocking event loop: fire due rounds, block for I/O, dispatch,
    /// account — until `stop`.
    pub fn run(&mut self, stop: &AtomicBool) {
        self.start_all(Instant::now());
        while !stop.load(Ordering::Relaxed) {
            self.fire_due(Instant::now());
            self.poll_io(Instant::now());
            self.account_sys();
        }
    }

    /// Tears the shard down: finalizes every engine (finishing rounds in
    /// flight) and returns their stats in lane order. Every engine reports
    /// the shard's *shared* syscall totals.
    pub fn into_stats(mut self) -> Vec<NetStats> {
        self.account_sys();
        let totals = (
            self.rx.syscalls(),
            self.tx.syscalls(),
            self.rx.batched_datagrams(),
        );
        self.nodes
            .into_iter()
            .map(|n| n.finalize(Some(totals)))
            .collect()
    }
}

/// Spawns one shard thread multiplexing every engine in `specs`; returns
/// the shard handle plus one [`EngineHandle`] per spec, in order.
///
/// # Errors
///
/// Returns an [`io::Error`] if `specs` is empty or the shard's shared
/// send socket cannot be bound.
pub fn spawn_shard(specs: Vec<ProcessSpec>) -> io::Result<(ShardHandle, Vec<EngineHandle>)> {
    let mut lanes = Vec::with_capacity(specs.len());
    let mut engines = Vec::with_capacity(specs.len());
    for spec in specs {
        let (publish_tx, publish_rx) = channel::<Bytes>();
        let (delivered_tx, delivered_rx) = channel::<Delivery>();
        engines.push(EngineHandle {
            id: spec.me,
            publish_tx,
            delivered_rx,
        });
        lanes.push((spec, publish_rx, delivered_tx));
    }
    let name = format!(
        "drum-shard-{}x{}",
        engines.first().map(|e| e.id.as_u64()).unwrap_or(0),
        engines.len()
    );
    // Built on the caller's thread so bind/registration errors surface
    // synchronously.
    let mut core = ShardCore::new(lanes)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let join = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            core.run(&stop_flag);
            core.into_stats()
        })
        .expect("failed to spawn shard thread");
    Ok((
        ShardHandle {
            stop,
            join: Some(join),
        },
        engines,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{pack_token, ChannelClass, NetConfig};
    use crate::transport::{AddressBook, WellKnownSockets};
    use drum_core::config::GossipConfig;
    use drum_crypto::keys::KeyStore;
    use drum_testkit::prop::{check, Config, Gen};
    use drum_testkit::prop_assert;

    #[test]
    fn timer_wheel_pops_nondecreasing_with_index_tiebreak() {
        let base = Instant::now();
        let mut wheel = TimerWheel::new();
        // Shuffled pushes, including exact ties.
        let entries = [(30u64, 2usize), (10, 7), (20, 1), (10, 3), (30, 0), (10, 5)];
        for (ms, engine) in entries {
            wheel.push(base + Duration::from_millis(ms), engine);
        }
        assert_eq!(wheel.len(), entries.len());
        assert_eq!(
            wheel.next_deadline(),
            Some(base + Duration::from_millis(10))
        );

        // Nothing is due before the earliest deadline.
        assert!(wheel.pop_due(base).is_none());

        let far = base + Duration::from_secs(1);
        let mut popped = Vec::new();
        while let Some((d, e)) = wheel.pop_due(far) {
            popped.push((d, e));
        }
        assert!(wheel.is_empty());
        assert_eq!(
            popped,
            vec![
                (base + Duration::from_millis(10), 3),
                (base + Duration::from_millis(10), 5),
                (base + Duration::from_millis(10), 7),
                (base + Duration::from_millis(20), 1),
                (base + Duration::from_millis(30), 0),
                (base + Duration::from_millis(30), 2),
            ],
            "pops must be nondecreasing, ties by engine index"
        );
    }

    #[test]
    fn timer_wheel_ordering_property() {
        let base = Instant::now();
        check(
            "timer_wheel_ordering_property",
            Config::with_cases(50),
            |g: &mut Gen| {
                let mut wheel = TimerWheel::new();
                let n = g.u64_in(1..40) as usize;
                for engine in 0..n {
                    wheel.push(base + Duration::from_millis(g.u64_in(0..50)), engine);
                }
                let far = base + Duration::from_secs(10);
                let mut prev: Option<(Instant, usize)> = None;
                let mut count = 0;
                while let Some(e) = wheel.pop_due(far) {
                    if let Some(p) = prev {
                        prop_assert!(p <= e, "wheel popped out of order: {p:?} then {e:?}");
                    }
                    prev = Some(e);
                    count += 1;
                }
                prop_assert!(count == n, "all armed deadlines must pop");
                Ok(())
            },
        );
    }

    #[test]
    fn tokens_round_trip_engine_and_class() {
        for engine in [0usize, 1, 63, 999, 100_000] {
            for class in ChannelClass::ALL {
                let (e, c) = unpack_token(pack_token(engine, class));
                assert_eq!((e, c), (engine, Some(class)));
            }
        }
        // Unused class codes decode to None instead of a bogus class.
        assert_eq!(unpack_token(7), (0, None));
        assert_eq!(unpack_token((5 << 3) | 6), (5, None));
    }

    fn shard_cluster(n: u64, round_ms: u64) -> (ShardHandle, Vec<EngineHandle>) {
        let key_store = KeyStore::new(41);
        let members: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let mut socks = Vec::new();
        let mut entries = Vec::new();
        for &m in &members {
            let (s, addrs) = WellKnownSockets::bind().unwrap();
            socks.push((m, s));
            entries.push((m, addrs));
        }
        let book = AddressBook::new(entries);
        let specs: Vec<ProcessSpec> = socks
            .into_iter()
            .map(|(m, sockets)| ProcessSpec {
                me: m,
                members: members.clone(),
                book: book.clone(),
                key_store: key_store.clone(),
                my_key: key_store.register(m.as_u64()),
                sockets,
                ablation: None,
                config: NetConfig::new(GossipConfig::drum())
                    .with_round(Duration::from_millis(round_ms)),
                seed: seed_of(m),
            })
            .collect();
        spawn_shard(specs).unwrap()
    }

    #[test]
    fn sharded_drum_disseminates_over_udp() {
        let (shard, engines) = shard_cluster(6, 40);
        engines[0].publish(Bytes::from_static(b"hello shard"));
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut received = [false; 6];
        received[0] = true;
        while Instant::now() < deadline && received.iter().any(|r| !r) {
            for (i, e) in engines.iter().enumerate() {
                for d in e.take_delivered() {
                    assert_eq!(d.message.payload, Bytes::from_static(b"hello shard"));
                    received[i] = true;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (i, r) in received.iter().enumerate() {
            assert!(*r, "engine {i} never received the message");
        }
        let stats = shard.shutdown();
        assert_eq!(stats.len(), 6);
        for s in &stats {
            assert!(s.rounds > 0, "every engine must have run rounds: {s:?}");
        }
    }

    #[test]
    fn empty_shard_is_an_error() {
        assert!(spawn_shard(Vec::new()).is_err());
    }
}
