//! Extension experiment (beyond the paper): large-n live-UDP clusters —
//! hundreds to a thousand correct nodes multiplexed into one OS process
//! by the sharded net runtime.
//!
//! Thin wrapper over [`drum_bench::figures::ext_cluster`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::ext_cluster(&mut out).expect("write ext_cluster to stdout");
}
