//! Figure 12: the other two DoS-mitigation measures, ablated.
//!
//! (a) Drum with random ports vs with well-known reply ports (simulation):
//!     without port concealment the adversary splits its pull budget over
//!     the request and reply ports and Drum degrades linearly;
//! (b) Drum with separate vs shared control-message bounds (measurement):
//!     a shared bound lets the flood starve push-offers and push-replies.

use std::time::Duration;

use drum_bench::{banner, scaled, sweep_table, trials, SEED};
use drum_core::config::{BoundMode, GossipConfig};
use drum_metrics::table::Table;
use drum_net::experiment::{paper_cluster_config, propagation_experiment};
use drum_sim::experiments::fig12a_random_ports;

fn main() {
    banner("Figure 12", "random ports and separate bounds ablations");
    let trials = trials();
    let n = scaled(120, 1000);

    let xs: Vec<f64> = scaled(
        vec![0.0, 64.0, 128.0, 256.0, 512.0],
        vec![0.0, 32.0, 64.0, 128.0, 192.0, 256.0, 384.0, 512.0],
    );
    println!("(a) alpha = 10%, n = {n} (simulation): rounds to 99% vs x");
    let rows = fig12a_random_ports(n, &xs, trials, SEED);
    println!(
        "{}",
        sweep_table("x", &rows, &["random ports", "well-known ports"])
    );
    println!("paper: random ports flat; well-known ports linear in x\n");

    // (b) — real measurements with the engine's bound modes.
    let net_n = scaled(16, 50);
    let round = Duration::from_millis(scaled(80, 1000));
    let messages = scaled(6, 30);
    let net_xs: Vec<f64> = scaled(
        vec![0.0, 128.0, 256.0],
        vec![0.0, 64.0, 128.0, 256.0, 512.0],
    );
    println!("(b) alpha = 10%, n = {net_n} (measurement): rounds to 99% vs x");
    let mut table = Table::new(vec![
        "x".into(),
        "separate bounds".into(),
        "shared bounds".into(),
    ]);
    for &x in &net_xs {
        let mut cells = vec![format!("{x:.0}")];
        for mode in [BoundMode::Separate, BoundMode::SharedControl] {
            let attacked = if x == 0.0 { 0 } else { (net_n / 10).max(1) };
            let mut cfg = paper_cluster_config(
                drum_core::ProtocolVariant::Drum,
                net_n,
                attacked,
                x,
                round,
                SEED,
            );
            cfg.net.gossip = GossipConfig::drum().with_bound_mode(mode);
            let report = propagation_experiment(cfg, messages, 2, Duration::from_secs(45))
                .expect("cluster failed");
            if report.rounds_to_99.count() > 0 {
                cells.push(format!("{:.1}", report.rounds_to_99.mean()));
            } else {
                cells.push(">timeout".into());
            }
        }
        table.row(cells);
    }
    println!("{table}");
    println!("paper: separate bounds flat; shared bounds degrade linearly under attack");
}
