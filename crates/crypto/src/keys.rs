//! Key management for the Drum protocol.
//!
//! The paper assumes a public-key infrastructure: data-message sources are
//! authenticated with signatures and the randomly chosen gossip ports are
//! encrypted under the recipient's public key. No asymmetric-crypto crate is
//! available offline, so this module provides the **functional equivalent**
//! for the modeled adversary (who can fabricate and snoop messages but holds
//! no group member's key):
//!
//! * every process owns a random 256-bit [`SecretKey`];
//! * a [`KeyStore`] plays the role of the PKI — honest processes use it to
//!   seal data *for* a recipient or verify tags *from* a source, while the
//!   adversary (by assumption) has no access to it.
//!
//! This substitution is documented in `DESIGN.md`; it preserves the two
//! properties the protocol actually relies on: unforgeability of sources and
//! confidentiality of sealed ports.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::hmac::hmac_sha256;

/// A 256-bit symmetric secret owned by one process.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(pub(crate) [u8; 32]);

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

impl SecretKey {
    /// Generates a fresh random key from `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        SecretKey(bytes)
    }

    /// Builds a key from raw bytes (e.g. for tests or key exchange).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    /// Derives a sub-key bound to a usage `label` (domain separation).
    pub fn derive(&self, label: &[u8]) -> SecretKey {
        SecretKey(hmac_sha256(&self.0, label))
    }

    /// Raw key bytes. Use sparingly; prefer the higher-level APIs.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// Error returned when a [`KeyStore`] lookup fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownPeerError {
    /// The peer identifier that had no registered key.
    pub peer: u64,
}

impl core::fmt::Display for UnknownPeerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "no key registered for peer {}", self.peer)
    }
}

impl std::error::Error for UnknownPeerError {}

/// A shared registry of per-process keys, standing in for a PKI.
///
/// Cloning a `KeyStore` is cheap and yields a handle to the same underlying
/// registry, so one store can be shared by all honest processes of a test or
/// experiment.
///
/// # Examples
///
/// ```
/// use drum_crypto::keys::KeyStore;
///
/// let store = KeyStore::new(7);
/// store.register(1);
/// store.register(2);
/// assert!(store.contains(1));
/// assert!(!store.contains(3));
/// ```
#[derive(Clone, Debug)]
pub struct KeyStore {
    inner: Arc<RwLock<HashMap<u64, SecretKey>>>,
    seed_rng: Arc<RwLock<SmallRng>>,
}

impl KeyStore {
    /// Creates an empty key store; `seed` makes key generation deterministic
    /// for reproducible experiments.
    pub fn new(seed: u64) -> Self {
        KeyStore {
            inner: Arc::new(RwLock::new(HashMap::new())),
            seed_rng: Arc::new(RwLock::new(SmallRng::seed_from_u64(seed))),
        }
    }

    // Key material is valid even if another thread panicked mid-operation,
    // so lock poisoning is recovered rather than propagated.
    fn read_keys(&self) -> RwLockReadGuard<'_, HashMap<u64, SecretKey>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_keys(&self) -> RwLockWriteGuard<'_, HashMap<u64, SecretKey>> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a fresh key for `peer`, replacing any existing one.
    /// Returns the generated key.
    pub fn register(&self, peer: u64) -> SecretKey {
        let key = {
            let mut rng = self
                .seed_rng
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            SecretKey::generate(&mut *rng)
        };
        self.write_keys().insert(peer, key.clone());
        key
    }

    /// Registers an externally generated key for `peer`.
    pub fn register_key(&self, peer: u64, key: SecretKey) {
        self.write_keys().insert(peer, key);
    }

    /// Removes `peer`'s key (e.g. after certificate revocation).
    /// Returns `true` if a key was present.
    pub fn revoke(&self, peer: u64) -> bool {
        self.write_keys().remove(&peer).is_some()
    }

    /// Whether a key is registered for `peer`.
    pub fn contains(&self, peer: u64) -> bool {
        self.read_keys().contains_key(&peer)
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.read_keys().len()
    }

    /// Whether no peers are registered.
    pub fn is_empty(&self) -> bool {
        self.read_keys().is_empty()
    }

    /// Fetches the key for `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownPeerError`] if `peer` was never registered (or was
    /// revoked).
    pub fn key_of(&self, peer: u64) -> Result<SecretKey, UnknownPeerError> {
        self.read_keys()
            .get(&peer)
            .cloned()
            .ok_or(UnknownPeerError { peer })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let store = KeyStore::new(1);
        let k = store.register(42);
        assert_eq!(store.key_of(42).unwrap(), k);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn unknown_peer_is_error() {
        let store = KeyStore::new(1);
        let err = store.key_of(9).unwrap_err();
        assert_eq!(err.peer, 9);
        assert!(err.to_string().contains('9'));
    }

    #[test]
    fn revoke_removes_key() {
        let store = KeyStore::new(1);
        store.register(5);
        assert!(store.revoke(5));
        assert!(!store.revoke(5));
        assert!(store.key_of(5).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KeyStore::new(99);
        let b = KeyStore::new(99);
        assert_eq!(a.register(1), b.register(1));
    }

    #[test]
    fn distinct_peers_distinct_keys() {
        let store = KeyStore::new(3);
        assert_ne!(store.register(1), store.register(2));
    }

    #[test]
    fn clones_share_state() {
        let store = KeyStore::new(1);
        let clone = store.clone();
        store.register(7);
        assert!(clone.contains(7));
    }

    #[test]
    fn derive_is_label_separated() {
        let mut rng = SmallRng::seed_from_u64(0);
        let k = SecretKey::generate(&mut rng);
        assert_ne!(k.derive(b"a").as_bytes(), k.derive(b"b").as_bytes());
    }

    #[test]
    fn secret_key_debug_hides_material() {
        let k = SecretKey::from_bytes([7u8; 32]);
        assert_eq!(format!("{k:?}"), "SecretKey(..)");
    }
}
