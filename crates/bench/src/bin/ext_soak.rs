//! Extension experiment (beyond the paper): the sustained-throughput
//! soak — a paced multi-message stream with the Figure 7 flood toggled
//! on and off mid-run, carried by MTU-packed gossip frames.
//!
//! Thin wrapper over [`drum_bench::figures::ext_soak`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::ext_soak(&mut out).expect("write ext_soak to stdout");
}
