//! Protocol-level benchmarks: simulation round cost, full-trial cost under
//! attack, and the closed-form analysis kernels — plus the ablation
//! comparisons called out in `DESIGN.md` §10.

use drum_bench::harness::{BenchmarkId, Criterion};
use drum_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use drum_analysis::appendix_a::{p_a, p_u};
use drum_analysis::appendix_c::{analysis_cdf, Protocol};
use drum_core::ProtocolVariant;
use drum_sim::config::SimConfig;
use drum_sim::model::SimState;
use drum_sim::runner::run_trial;

fn bench_sim_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_round");
    group.sample_size(20);

    for proto in [
        ProtocolVariant::Drum,
        ProtocolVariant::Push,
        ProtocolVariant::Pull,
    ] {
        group.bench_with_input(
            BenchmarkId::new("step_n1000_attacked", proto.to_string()),
            &proto,
            |b, &proto| {
                let cfg = SimConfig::paper_attack(proto, 1000, 128.0);
                let mut state = SimState::new(cfg);
                let mut rng = SmallRng::seed_from_u64(9);
                b.iter(|| {
                    state.step(&mut rng);
                    black_box(state.round())
                })
            },
        );
    }
    group.finish();
}

fn bench_sim_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_trial");
    group.sample_size(10);

    for proto in [
        ProtocolVariant::Drum,
        ProtocolVariant::Push,
        ProtocolVariant::Pull,
    ] {
        group.bench_with_input(
            BenchmarkId::new("trial_n120_x128", proto.to_string()),
            &proto,
            |b, &proto| {
                let cfg = SimConfig::paper_attack(proto, 120, 128.0);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_trial(&cfg, seed, 0))
                })
            },
        );
    }

    // Ablation: the cost (in rounds simulated, hence time) of losing
    // random ports under a strong attack.
    for (label, random_ports) in [("random_ports", true), ("well_known_ports", false)] {
        group.bench_with_input(
            BenchmarkId::new("trial_drum_x256", label),
            &random_ports,
            |b, &random_ports| {
                let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 256.0);
                cfg.random_ports = random_ports;
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_trial(&cfg, seed, 0))
                })
            },
        );
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);

    group.bench_function("p_u_n1000_f4", |b| b.iter(|| black_box(p_u(1000, 4))));
    group.bench_function("p_a_n1000_f4_x128", |b| {
        b.iter(|| black_box(p_a(1000, 4, 128)))
    });

    group.bench_function("joint_recursion_n120_alpha10_x128", |b| {
        b.iter(|| black_box(analysis_cdf(Protocol::Drum, 120, 12, 0.01, 4, 12, 128, 30)))
    });

    group.bench_function("no_attack_recursion_n120", |b| {
        b.iter(|| black_box(analysis_cdf(Protocol::Drum, 120, 0, 0.01, 4, 0, 0, 20)))
    });

    group.finish();
}

criterion_group!(benches, bench_sim_round, bench_sim_trial, bench_analysis);
criterion_main!(benches);
