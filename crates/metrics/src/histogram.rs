//! Fixed-bucket histograms for latency distributions.

use crate::json::{Json, JsonError};

/// A histogram with uniform-width buckets over `[lo, hi)` plus overflow /
/// underflow counters.
///
/// # Examples
///
/// ```
/// use drum_metrics::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
/// h.record(5.0);
/// h.record(15.0);
/// h.record(15.5);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

/// Error constructing a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// `hi` was not greater than `lo`, or a bound was NaN.
    BadRange,
    /// Zero buckets requested.
    NoBuckets,
}

impl core::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HistogramError::BadRange => write!(f, "histogram range is empty or NaN"),
            HistogramError::NoBuckets => write!(f, "histogram needs at least one bucket"),
        }
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal buckets.
    ///
    /// # Errors
    ///
    /// * [`HistogramError::BadRange`] — `hi <= lo` or NaN bounds.
    /// * [`HistogramError::NoBuckets`] — `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Result<Self, HistogramError> {
        // NaN-aware: `hi` must compare strictly greater than `lo`.
        if hi.partial_cmp(&lo) != Some(core::cmp::Ordering::Greater) {
            return Err(HistogramError::BadRange);
        }
        if n == 0 {
            return Err(HistogramError::NoBuckets);
        }
        Ok(Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Inclusive lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + width * i as f64
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range (or NaN).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Serializes the histogram as a JSON object.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("lo".into(), Json::num(self.lo)),
            ("hi".into(), Json::num(self.hi)),
            (
                "buckets".into(),
                Json::Arr(self.buckets.iter().map(|c| Json::num(*c as f64)).collect()),
            ),
            ("underflow".into(), Json::num(self.underflow as f64)),
            ("overflow".into(), Json::num(self.overflow as f64)),
        ])
        .to_string()
    }

    /// Restores a histogram from [`Histogram::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input, missing fields or an
    /// invalid geometry.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        let lo = v.field_f64("lo")?;
        let hi = v.field_f64("hi")?;
        let buckets: Vec<u64> = v
            .field_array("buckets")?
            .iter()
            .map(|b| b.as_u64().ok_or(JsonError::MissingField { name: "bucket" }))
            .collect::<Result<_, _>>()?;
        let mut h = Histogram::new(lo, hi, buckets.len()).map_err(|_| JsonError::MissingField {
            name: "valid geometry",
        })?;
        h.buckets = buckets;
        h.underflow = v.field_u64("underflow")?;
        h.overflow = v.field_u64("overflow")?;
        Ok(h)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert_eq!(
            Histogram::new(1.0, 1.0, 4).unwrap_err(),
            HistogramError::BadRange
        );
        assert_eq!(
            Histogram::new(2.0, 1.0, 4).unwrap_err(),
            HistogramError::BadRange
        );
        assert_eq!(
            Histogram::new(f64::NAN, 1.0, 4).unwrap_err(),
            HistogramError::BadRange
        );
        assert_eq!(
            Histogram::new(0.0, 1.0, 0).unwrap_err(),
            HistogramError::NoBuckets
        );
    }

    #[test]
    fn bucket_assignment() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.0);
        h.record(9.999);
        h.record(5.0);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.bucket_count(5), 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-0.1);
        h.record(1.0);
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bucket_edges() {
        let h = Histogram::new(10.0, 20.0, 4).unwrap();
        assert_eq!(h.bucket_lo(0), 10.0);
        assert_eq!(h.bucket_lo(2), 15.0);
        assert_eq!(h.num_buckets(), 4);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        a.record(1.0);
        b.record(1.5);
        b.record(-1.0);
        a.merge(&b);
        assert_eq!(a.bucket_count(0), 2);
        assert_eq!(a.underflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket count mismatch")]
    fn merge_rejects_different_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let b = Histogram::new(0.0, 10.0, 6).unwrap();
        a.merge(&b);
    }
}
