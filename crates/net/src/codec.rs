//! Binary wire codec for [`GossipMessage`].
//!
//! A hand-rolled, length-checked format on top of `drum_core::bytes` (no
//! general serialization framework is available offline, and a fixed format
//! keeps datagrams compact). All integers are big-endian. Every decoder is
//! hardened against truncated, oversized and garbage input — a DoS-resistant
//! endpoint must survive arbitrary bytes on its well-known ports.

use drum_core::bytes::{Bytes, BytesMut};

use drum_core::digest::Digest;
use drum_core::ids::{MessageId, ProcessId};
use drum_core::message::{DataMessage, GossipMessage, PortRef};
use drum_crypto::auth::AuthTag;
use drum_crypto::seal::SealedBox;

/// Maximum accepted datagram payload (loopback UDP handles 64 KiB; we stay
/// comfortably below).
pub const MAX_WIRE_LEN: usize = 60 * 1024;

/// Maximum number of data messages in one pull-reply/push-data datagram.
pub const MAX_MESSAGES_PER_DATAGRAM: usize = 512;

/// Maximum digest intervals accepted in one datagram.
pub const MAX_DIGEST_INTERVALS: usize = 4096;

/// Maximum payload bytes per data message on the wire.
pub const MAX_PAYLOAD_LEN: usize = 8 * 1024;

const TAG_PULL_REQUEST: u8 = 1;
const TAG_PULL_REPLY: u8 = 2;
const TAG_PUSH_OFFER: u8 = 3;
const TAG_PUSH_REPLY: u8 = 4;
const TAG_PUSH_DATA: u8 = 5;
const TAG_FRAME: u8 = 6;

/// Target size for a packed frame datagram: greedy fill stops here so
/// frames stay within a typical Ethernet MTU (1500 minus IP/UDP headers).
/// A single gossip message that alone exceeds the budget still travels in
/// one frame — messages are never split — so a frame can exceed the budget
/// only when one message already does.
pub const FRAME_BUDGET: usize = 1400;

/// Maximum gossip messages packed into one frame.
pub const MAX_FRAME_MESSAGES: usize = 256;

/// Fixed frame prelude: tag byte, sender id, nonce, message count.
pub const FRAME_HEADER_LEN: usize = 1 + 8 + 8 + 4;

/// Trailing frame authentication tag.
pub const FRAME_TAG_LEN: usize = drum_crypto::auth::AUTH_TAG_LEN;

/// Per-packed-message framing overhead (the length prefix).
pub const FRAME_ITEM_OVERHEAD: usize = 4;

const PORT_NONE: u8 = 0;
const PORT_PLAIN: u8 = 1;
const PORT_SEALED: u8 = 2;

/// Decoding errors. Deliberately coarse: a hostile sender learns nothing
/// from which check failed, and the runtime just drops the datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the structure was complete.
    Truncated,
    /// A tag byte or enum discriminant was invalid.
    BadTag,
    /// A length field exceeded its hard limit.
    TooLarge,
    /// A digest violated its canonical-form invariants.
    BadDigest,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::BadTag => write!(f, "invalid tag"),
            DecodeError::TooLarge => write!(f, "length field exceeds limit"),
            DecodeError::BadDigest => write!(f, "malformed digest"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn put_digest(out: &mut BytesMut, digest: &Digest) {
    let sources: Vec<_> = digest.intervals().collect();
    out.put_u32(sources.len() as u32);
    for (source, intervals) in sources {
        out.put_u64(source.as_u64());
        out.put_u32(intervals.len() as u32);
        for &(lo, hi) in intervals {
            out.put_u64(lo);
            out.put_u64(hi);
        }
    }
}

fn get_digest(buf: &mut Bytes) -> Result<Digest, DecodeError> {
    need(buf, 4)?;
    let n_sources = buf.get_u32() as usize;
    if n_sources > MAX_DIGEST_INTERVALS {
        return Err(DecodeError::TooLarge);
    }
    let mut entries = Vec::with_capacity(n_sources.min(64));
    let mut total_intervals = 0usize;
    for _ in 0..n_sources {
        need(buf, 12)?;
        let source = ProcessId(buf.get_u64());
        let n_intervals = buf.get_u32() as usize;
        total_intervals += n_intervals;
        if total_intervals > MAX_DIGEST_INTERVALS {
            return Err(DecodeError::TooLarge);
        }
        let mut intervals = Vec::with_capacity(n_intervals.min(64));
        for _ in 0..n_intervals {
            need(buf, 16)?;
            intervals.push((buf.get_u64(), buf.get_u64()));
        }
        entries.push((source, intervals));
    }
    Digest::from_intervals(entries).map_err(|_| DecodeError::BadDigest)
}

fn put_port(out: &mut BytesMut, port: &PortRef) {
    match port {
        PortRef::None => out.put_u8(PORT_NONE),
        PortRef::Plain(p) => {
            out.put_u8(PORT_PLAIN);
            out.put_u16(*p);
        }
        PortRef::Sealed(sealed) => {
            out.put_u8(PORT_SEALED);
            out.put_u64(sealed.nonce);
            out.put_u8(sealed.ciphertext.len() as u8);
            out.put_slice(&sealed.ciphertext);
            out.put_slice(&sealed.tag);
        }
    }
}

fn get_port(buf: &mut Bytes) -> Result<PortRef, DecodeError> {
    need(buf, 1)?;
    match buf.get_u8() {
        PORT_NONE => Ok(PortRef::None),
        PORT_PLAIN => {
            need(buf, 2)?;
            Ok(PortRef::Plain(buf.get_u16()))
        }
        PORT_SEALED => {
            need(buf, 9)?;
            let nonce = buf.get_u64();
            let ct_len = buf.get_u8() as usize;
            if ct_len > drum_crypto::seal::MAX_SEALED_LEN {
                return Err(DecodeError::TooLarge);
            }
            need(buf, ct_len + 32)?;
            let mut ciphertext = vec![0u8; ct_len];
            buf.copy_to_slice(&mut ciphertext);
            let mut tag = [0u8; 32];
            buf.copy_to_slice(&mut tag);
            Ok(PortRef::Sealed(SealedBox {
                nonce,
                ciphertext,
                tag,
            }))
        }
        _ => Err(DecodeError::BadTag),
    }
}

fn put_data_message(out: &mut BytesMut, msg: &DataMessage) {
    out.put_u64(msg.id.source.as_u64());
    out.put_u64(msg.id.seq);
    out.put_u32(msg.hops);
    out.put_u32(msg.payload.len() as u32);
    out.put_slice(&msg.payload);
    out.put_slice(&msg.auth.0);
}

fn get_data_message(buf: &mut Bytes) -> Result<DataMessage, DecodeError> {
    need(buf, 24)?;
    let source = ProcessId(buf.get_u64());
    let seq = buf.get_u64();
    let hops = buf.get_u32();
    let payload_len = buf.get_u32() as usize;
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(DecodeError::TooLarge);
    }
    need(buf, payload_len + 32)?;
    let payload = buf.copy_to_bytes(payload_len);
    let mut tag = [0u8; 32];
    buf.copy_to_slice(&mut tag);
    Ok(DataMessage {
        id: MessageId::new(source, seq),
        hops,
        payload,
        auth: AuthTag(tag),
    })
}

fn put_messages(out: &mut BytesMut, messages: &[DataMessage]) {
    out.put_u32(messages.len() as u32);
    for m in messages {
        put_data_message(out, m);
    }
}

fn get_messages(buf: &mut Bytes) -> Result<Vec<DataMessage>, DecodeError> {
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    if n > MAX_MESSAGES_PER_DATAGRAM {
        return Err(DecodeError::TooLarge);
    }
    let mut out = Vec::with_capacity(n.min(128));
    for _ in 0..n {
        out.push(get_data_message(buf)?);
    }
    Ok(out)
}

/// Encodes a [`GossipMessage`] into a datagram payload.
pub fn encode(msg: &GossipMessage) -> Bytes {
    let mut out = BytesMut::with_capacity(128);
    encode_into(msg, &mut out);
    out.freeze()
}

/// Encodes a [`GossipMessage`] into a caller-owned buffer.
///
/// The buffer is cleared first, so its allocation is reused across calls —
/// a sender fanning one message out to many recipients (or many messages in
/// one poll iteration) pays for the datagram bytes once instead of a fresh
/// allocation per `encode`. Output is byte-identical to [`encode`].
pub fn encode_into(msg: &GossipMessage, out: &mut BytesMut) {
    out.clear();
    match msg {
        GossipMessage::PullRequest {
            from,
            digest,
            reply_port,
            nonce,
        } => {
            out.put_u8(TAG_PULL_REQUEST);
            out.put_u64(from.as_u64());
            out.put_u64(*nonce);
            put_port(out, reply_port);
            put_digest(out, digest);
        }
        GossipMessage::PullReply { from, messages } => {
            out.put_u8(TAG_PULL_REPLY);
            out.put_u64(from.as_u64());
            put_messages(out, messages);
        }
        GossipMessage::PushOffer {
            from,
            reply_port,
            nonce,
        } => {
            out.put_u8(TAG_PUSH_OFFER);
            out.put_u64(from.as_u64());
            out.put_u64(*nonce);
            put_port(out, reply_port);
        }
        GossipMessage::PushReply {
            from,
            digest,
            data_port,
            nonce,
        } => {
            out.put_u8(TAG_PUSH_REPLY);
            out.put_u64(from.as_u64());
            out.put_u64(*nonce);
            put_port(out, data_port);
            put_digest(out, digest);
        }
        GossipMessage::PushData { from, messages } => {
            out.put_u8(TAG_PUSH_DATA);
            out.put_u64(from.as_u64());
            put_messages(out, messages);
        }
    }
}

/// Classifies a datagram from its leading tag byte without decoding it.
///
/// Returns `None` for empty datagrams, unknown tags, and oversized inputs —
/// exactly the inputs [`decode`] would reject on its first checks. A shard
/// event loop triaging a flood can use this to attribute hostile traffic by
/// kind before paying for a full decode; a `Some` result promises nothing
/// about the rest of the datagram.
pub fn peek_kind(bytes: &[u8]) -> Option<drum_core::message::MessageKind> {
    use drum_core::message::MessageKind;
    if bytes.len() > MAX_WIRE_LEN {
        return None;
    }
    match *bytes.first()? {
        TAG_PULL_REQUEST => Some(MessageKind::PullRequest),
        TAG_PULL_REPLY => Some(MessageKind::PullReply),
        TAG_PUSH_OFFER => Some(MessageKind::PushOffer),
        TAG_PUSH_REPLY => Some(MessageKind::PushReply),
        TAG_PUSH_DATA => Some(MessageKind::PushData),
        _ => None,
    }
}

/// Decodes a datagram payload into a [`GossipMessage`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for any malformed input; decoding never
/// panics regardless of the bytes received.
pub fn decode(bytes: &[u8]) -> Result<GossipMessage, DecodeError> {
    if bytes.len() > MAX_WIRE_LEN {
        return Err(DecodeError::TooLarge);
    }
    let mut buf = Bytes::copy_from_slice(bytes);
    need(&buf, 9)?;
    let tag = buf.get_u8();
    let from = ProcessId(buf.get_u64());
    let msg = match tag {
        TAG_PULL_REQUEST => {
            need(&buf, 8)?;
            let nonce = buf.get_u64();
            let reply_port = get_port(&mut buf)?;
            let digest = get_digest(&mut buf)?;
            GossipMessage::PullRequest {
                from,
                digest,
                reply_port,
                nonce,
            }
        }
        TAG_PULL_REPLY => GossipMessage::PullReply {
            from,
            messages: get_messages(&mut buf)?,
        },
        TAG_PUSH_OFFER => {
            need(&buf, 8)?;
            let nonce = buf.get_u64();
            let reply_port = get_port(&mut buf)?;
            GossipMessage::PushOffer {
                from,
                reply_port,
                nonce,
            }
        }
        TAG_PUSH_REPLY => {
            need(&buf, 8)?;
            let nonce = buf.get_u64();
            let data_port = get_port(&mut buf)?;
            let digest = get_digest(&mut buf)?;
            GossipMessage::PushReply {
                from,
                digest,
                data_port,
                nonce,
            }
        }
        TAG_PUSH_DATA => GossipMessage::PushData {
            from,
            messages: get_messages(&mut buf)?,
        },
        _ => return Err(DecodeError::BadTag),
    };
    if buf.has_remaining() {
        // Trailing garbage: reject, a legitimate sender never produces it.
        return Err(DecodeError::BadTag);
    }
    Ok(msg)
}

/// A packed, MTU-budgeted gossip frame: several whole [`GossipMessage`]s to
/// the same partner coalesced into one datagram, authenticated by a single
/// HMAC from the frame's *sender* (the relaying member) over the whole body.
///
/// ```text
/// [tag=6 u8][sender u64][nonce u64][count u32]
///   count × ([len u32][encoded GossipMessage])
/// [frame auth tag, 32 bytes]
/// ```
///
/// The signed region is everything before the trailing tag (see
/// [`frame_signed_body`]); the tag is computed in the frame HMAC domain
/// ([`drum_crypto::auth::sign_frame_with`]), so it can never be replayed as
/// a data-message tag. Messages are carried whole — a frame changes how
/// bytes travel, never which gossip messages the receiver's engine sees —
/// and nesting is impossible: the inner decoder rejects the frame tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The relaying member that built and signed the frame.
    pub sender: ProcessId,
    /// Sender-chosen nonce, bound into the frame tag.
    pub nonce: u64,
    /// The packed gossip messages, in packing order.
    pub messages: Vec<GossipMessage>,
    /// The frame HMAC over [`frame_signed_body`].
    pub auth: AuthTag,
}

/// Whether a datagram leads with the frame tag (cheap triage; promises
/// nothing about the rest of the bytes).
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.first() == Some(&TAG_FRAME) && bytes.len() <= MAX_WIRE_LEN
}

/// The signed region of a frame datagram: everything before the trailing
/// authentication tag. `None` if the bytes are too short to be a frame.
pub fn frame_signed_body(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < FRAME_HEADER_LEN + FRAME_TAG_LEN {
        return None;
    }
    Some(&bytes[..bytes.len() - FRAME_TAG_LEN])
}

/// Decodes a frame datagram. Purely structural — the caller must still
/// verify [`Frame::auth`] over [`frame_signed_body`] before trusting the
/// inner messages.
///
/// # Errors
///
/// Returns a [`DecodeError`] for any malformed input; decoding never
/// panics regardless of the bytes received.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, DecodeError> {
    if bytes.len() > MAX_WIRE_LEN {
        return Err(DecodeError::TooLarge);
    }
    if bytes.len() < FRAME_HEADER_LEN + FRAME_TAG_LEN {
        return Err(DecodeError::Truncated);
    }
    if bytes[0] != TAG_FRAME {
        return Err(DecodeError::BadTag);
    }
    let u64_at = |off: usize| u64::from_be_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
    let sender = ProcessId(u64_at(1));
    let nonce = u64_at(9);
    let count = u32::from_be_bytes(bytes[17..21].try_into().expect("4 bytes")) as usize;
    if count > MAX_FRAME_MESSAGES {
        return Err(DecodeError::TooLarge);
    }
    let body_end = bytes.len() - FRAME_TAG_LEN;
    let mut off = FRAME_HEADER_LEN;
    let mut messages = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        if body_end - off < FRAME_ITEM_OVERHEAD {
            return Err(DecodeError::Truncated);
        }
        let len = u32::from_be_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        off += FRAME_ITEM_OVERHEAD;
        if len > body_end - off {
            return Err(DecodeError::Truncated);
        }
        // Inner messages go through the ordinary decoder, which rejects the
        // frame tag itself — frames cannot nest.
        messages.push(decode(&bytes[off..off + len])?);
        off += len;
    }
    if off != body_end {
        // Trailing garbage inside the signed body: reject.
        return Err(DecodeError::BadTag);
    }
    let mut tag = [0u8; FRAME_TAG_LEN];
    tag.copy_from_slice(&bytes[body_end..]);
    Ok(Frame {
        sender,
        nonce,
        messages,
        auth: AuthTag(tag),
    })
}

/// Greedy MTU-budgeted packing of gossip messages into [`Frame`] datagrams.
///
/// A sender keeps one builder alive across rounds: [`push`](Self::push)
/// appends messages while they fit the byte budget, [`finish_into`]
/// (Self::finish_into) seals the accumulated messages into one signed frame
/// and resets the builder. All internal buffers grow once and are reused,
/// so steady-state packing allocates nothing.
#[derive(Debug, Default)]
pub struct FrameBuilder {
    /// Length-prefixed encoded messages accumulated for the open frame.
    items: BytesMut,
    /// Scratch for encoding one candidate message.
    scratch: BytesMut,
    count: usize,
}

impl FrameBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Messages accumulated in the open frame.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the open frame holds no messages.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Encoded size of the frame [`finish_into`](Self::finish_into) would
    /// currently produce.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_LEN + self.items.len() + FRAME_TAG_LEN
    }

    /// Tries to append `msg` to the open frame.
    ///
    /// Returns `false` — leaving the frame unchanged — when the frame is at
    /// [`MAX_FRAME_MESSAGES`], or when adding the message would push a
    /// *non-empty* frame over [`FRAME_BUDGET`] (or any frame over
    /// [`MAX_WIRE_LEN`]). The caller then finishes the open frame and
    /// retries. A message that alone exceeds the budget is accepted into an
    /// empty frame: messages are never split.
    pub fn push(&mut self, msg: &GossipMessage) -> bool {
        if self.count >= MAX_FRAME_MESSAGES {
            return false;
        }
        encode_into(msg, &mut self.scratch);
        let added = FRAME_ITEM_OVERHEAD + self.scratch.len();
        let would_be = self.wire_len() + added;
        if would_be > MAX_WIRE_LEN || (self.count > 0 && would_be > FRAME_BUDGET) {
            return false;
        }
        self.items.put_u32(self.scratch.len() as u32);
        self.items.put_slice(&self.scratch[..]);
        self.count += 1;
        true
    }

    /// Seals the open frame into `out` (cleared first) and resets the
    /// builder for the next frame. `sign` receives the signed body (all
    /// frame bytes before the trailing tag) and must return the frame tag —
    /// typically `|body| engine.sign_frame(nonce, body)`. Returns how many
    /// messages the frame carries.
    pub fn finish_into<F>(
        &mut self,
        sender: ProcessId,
        nonce: u64,
        sign: F,
        out: &mut BytesMut,
    ) -> usize
    where
        F: FnOnce(&[u8]) -> AuthTag,
    {
        out.clear();
        out.put_u8(TAG_FRAME);
        out.put_u64(sender.as_u64());
        out.put_u64(nonce);
        out.put_u32(self.count as u32);
        out.put_slice(&self.items[..]);
        let tag = sign(&out[..]);
        out.put_slice(&tag.0);
        let packed = self.count;
        self.items.clear();
        self.count = 0;
        packed
    }

    /// Seals the open frame into `out` with an all-zero tag, for callers
    /// that stage several frames and sign them in one multiway pass
    /// afterwards: the signed body is everything before the trailing
    /// [`FRAME_TAG_LEN`] bytes, which the caller overwrites with the real
    /// tag before transmission. Resets the builder exactly like
    /// [`finish_into`](Self::finish_into) and returns the message count.
    pub fn finish_unsigned_into(
        &mut self,
        sender: ProcessId,
        nonce: u64,
        out: &mut BytesMut,
    ) -> usize {
        self.finish_into(sender, nonce, |_| AuthTag::zero(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drum_crypto::keys::SecretKey;

    fn sample_digest() -> Digest {
        let mut d = Digest::new();
        for (s, q) in [(1u64, 0u64), (1, 1), (1, 5), (9, 3)] {
            d.insert(MessageId::new(ProcessId(s), q));
        }
        d
    }

    fn sample_data(seq: u64) -> DataMessage {
        DataMessage {
            id: MessageId::new(ProcessId(3), seq),
            hops: 4,
            payload: Bytes::from(vec![7u8; 50]),
            auth: AuthTag([9u8; 32]),
        }
    }

    fn sealed_port() -> PortRef {
        let key = SecretKey::from_bytes([2u8; 32]);
        PortRef::Sealed(drum_crypto::seal::seal_port(&key, 77, 50123).unwrap())
    }

    fn round_trip(msg: GossipMessage) {
        let encoded = encode(&msg);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(msg, decoded);
    }

    #[test]
    fn pull_request_round_trip() {
        round_trip(GossipMessage::PullRequest {
            from: ProcessId(5),
            digest: sample_digest(),
            reply_port: sealed_port(),
            nonce: 42,
        });
    }

    #[test]
    fn pull_request_with_plain_and_none_ports() {
        for port in [PortRef::None, PortRef::Plain(8080)] {
            round_trip(GossipMessage::PullRequest {
                from: ProcessId(5),
                digest: Digest::new(),
                reply_port: port,
                nonce: 0,
            });
        }
    }

    #[test]
    fn pull_reply_round_trip() {
        round_trip(GossipMessage::PullReply {
            from: ProcessId(1),
            messages: vec![sample_data(0), sample_data(1)],
        });
    }

    #[test]
    fn push_offer_round_trip() {
        round_trip(GossipMessage::PushOffer {
            from: ProcessId(2),
            reply_port: sealed_port(),
            nonce: 9,
        });
    }

    #[test]
    fn push_reply_round_trip() {
        round_trip(GossipMessage::PushReply {
            from: ProcessId(2),
            digest: sample_digest(),
            data_port: sealed_port(),
            nonce: 11,
        });
    }

    #[test]
    fn push_data_round_trip() {
        round_trip(GossipMessage::PushData {
            from: ProcessId(2),
            messages: vec![sample_data(7)],
        });
    }

    #[test]
    fn empty_messages_round_trip() {
        round_trip(GossipMessage::PullReply {
            from: ProcessId(1),
            messages: vec![],
        });
    }

    #[test]
    fn truncated_inputs_rejected() {
        let encoded = encode(&GossipMessage::PullRequest {
            from: ProcessId(5),
            digest: sample_digest(),
            reply_port: sealed_port(),
            nonce: 42,
        });
        for len in 0..encoded.len() {
            assert!(
                decode(&encoded[..len]).is_err(),
                "prefix of len {len} accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&GossipMessage::PushOffer {
            from: ProcessId(2),
            reply_port: PortRef::None,
            nonce: 0,
        })
        .to_vec();
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::BadTag));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut bytes = encode(&GossipMessage::PushOffer {
            from: ProcessId(2),
            reply_port: PortRef::None,
            nonce: 0,
        })
        .to_vec();
        bytes[0] = 200;
        assert_eq!(decode(&bytes), Err(DecodeError::BadTag));
    }

    #[test]
    fn oversized_counts_rejected() {
        // Hand-craft a pull-reply claiming 2^31 messages.
        let mut out = BytesMut::new();
        out.put_u8(TAG_PULL_REPLY);
        out.put_u64(1);
        out.put_u32(u32::MAX);
        assert_eq!(decode(&out.freeze()), Err(DecodeError::TooLarge));
    }

    #[test]
    fn oversized_datagram_rejected() {
        let huge = vec![0u8; MAX_WIRE_LEN + 1];
        assert_eq!(decode(&huge), Err(DecodeError::TooLarge));
    }

    #[test]
    fn non_canonical_digest_rejected() {
        // Overlapping intervals are invalid on the wire.
        let mut out = BytesMut::new();
        out.put_u8(TAG_PULL_REQUEST);
        out.put_u64(1); // from
        out.put_u64(0); // nonce
        out.put_u8(PORT_NONE);
        out.put_u32(1); // one source
        out.put_u64(7); // source id
        out.put_u32(2); // two intervals
        out.put_u64(0);
        out.put_u64(5);
        out.put_u64(3); // overlaps
        out.put_u64(9);
        assert_eq!(decode(&out.freeze()), Err(DecodeError::BadDigest));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
    }

    fn sign_test_frame(body: &[u8]) -> AuthTag {
        let key = SecretKey::from_bytes([5u8; 32]);
        drum_crypto::auth::sign_frame_with(&key.hmac_key(), 2, 77, body)
    }

    fn build_frame(messages: &[GossipMessage]) -> (Bytes, usize) {
        let mut fb = FrameBuilder::new();
        let mut frames = 0;
        let mut out = BytesMut::new();
        let mut last = Bytes::new();
        for m in messages {
            if !fb.push(m) {
                fb.finish_into(ProcessId(2), 77, sign_test_frame, &mut out);
                frames += 1;
                last = Bytes::copy_from_slice(&out[..]);
                assert!(fb.push(m), "message must fit an empty frame");
            }
        }
        if !fb.is_empty() {
            fb.finish_into(ProcessId(2), 77, sign_test_frame, &mut out);
            frames += 1;
            last = Bytes::copy_from_slice(&out[..]);
        }
        (last, frames)
    }

    #[test]
    fn frame_round_trip() {
        let msgs = vec![
            GossipMessage::PullReply {
                from: ProcessId(2),
                messages: vec![sample_data(0), sample_data(1)],
            },
            GossipMessage::PushData {
                from: ProcessId(2),
                messages: vec![sample_data(7)],
            },
        ];
        let (bytes, frames) = build_frame(&msgs);
        assert_eq!(frames, 1, "two small messages share one frame");
        let frame = decode_frame(&bytes).unwrap();
        assert_eq!(frame.sender, ProcessId(2));
        assert_eq!(frame.nonce, 77);
        assert_eq!(frame.messages, msgs);
        // The tag verifies over the signed body.
        let key = SecretKey::from_bytes([5u8; 32]);
        assert!(drum_crypto::auth::verify_frame_with(
            &key.hmac_key(),
            2,
            77,
            frame_signed_body(&bytes).unwrap(),
            &frame.auth,
        )
        .is_ok());
    }

    #[test]
    fn frame_greedy_fill_respects_budget() {
        // Enough small messages to overflow one budget's worth.
        let msgs: Vec<GossipMessage> = (0..64)
            .map(|q| GossipMessage::PushData {
                from: ProcessId(2),
                messages: vec![sample_data(q)],
            })
            .collect();
        let one = encode(&msgs[0]).len() + FRAME_ITEM_OVERHEAD;
        let per_frame = (FRAME_BUDGET - FRAME_HEADER_LEN - FRAME_TAG_LEN) / one;
        let (_, frames) = build_frame(&msgs);
        assert_eq!(frames, 64usize.div_ceil(per_frame));
        assert!(frames < 64, "packing must beat one datagram per message");

        // Every full frame stays within the budget.
        let mut fb = FrameBuilder::new();
        for m in &msgs {
            if !fb.push(m) {
                assert!(fb.wire_len() <= FRAME_BUDGET);
                let mut out = BytesMut::new();
                fb.finish_into(ProcessId(2), 77, sign_test_frame, &mut out);
                assert!(out.len() <= FRAME_BUDGET);
                assert!(fb.push(m));
            }
        }
    }

    #[test]
    fn oversized_message_gets_its_own_frame() {
        // One message bigger than the budget: accepted alone, never split.
        let big = GossipMessage::PullReply {
            from: ProcessId(2),
            messages: (0..40).map(sample_data).collect(),
        };
        assert!(encode(&big).len() > FRAME_BUDGET);
        let mut fb = FrameBuilder::new();
        assert!(fb.push(&big));
        // ...but nothing more fits once over budget.
        assert!(!fb.push(&GossipMessage::PushData {
            from: ProcessId(2),
            messages: vec![sample_data(0)],
        }));
        let mut out = BytesMut::new();
        assert_eq!(
            fb.finish_into(ProcessId(2), 1, sign_test_frame, &mut out),
            1
        );
        let frame = decode_frame(&out.freeze()).unwrap();
        assert_eq!(frame.messages, vec![big]);
    }

    #[test]
    fn frame_truncated_and_hostile_inputs_rejected() {
        let (bytes, _) = build_frame(&[GossipMessage::PushData {
            from: ProcessId(2),
            messages: vec![sample_data(0)],
        }]);
        for len in 0..bytes.len() {
            assert!(
                decode_frame(&bytes[..len]).is_err(),
                "frame prefix of len {len} accepted"
            );
        }
        // Trailing garbage shifts the tag window: the item walk no longer
        // lands exactly on the signed-body end.
        let mut padded = bytes.to_vec();
        padded.push(0);
        assert!(decode_frame(&padded).is_err());
        // Wrong leading tag.
        let mut wrong = bytes.to_vec();
        wrong[0] = TAG_PUSH_DATA;
        assert_eq!(decode_frame(&wrong), Err(DecodeError::BadTag));
        // Oversized count and oversized datagram.
        let mut out = BytesMut::new();
        out.put_u8(TAG_FRAME);
        out.put_u64(2);
        out.put_u64(0);
        out.put_u32(u32::MAX);
        out.put_slice(&[0u8; FRAME_TAG_LEN]);
        assert_eq!(decode_frame(&out.freeze()), Err(DecodeError::TooLarge));
        assert_eq!(
            decode_frame(&vec![TAG_FRAME; MAX_WIRE_LEN + 1]),
            Err(DecodeError::TooLarge)
        );
        // The ordinary decoder refuses frames (so frames cannot nest), and
        // peek_kind does not classify them as any gossip kind.
        assert_eq!(decode(&bytes), Err(DecodeError::BadTag));
        assert_eq!(peek_kind(&bytes), None);
        assert!(is_frame(&bytes));
        assert!(!is_frame(b""));
        assert!(!is_frame(&[TAG_PUSH_DATA]));
    }

    #[test]
    fn frame_with_corrupt_inner_message_rejected() {
        let (bytes, _) = build_frame(&[GossipMessage::PushData {
            from: ProcessId(2),
            messages: vec![sample_data(0)],
        }]);
        let mut corrupt = bytes.to_vec();
        // First inner byte (right after header + item length prefix).
        corrupt[FRAME_HEADER_LEN + FRAME_ITEM_OVERHEAD] = 200;
        assert!(decode_frame(&corrupt).is_err());
    }

    #[test]
    fn peek_kind_matches_full_decode() {
        use drum_core::message::MessageKind;
        let messages = [
            GossipMessage::PullRequest {
                from: ProcessId(5),
                digest: sample_digest(),
                reply_port: sealed_port(),
                nonce: 42,
            },
            GossipMessage::PullReply {
                from: ProcessId(1),
                messages: vec![sample_data(0)],
            },
            GossipMessage::PushOffer {
                from: ProcessId(2),
                reply_port: PortRef::None,
                nonce: 9,
            },
            GossipMessage::PushReply {
                from: ProcessId(2),
                digest: sample_digest(),
                data_port: sealed_port(),
                nonce: 11,
            },
            GossipMessage::PushData {
                from: ProcessId(2),
                messages: vec![sample_data(7)],
            },
        ];
        for msg in &messages {
            let bytes = encode(msg);
            assert_eq!(peek_kind(&bytes), Some(msg.kind()));
            // The peek only needs the first byte.
            assert_eq!(peek_kind(&bytes[..1]), Some(msg.kind()));
        }
        assert_eq!(peek_kind(&[]), None);
        assert_eq!(peek_kind(&[0]), None);
        assert_eq!(peek_kind(&[200]), None);
        assert_eq!(peek_kind(&vec![1u8; MAX_WIRE_LEN + 1]), None);
        // Tag byte alone decides — garbage after a valid tag still peeks.
        assert_eq!(
            peek_kind(&[TAG_PUSH_DATA, 0xFF, 0xFF]),
            Some(MessageKind::PushData)
        );
    }
}
