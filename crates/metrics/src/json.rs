//! Minimal JSON emit/parse for metrics snapshots.
//!
//! The workspace builds hermetically with no crates.io dependencies, so the
//! serde derives the recorders used to carry are replaced by this small
//! hand-rolled JSON layer. It covers exactly what the metrics types need:
//! objects with a *fixed key order* (so identical runs emit byte-identical
//! snapshots), arrays, finite and non-finite numbers, strings and booleans.
//!
//! Non-finite numbers (`RunningStats` of an empty sample has `min = +inf`)
//! are not representable in JSON; they are emitted as the strings `"inf"`,
//! `"-inf"` and `"nan"`, and [`Json::as_f64`] converts them back.
//!
//! # Examples
//!
//! ```
//! use drum_metrics::json::Json;
//!
//! let v = Json::parse(r#"{"count": 3, "mean": 5.5}"#).unwrap();
//! assert_eq!(v.get("count").and_then(Json::as_u64), Some(3));
//! assert_eq!(v.get("mean").and_then(Json::as_f64), Some(5.5));
//! ```

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Errors from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// An unexpected byte at the given offset.
    Unexpected {
        /// Byte offset into the input.
        at: usize,
    },
    /// A number token that does not parse as `f64`.
    BadNumber {
        /// Byte offset of the token start.
        at: usize,
    },
    /// An invalid `\u` escape or string byte.
    BadString {
        /// Byte offset of the offending sequence.
        at: usize,
    },
    /// A required field was missing or had the wrong type.
    MissingField {
        /// The field name.
        name: &'static str,
    },
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JsonError::UnexpectedEnd => write!(f, "unexpected end of JSON input"),
            JsonError::Unexpected { at } => write!(f, "unexpected character at byte {at}"),
            JsonError::BadNumber { at } => write!(f, "malformed number at byte {at}"),
            JsonError::BadString { at } => write!(f, "malformed string at byte {at}"),
            JsonError::MissingField { name } => write!(f, "missing or mistyped field '{name}'"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Wraps a number, mapping non-finite values to their string spellings.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else if x.is_nan() {
            Json::Str("nan".into())
        } else if x > 0.0 {
            Json::Str("inf".into())
        } else {
            Json::Str("-inf".into())
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, accepting the non-finite string spellings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.007_199_254_740_992e15 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience for decoding: `obj.field("x")?.as_f64()` with a typed
    /// error instead of `Option` chains.
    pub fn field_f64(&self, name: &'static str) -> Result<f64, JsonError> {
        self.get(name)
            .and_then(Json::as_f64)
            .ok_or(JsonError::MissingField { name })
    }

    /// Like [`Json::field_f64`] for integer fields.
    pub fn field_u64(&self, name: &'static str) -> Result<u64, JsonError> {
        self.get(name)
            .and_then(Json::as_u64)
            .ok_or(JsonError::MissingField { name })
    }

    /// Like [`Json::field_f64`] for array fields.
    pub fn field_array(&self, name: &'static str) -> Result<&[Json], JsonError> {
        self.get(name)
            .and_then(Json::as_array)
            .ok_or(JsonError::MissingField { name })
    }

    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::Unexpected { at: pos });
        }
        Ok(value)
    }
}

impl core::fmt::Display for Json {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => write_number(f, *x),
            Json::Str(s) => write_string(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_number(f: &mut core::fmt::Formatter<'_>, x: f64) -> core::fmt::Result {
    if !x.is_finite() {
        // Callers should use Json::num, which maps these to strings; keep
        // the output parseable even if a raw Num sneaks through.
        return write_string(
            f,
            if x.is_nan() {
                "nan"
            } else if x > 0.0 {
                "inf"
            } else {
                "-inf"
            },
        );
    }
    if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", x as i64)
    } else {
        // `{:?}` is Rust's shortest round-tripping float form.
        write!(f, "{x:?}")
    }
}

fn write_string(f: &mut core::fmt::Formatter<'_>, s: &str) -> core::fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos >= bytes.len() {
        return Err(JsonError::UnexpectedEnd);
    }
    if bytes[*pos] != b {
        return Err(JsonError::Unexpected { at: *pos });
    }
    *pos += 1;
    Ok(())
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::UnexpectedEnd),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError::Unexpected { at: *pos }),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    let end = *pos + word.len();
    if end > bytes.len() {
        return Err(JsonError::UnexpectedEnd);
    }
    if &bytes[*pos..end] != word.as_bytes() {
        return Err(JsonError::Unexpected { at: *pos });
    }
    *pos = end;
    Ok(value)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let token = core::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::BadNumber { at: start })?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::BadNumber { at: start })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::UnexpectedEnd),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    None => return Err(JsonError::UnexpectedEnd),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex_start = *pos + 1;
                        let hex = bytes
                            .get(hex_start..hex_start + 4)
                            .ok_or(JsonError::UnexpectedEnd)?;
                        let hex = core::str::from_utf8(hex)
                            .map_err(|_| JsonError::BadString { at: hex_start })?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::BadString { at: hex_start })?;
                        // Surrogates are not emitted by this crate; map them
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    Some(_) => return Err(JsonError::BadString { at: *pos }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = core::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::BadString { at: *pos })?;
                let c = rest.chars().next().ok_or(JsonError::UnexpectedEnd)?;
                if (c as u32) < 0x20 {
                    return Err(JsonError::BadString { at: *pos });
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            Some(_) => return Err(JsonError::Unexpected { at: *pos }),
            None => return Err(JsonError::UnexpectedEnd),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            Some(_) => return Err(JsonError::Unexpected { at: *pos }),
            None => return Err(JsonError::UnexpectedEnd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "2.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":"x\ny"}],"c":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn non_finite_numbers() {
        assert_eq!(Json::num(f64::INFINITY).to_string(), "\"inf\"");
        assert_eq!(
            Json::num(f64::NEG_INFINITY).as_f64(),
            Some(f64::NEG_INFINITY)
        );
        assert!(Json::num(f64::NAN).as_f64().unwrap().is_nan());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("k").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn errors_reported() {
        assert_eq!(Json::parse(""), Err(JsonError::UnexpectedEnd));
        assert_eq!(Json::parse("{"), Err(JsonError::UnexpectedEnd));
        assert!(matches!(
            Json::parse("[1,]"),
            Err(JsonError::Unexpected { .. })
        ));
        assert!(matches!(Json::parse("tru"), Err(JsonError::UnexpectedEnd)));
        assert!(matches!(
            Json::parse("01x"),
            Err(JsonError::Unexpected { .. })
        ));
        assert!(matches!(
            Json::parse("1 2"),
            Err(JsonError::Unexpected { .. })
        ));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("quote\" slash\\ tab\t nl\n ctrl\u{1}".into());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integer_precision_preserved() {
        let big = 9_007_199_254_740_991u64; // 2^53 - 1
        let v = Json::num(big as f64);
        assert_eq!(v.to_string(), big.to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(big));
    }
}
