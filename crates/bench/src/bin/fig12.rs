//! Figure 12: the other two DoS-mitigation measures, ablated.
//!
//! Thin wrapper over [`drum_bench::figures::fig12`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig12(&mut out).expect("write fig12 to stdout");
}
