//! Extension experiment (beyond the paper): does a *mobile* adversary —
//! one that re-draws its target set every k rounds — do better than the
//! paper's static targeting?
//!
//! Intuition from the paper's model says no: none of the protocols keep
//! per-target state the adversary could chase, and against Push/Pull the
//! static attack is what pins the attacked source/receivers down. Moving
//! the attack *releases* its victims.

use drum_bench::{banner, scaled, trials, PROTOCOLS, PROTOCOL_NAMES, SEED};
use drum_metrics::table::Table;
use drum_sim::config::SimConfig;
use drum_sim::runner::run_experiment;

fn main() {
    banner(
        "Extension: rotating adversary",
        "static vs rotating target sets, alpha = 10%, x = 128",
    );
    let trials = trials();
    let n = scaled(120, 1000);

    let mut table = Table::new(
        std::iter::once("rotation".to_string())
            .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
            .collect(),
    );

    for (label, rotate) in [
        ("static (paper)", None),
        ("every 8 rounds", Some(8u32)),
        ("every 4 rounds", Some(4)),
        ("every 2 rounds", Some(2)),
        ("every round", Some(1)),
    ] {
        let mut cells = vec![label.to_string()];
        for &p in &PROTOCOLS {
            let mut cfg = SimConfig::paper_attack(p, n, 128.0);
            cfg.attack.as_mut().unwrap().rotate_every = rotate;
            cfg.max_rounds = 2000;
            let res = run_experiment(&cfg, trials, SEED, 0);
            cells.push(format!("{:.1}", res.mean_rounds()));
        }
        table.row(cells);
    }
    println!("average rounds to 99% of correct processes, n = {n} ({trials} trials)");
    println!("{table}");
    println!(
        "finding: rotation never helps the adversary — for Push and Pull it\n\
         *hurts* the attack (the pinned-down victims get released), and Drum\n\
         is indifferent, as its design predicts."
    );
}
