//! The per-process gossip engine: a transport-agnostic implementation of one
//! Drum/Push/Pull endpoint (§4 of the paper).
//!
//! The engine is driven by the transport (e.g. `drum-net`'s UDP runtime):
//!
//! 1. [`Engine::begin_round`] — starts a local round; returns the
//!    pull-requests and push-offers to transmit, with freshly allocated
//!    (and sealed) random reply ports.
//! 2. [`Engine::handle`] — processes one incoming [`GossipMessage`] under
//!    the round's resource bounds and returns any responses.
//! 3. [`Engine::end_round`] — closes the round: purges the buffer,
//!    increments round counters and reports statistics.
//!
//! The engine never trusts the claimed sender of a wire message; only data
//! message *sources* are authenticated (via `drum-crypto`). Unsolicited
//! push-replies are ignored, reply ports are unsealed with the process's own
//! key, and everything beyond the per-channel bounds is dropped, exactly as
//! the paper prescribes.

use crate::bytes::Bytes;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

use drum_crypto::auth::{AuthError, AuthTag};
use drum_crypto::batch::{BatchVerifier, MacCounters, VerifyRequest};
use drum_crypto::hmac::HmacKey;
use drum_crypto::keys::{KeyStore, SecretKey};
use drum_crypto::multiway::{LaneStats, MacJob, MultiMac};
use drum_crypto::seal;
use drum_trace::{names, trace_event, Counter, Timestamp, Tracer};

use crate::bounds::{Channel, RoundBudget};
use crate::buffer::MessageBuffer;
use crate::config::GossipConfig;
use crate::ids::{MessageId, ProcessId, Round};
use crate::message::{DataMessage, GossipMessage, MessageKind, PortRef};
use crate::view::Membership;

/// What the engine asks the transport for when it needs a fresh local port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortPurpose {
    /// Port awaiting pull-replies.
    PullReply,
    /// Port awaiting push-replies.
    PushReply,
    /// Port awaiting push data messages.
    PushData,
}

/// Transport-supplied allocator of random local ports.
///
/// `drum-net` binds an ephemeral UDP socket and returns its port; tests use
/// a counter. Ports allocated in round `r` may be closed after the
/// configured port lifetime.
pub trait PortOracle {
    /// Returns a fresh local port for `purpose`, open as of round `round`.
    fn allocate_port(&mut self, purpose: PortPurpose, round: Round) -> u16;
}

/// A trivial [`PortOracle`] for tests and simulations: sequential ports.
///
/// Rotation stays inside `[ROTATION_BASE, 65_535)` — the ephemeral range a
/// real transport would draw from. The allocation counter is wider than the
/// port space on purpose: long soak runs allocate far more than 64k ports,
/// and the modular reduction keeps every one of them out of the privileged
/// and system-service ranges below 40 000.
#[derive(Debug, Default)]
pub struct CountingPortOracle {
    next: u64,
}

/// First port a [`CountingPortOracle`] rotation can produce.
pub const ROTATION_BASE: u16 = 40_000;

/// Size of the rotation window `[ROTATION_BASE, 65_535)`. The top port
/// 65 535 is excluded so a wrapped value can never alias the "allocation
/// failed" sentinel arithmetic of transports that offset from the base.
pub const ROTATION_SPAN: u64 = (u16::MAX as u64) - (ROTATION_BASE as u64);

impl PortOracle for CountingPortOracle {
    fn allocate_port(&mut self, _purpose: PortPurpose, _round: Round) -> u16 {
        self.next = self.next.wrapping_add(1);
        ROTATION_BASE + (self.next % ROTATION_SPAN) as u16
    }
}

/// Where the transport should deliver an outbound message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPort {
    /// The destination's well-known pull-request port.
    WellKnownPull,
    /// The destination's well-known push-offer port.
    WellKnownPush,
    /// A specific (previously communicated) port.
    Port(u16),
}

/// An outbound message with routing information.
#[derive(Debug, Clone)]
pub struct Outbound {
    /// Destination process.
    pub to: ProcessId,
    /// Destination port class.
    pub port: SendPort,
    /// The message.
    pub msg: GossipMessage,
}

/// Counters describing what happened during a round (for metrics/tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Messages accepted within budget, by kind.
    pub accepted: [u64; 5],
    /// Messages dropped because a channel budget was exhausted.
    pub dropped_budget: [u64; 5],
    /// Data messages dropped due to failed source authentication.
    pub dropped_auth: u64,
    /// Push-replies dropped because no matching offer was outstanding.
    pub dropped_unsolicited: u64,
    /// New data messages delivered to the application this round.
    pub delivered: u64,
}

impl RoundStats {
    fn kind_index(kind: MessageKind) -> usize {
        match kind {
            MessageKind::PullRequest => 0,
            MessageKind::PullReply => 1,
            MessageKind::PushOffer => 2,
            MessageKind::PushReply => 3,
            MessageKind::PushData => 4,
        }
    }

    /// Accepted count for `kind`.
    pub fn accepted_of(&self, kind: MessageKind) -> u64 {
        self.accepted[Self::kind_index(kind)]
    }

    /// Budget-dropped count for `kind`.
    pub fn dropped_of(&self, kind: MessageKind) -> u64 {
        self.dropped_budget[Self::kind_index(kind)]
    }
}

/// A single gossip endpoint.
pub struct Engine {
    config: GossipConfig,
    membership: Membership,
    buffer: MessageBuffer,
    budget: RoundBudget,
    round: Round,
    next_seq: u64,
    my_key: SecretKey,
    /// Precomputed HMAC schedule for `my_key`; signing a published message
    /// costs no key-schedule work.
    my_auth_key: HmacKey,
    key_store: KeyStore,
    rng: SmallRng,
    /// Processes we sent a push-offer to this round; push-replies from
    /// anyone else are unsolicited and dropped.
    offered_to: HashSet<ProcessId>,
    /// Newly delivered messages awaiting collection by the application.
    delivered: Vec<DataMessage>,
    /// Reusable scratch for pull/push reply selection; grows once to
    /// `max_msgs_per_exchange` and is then recycled every exchange.
    scratch: Vec<DataMessage>,
    /// Per-round statistics.
    stats: RoundStats,
    /// Monotonic seal-nonce counter.
    nonce: u64,
    /// Fallback well-known reply ports for the no-random-ports ablation.
    fixed_pull_reply_port: u16,
    fixed_push_reply_port: u16,
    fixed_push_data_port: u16,
    /// Structured-event emitter (disabled by default: one branch per site).
    tracer: Tracer,
    /// Round-scoped batched MAC verification (`drum_crypto::batch`):
    /// identical `(source, seq, tag)` fan-in within a round pays one HMAC.
    /// `None` runs the behaviorally identical per-datagram fallback
    /// (`DRUM_NET_NO_BATCH=1`).
    verify_cache: Option<BatchVerifier>,
    /// Cached registry handles for the batch-verification counters,
    /// refreshed by [`Engine::set_tracer`] so the hot receive path never
    /// takes the registry lock.
    c_mac_full: Counter,
    c_mac_hits: Counter,
    /// Multiway engine for outbound frame signing
    /// ([`Engine::sign_frames_many`]): all of a round's frame tags run
    /// through the 8-lane kernel in one batch.
    signer: MultiMac,
    /// Cumulative multiway-kernel utilization — verification (harvested
    /// from the batch verifier) plus frame signing — exposed through
    /// [`Engine::lane_stats`] so the transport emits per-round deltas
    /// without re-reading any source twice.
    mac_lane: LaneStats,
}

impl core::fmt::Debug for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("me", &self.membership.me())
            .field("round", &self.round)
            .field("buffered", &self.buffer.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an engine for `membership.me()`.
    ///
    /// `my_key` is this process's secret (also registered in `key_store`);
    /// `seed` makes all random choices reproducible.
    pub fn new(
        config: GossipConfig,
        membership: Membership,
        key_store: KeyStore,
        my_key: SecretKey,
        seed: u64,
    ) -> Self {
        let budget = RoundBudget::for_config(&config);
        let buffer = MessageBuffer::new(config.buffer_rounds);
        let my_auth_key = my_key.hmac_key();
        let tracer = Tracer::disabled();
        let c_mac_full = tracer.registry().counter(names::MAC_FULL_VERIFIES);
        let c_mac_hits = tracer.registry().counter(names::MAC_BATCH_HITS);
        Engine {
            config,
            membership,
            buffer,
            budget,
            round: Round::ZERO,
            next_seq: 0,
            my_key,
            my_auth_key,
            key_store,
            rng: SmallRng::seed_from_u64(seed),
            offered_to: HashSet::new(),
            delivered: Vec::new(),
            scratch: Vec::new(),
            stats: RoundStats::default(),
            nonce: 0,
            fixed_pull_reply_port: crate::WELL_KNOWN_PULL_REPLY_PORT,
            fixed_push_reply_port: crate::WELL_KNOWN_PUSH_REPLY_PORT,
            fixed_push_data_port: crate::WELL_KNOWN_PUSH_DATA_PORT,
            tracer,
            verify_cache: if std::env::var_os("DRUM_NET_NO_BATCH").is_some() {
                None
            } else {
                Some(BatchVerifier::new())
            },
            c_mac_full,
            c_mac_hits,
            signer: MultiMac::new(),
            mac_lane: LaneStats::default(),
        }
    }

    /// Attaches a tracer; engine events use round-numbered timestamps so
    /// fixed-seed runs trace byte-identically.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.c_mac_full = self.tracer.registry().counter(names::MAC_FULL_VERIFIES);
        self.c_mac_hits = self.tracer.registry().counter(names::MAC_BATCH_HITS);
    }

    /// Forces the batched verification path on or off, overriding the
    /// `DRUM_NET_NO_BATCH` environment default picked up by [`Engine::new`].
    /// Tests use this to compare the two paths side by side.
    pub fn set_batch_verify(&mut self, enabled: bool) {
        if enabled == self.verify_cache.is_some() {
            return;
        }
        self.verify_cache = enabled.then(BatchVerifier::new);
    }

    /// Whether received data messages go through the batched verifier.
    pub fn batch_verify_enabled(&self) -> bool {
        self.verify_cache.is_some()
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    #[inline]
    fn now(&self) -> Timestamp {
        Timestamp::Round(self.round.as_u64())
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.membership.me()
    }

    /// Current local round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Read access to the message buffer.
    pub fn buffer(&self) -> &MessageBuffer {
        &self.buffer
    }

    /// Mutable access to the membership list (join/leave events).
    pub fn membership_mut(&mut self) -> &mut Membership {
        &mut self.membership
    }

    /// Read access to the membership list.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Statistics of the round in progress.
    pub fn stats(&self) -> &RoundStats {
        &self.stats
    }

    /// Remaining acceptance capacity on `channel` for the current round.
    ///
    /// Transports use this to stop reading a well-known socket once its
    /// budget is exhausted — the excess stays queued in (and eventually
    /// overflows) the OS buffer, which is exactly the paper's
    /// "discard all unread messages" semantics on a real network stack.
    pub fn remaining_budget(&self, channel: Channel) -> usize {
        self.budget.remaining(channel)
    }

    /// Overrides the fixed reply/data ports used when `random_ports` is
    /// disabled (the Figure 12(a) ablation). A real transport binds actual
    /// sockets for these and registers their port numbers here; the
    /// defaults are only meaningful for abstract transports.
    pub fn set_fixed_ports(&mut self, pull_reply: u16, push_reply: u16, push_data: u16) {
        self.fixed_pull_reply_port = pull_reply;
        self.fixed_push_reply_port = push_reply;
        self.fixed_push_data_port = push_data;
    }

    /// Originates a new multicast message with this process as source.
    /// The message is signed, buffered and will gossip from the next
    /// exchange on. Returns its id.
    pub fn publish(&mut self, payload: Bytes) -> MessageId {
        let id = MessageId::new(self.me(), self.next_seq);
        self.next_seq += 1;
        let mut msg = DataMessage::sign_new_with(&self.my_auth_key, id, payload);
        // §8.1: the source logs 0 and immediately increases the counter to 1.
        msg.hops = 1;
        self.buffer.insert(msg, self.round);
        trace_event!(
            self.tracer,
            "engine",
            "publish",
            self.now(),
            me = self.me().as_u64(),
            seq = id.seq
        );
        id
    }

    /// Drains messages newly delivered to the application.
    pub fn take_delivered(&mut self) -> Vec<DataMessage> {
        core::mem::take(&mut self.delivered)
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce += 1;
        (self.round.as_u64() << 20) | (self.nonce & 0xFFFFF)
    }

    /// Allocates a nonce for an outbound gossip frame. Frames share the
    /// sealed-port nonce counter, so every authenticated artifact this
    /// process emits in a round carries a distinct nonce.
    pub fn frame_nonce(&mut self) -> u64 {
        self.next_nonce()
    }

    /// Signs a frame body with this process's own key in the frame HMAC
    /// domain (see `drum_crypto::auth::sign_frame_with`). The transport
    /// calls this once per packed datagram, amortizing authentication
    /// across every data message inside.
    pub fn sign_frame(&self, nonce: u64, body: &[u8]) -> AuthTag {
        drum_crypto::auth::sign_frame_with(&self.my_auth_key, self.me().as_u64(), nonce, body)
    }

    /// Verifies a received frame's tag against `from`'s registered key.
    ///
    /// On the batched path the verdict is cached per round and per
    /// `(sender, nonce, tag)` in the frame domain, so identical flood
    /// fan-in of a captured frame pays one HMAC.
    ///
    /// # Errors
    ///
    /// Propagates [`AuthError`] for unknown senders and forged tags;
    /// callers must drop the whole frame on any error.
    pub fn verify_frame(
        &mut self,
        from: ProcessId,
        nonce: u64,
        body: &[u8],
        tag: &AuthTag,
    ) -> Result<(), AuthError> {
        let (verdict, counters) = match self.verify_cache.as_mut() {
            Some(cache) => {
                let verdict = cache.verify_frame(&self.key_store, from.as_u64(), nonce, body, tag);
                (verdict, Some(cache.take_counters()))
            }
            None => (
                drum_crypto::auth::verify_frame(&self.key_store, from.as_u64(), nonce, body, tag),
                None,
            ),
        };
        if let Some(counters) = counters {
            self.harvest_mac_counters(counters);
        }
        verdict
    }

    /// Verifies a whole drain's worth of frame tags in one multiway pass,
    /// appending per-frame verdicts to `verdicts` in order. Each element of
    /// `frames` is `(sender, nonce, signed body, tag)`. Decision- and
    /// counter-identical to calling [`Engine::verify_frame`] per frame in
    /// order; on the batched path the unique frames accumulate into 8-wide
    /// kernel lanes instead of paying one HMAC at a time.
    pub fn verify_frames_many(
        &mut self,
        frames: &[(ProcessId, u64, &[u8], AuthTag)],
        verdicts: &mut Vec<Result<(), AuthError>>,
    ) {
        let counters = match self.verify_cache.as_mut() {
            Some(cache) => {
                let reqs: Vec<VerifyRequest<'_>> = frames
                    .iter()
                    .map(|(from, nonce, body, tag)| VerifyRequest {
                        frame: true,
                        source: from.as_u64(),
                        seq: *nonce,
                        payload: body,
                        tag: *tag,
                    })
                    .collect();
                cache.verify_many(&self.key_store, &reqs, verdicts);
                Some(cache.take_counters())
            }
            None => {
                verdicts.clear();
                verdicts.extend(frames.iter().map(|(from, nonce, body, tag)| {
                    drum_crypto::auth::verify_frame(
                        &self.key_store,
                        from.as_u64(),
                        *nonce,
                        body,
                        tag,
                    )
                }));
                None
            }
        };
        if let Some(counters) = counters {
            self.harvest_mac_counters(counters);
        }
    }

    /// Signs many frame bodies with this process's key in one multiway
    /// pass, appending the tags to `out` in job order. Each element of
    /// `jobs` is `(nonce, body)`. Tags are bit-identical to calling
    /// [`Engine::sign_frame`] per body.
    pub fn sign_frames_many(&mut self, jobs: &[(u64, &[u8])], out: &mut Vec<AuthTag>) {
        let me = self.membership.me().as_u64();
        let mac_jobs: Vec<MacJob<'_>> = jobs
            .iter()
            .map(|(nonce, body)| drum_crypto::auth::frame_job(&self.my_auth_key, me, *nonce, body))
            .collect();
        drum_crypto::auth::sign_many(&mut self.signer, &mac_jobs, out);
        self.mac_lane.merge(self.signer.take_stats());
    }

    /// Folds one counter harvest into the registry handles and the
    /// cumulative lane totals.
    fn harvest_mac_counters(&mut self, counters: MacCounters) {
        self.c_mac_full.add(counters.full_verifies);
        self.c_mac_hits.add(counters.batch_hits);
        self.mac_lane.merge(LaneStats {
            compress_calls: counters.compress_calls,
            lanes_filled: counters.lanes_filled,
        });
    }

    /// Cumulative multiway-kernel counters — batched verification plus
    /// frame signing — since engine creation. Monotone, so per-round deltas
    /// are well defined for registry emission.
    pub fn lane_stats(&self) -> LaneStats {
        self.mac_lane
    }

    /// Seals `port` for `to` if random ports are enabled (and the peer key
    /// is known); otherwise returns a plaintext port reference.
    fn port_ref_for(&mut self, to: ProcessId, port: u16) -> (PortRef, u64) {
        let nonce = self.next_nonce();
        if self.config.random_ports {
            if let Ok(key) = self.key_store.key_of(to.as_u64()) {
                if let Ok(sealed) = seal::seal_port(&key, nonce, port) {
                    return (PortRef::Sealed(sealed), nonce);
                }
            }
        }
        (PortRef::Plain(port), nonce)
    }

    /// Recovers a reply port sent to us. Sealed ports are opened with our
    /// own key; plain ports are used as-is. `None` means the message was
    /// malformed (bad seal) and must be dropped.
    fn resolve_port(&self, port: &PortRef) -> Option<u16> {
        match port {
            PortRef::None => None,
            PortRef::Plain(p) => Some(*p),
            PortRef::Sealed(sealed) => seal::open_port(&self.my_key, sealed).ok(),
        }
    }

    /// Starts a new local round.
    ///
    /// Resets budgets (discarding "unread" capacity), samples this round's
    /// views and returns the pull-requests and push-offers to send. The
    /// `oracle` supplies fresh random local ports; when the configuration
    /// disables random ports, fixed well-known ports are used instead
    /// (Figure 12(a) ablation).
    pub fn begin_round<O: PortOracle>(&mut self, oracle: &mut O) -> Vec<Outbound> {
        self.round = self.round.next();
        self.budget.reset();
        self.stats = RoundStats::default();
        self.offered_to.clear();
        if let Some(cache) = self.verify_cache.as_mut() {
            cache.begin_round();
        }
        self.buffer.increment_hops();
        self.buffer.purge(self.round);

        let views = self.membership.sample_round_views(
            self.config.view_push_size(),
            self.config.view_pull_size(),
            &mut self.rng,
        );

        trace_event!(
            self.tracer,
            "engine",
            "round.begin",
            self.now(),
            me = self.me().as_u64(),
            pull = views.pull.len(),
            push = views.push.len(),
            buffered = self.buffer.len()
        );

        let mut out = Vec::with_capacity(views.push.len() + views.pull.len());

        for target in views.pull {
            let port = if self.config.random_ports {
                oracle.allocate_port(PortPurpose::PullReply, self.round)
            } else {
                self.fixed_pull_reply_port
            };
            let (reply_port, nonce) = self.port_ref_for(target, port);
            out.push(Outbound {
                to: target,
                port: SendPort::WellKnownPull,
                msg: GossipMessage::PullRequest {
                    from: self.me(),
                    digest: self.buffer.digest(),
                    reply_port,
                    nonce,
                },
            });
        }

        for target in views.push {
            self.offered_to.insert(target);
            let port = if self.config.random_ports {
                oracle.allocate_port(PortPurpose::PushReply, self.round)
            } else {
                self.fixed_push_reply_port
            };
            let (reply_port, nonce) = self.port_ref_for(target, port);
            out.push(Outbound {
                to: target,
                port: SendPort::WellKnownPush,
                msg: GossipMessage::PushOffer {
                    from: self.me(),
                    reply_port,
                    nonce,
                },
            });
        }

        out
    }

    /// Processes one incoming message, applying resource bounds, and
    /// returns any responses to transmit.
    pub fn handle<O: PortOracle>(
        &mut self,
        incoming: GossipMessage,
        oracle: &mut O,
    ) -> Vec<Outbound> {
        let mut out = Vec::new();
        self.handle_into(incoming, oracle, &mut out);
        out
    }

    /// Like [`Engine::handle`], but appends responses to a caller-owned
    /// vector so transports can reuse one allocation across the many
    /// messages of a poll iteration.
    pub fn handle_into<O: PortOracle>(
        &mut self,
        incoming: GossipMessage,
        oracle: &mut O,
        out: &mut Vec<Outbound>,
    ) {
        self.dispatch(incoming, oracle, out, false);
    }

    /// Like [`Engine::handle_into`], but for messages unpacked from an
    /// already-authenticated gossip frame: per-message source MACs are
    /// skipped because a valid frame tag proves an honest member built the
    /// frame, and honest members only pack messages they already verified
    /// on receipt (or signed themselves). Budgets, de-duplication,
    /// statistics and delivery are identical to the normal path.
    pub fn handle_into_preverified<O: PortOracle>(
        &mut self,
        incoming: GossipMessage,
        oracle: &mut O,
        out: &mut Vec<Outbound>,
    ) {
        self.dispatch(incoming, oracle, out, true);
    }

    fn dispatch<O: PortOracle>(
        &mut self,
        incoming: GossipMessage,
        oracle: &mut O,
        out: &mut Vec<Outbound>,
        pre_verified: bool,
    ) {
        let kind = incoming.kind();
        let channel = Channel::for_kind(kind);
        if !self.budget.try_accept(channel) {
            self.stats.dropped_budget[RoundStats::kind_index(kind)] += 1;
            // Edge-triggered: one `budget.exhausted` event per channel per
            // round, when its first message is refused. Per-drop events
            // would let an attacker amplify flood traffic into tracing
            // work; the full drop counts appear in `round.end` instead.
            if self.stats.dropped_budget[RoundStats::kind_index(kind)] == 1 {
                trace_event!(
                    self.tracer,
                    "engine",
                    "budget.exhausted",
                    self.now(),
                    me = self.me().as_u64(),
                    kind = kind.name()
                );
            }
            return;
        }
        self.stats.accepted[RoundStats::kind_index(kind)] += 1;
        trace_event!(
            self.tracer,
            "engine",
            "msg.accept",
            self.now(),
            me = self.me().as_u64(),
            kind = kind.name()
        );

        match incoming {
            GossipMessage::PullRequest {
                from,
                digest,
                reply_port,
                ..
            } => {
                let Some(port) = self.resolve_port(&reply_port) else {
                    return;
                };
                self.buffer.select_missing_into(
                    &digest,
                    self.config.max_msgs_per_exchange,
                    &mut self.rng,
                    &mut self.scratch,
                );
                out.push(Outbound {
                    to: from,
                    port: SendPort::Port(port),
                    msg: GossipMessage::PullReply {
                        from: self.me(),
                        messages: self.scratch.clone(),
                    },
                });
            }
            GossipMessage::PushOffer {
                from, reply_port, ..
            } => {
                let Some(port) = self.resolve_port(&reply_port) else {
                    return;
                };
                let data_port = if self.config.random_ports {
                    oracle.allocate_port(PortPurpose::PushData, self.round)
                } else {
                    self.fixed_push_data_port
                };
                let (data_port_ref, nonce) = self.port_ref_for(from, data_port);
                out.push(Outbound {
                    to: from,
                    port: SendPort::Port(port),
                    msg: GossipMessage::PushReply {
                        from: self.me(),
                        digest: self.buffer.digest(),
                        data_port: data_port_ref,
                        nonce,
                    },
                });
            }
            GossipMessage::PushReply {
                from,
                digest,
                data_port,
                ..
            } => {
                if !self.offered_to.contains(&from) {
                    self.stats.dropped_unsolicited += 1;
                    trace_event!(
                        self.tracer,
                        "engine",
                        "push_reply.unsolicited",
                        self.now(),
                        me = self.me().as_u64(),
                        from = from.as_u64()
                    );
                    return;
                }
                // One reply per offer.
                self.offered_to.remove(&from);
                let Some(port) = self.resolve_port(&data_port) else {
                    return;
                };
                self.buffer.select_missing_into(
                    &digest,
                    self.config.max_msgs_per_exchange,
                    &mut self.rng,
                    &mut self.scratch,
                );
                if self.scratch.is_empty() {
                    return;
                }
                out.push(Outbound {
                    to: from,
                    port: SendPort::Port(port),
                    msg: GossipMessage::PushData {
                        from: self.me(),
                        messages: self.scratch.clone(),
                    },
                });
            }
            GossipMessage::PullReply { messages, .. }
            | GossipMessage::PushData { messages, .. } => {
                self.receive_data(messages, pre_verified);
            }
        }
    }

    /// Verifies, de-duplicates and delivers incoming data messages.
    ///
    /// On the batched path, this round's verdicts are cached per
    /// `(source, seq, tag)` so identical flood fan-in — which `recvmmsg`
    /// delivers many datagrams at a time — pays one HMAC per unique triple.
    /// Verdicts are applied in arrival order, so `RoundStats`, delivery
    /// order and trace events are byte-identical to the per-datagram
    /// fallback; only the HMAC count differs.
    fn receive_data(&mut self, messages: Vec<DataMessage>, pre_verified: bool) {
        // Batched path: resolve every verdict for this delivery in one
        // multiway pass up front, so unique claims share 8-wide kernel
        // lanes. Stats, trace events and delivery then apply in arrival
        // order below, exactly as the sequential path would.
        let verdicts: Option<Vec<Result<(), AuthError>>> =
            match (self.verify_cache.as_mut(), pre_verified) {
                (Some(cache), false) => {
                    let reqs: Vec<VerifyRequest<'_>> = messages
                        .iter()
                        .map(|msg| VerifyRequest {
                            frame: false,
                            source: msg.id.source.as_u64(),
                            seq: msg.id.seq,
                            payload: &msg.payload,
                            tag: msg.auth,
                        })
                        .collect();
                    let mut out = Vec::with_capacity(reqs.len());
                    cache.verify_many(&self.key_store, &reqs, &mut out);
                    Some(out)
                }
                _ => None,
            };
        for (i, msg) in messages.into_iter().enumerate() {
            // Sanity checks (§4): source must authenticate. Messages
            // unpacked from an authenticated frame arrive pre-verified —
            // the frame tag already vouches for them (MABS-style
            // amortization), so no per-message HMAC runs.
            let verdict = if pre_verified {
                Ok(())
            } else if let Some(verdicts) = &verdicts {
                verdicts[i]
            } else {
                msg.verify(&self.key_store)
            };
            if verdict.is_err() {
                self.stats.dropped_auth += 1;
                trace_event!(
                    self.tracer,
                    "engine",
                    "auth.drop",
                    self.now(),
                    me = self.me().as_u64(),
                    source = msg.id.source.as_u64(),
                    seq = msg.id.seq
                );
                continue;
            }
            if self.buffer.insert(msg.clone(), self.round) {
                self.stats.delivered += 1;
                trace_event!(
                    self.tracer,
                    "engine",
                    "buffer.admit",
                    self.now(),
                    me = self.me().as_u64(),
                    source = msg.id.source.as_u64(),
                    seq = msg.id.seq,
                    hops = u64::from(msg.hops)
                );
                self.delivered.push(msg);
            }
        }
        // Export the verifier's counters into the registry. Zero on the
        // fallback path, mirroring `net.batch_fill`'s mode signal.
        let counters = self.verify_cache.as_mut().map(BatchVerifier::take_counters);
        if let Some(counters) = counters {
            self.harvest_mac_counters(counters);
        }
    }

    /// Ends the round and returns its statistics. (The budget is reset at
    /// the *start* of the next round, so late messages of this round are
    /// still counted against it, matching the discard-unread semantics.)
    pub fn end_round(&mut self) -> RoundStats {
        trace_event!(
            self.tracer,
            "engine",
            "round.end",
            self.now(),
            me = self.me().as_u64(),
            accepted = self.stats.accepted.iter().sum::<u64>(),
            dropped_budget = self.stats.dropped_budget.iter().sum::<u64>(),
            dropped_auth = self.stats.dropped_auth,
            delivered = self.stats.delivered
        );
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolVariant;
    use crate::digest::Digest;

    fn setup(n: u64, variant: ProtocolVariant) -> (Vec<Engine>, KeyStore) {
        let store = KeyStore::new(7);
        let members: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let mut engines = Vec::new();
        for &m in &members {
            let key = store.register(m.as_u64());
            let config = match variant {
                ProtocolVariant::Drum => GossipConfig::drum(),
                ProtocolVariant::Push => GossipConfig::push(),
                ProtocolVariant::Pull => GossipConfig::pull(),
            };
            engines.push(Engine::new(
                config,
                Membership::new(m, members.clone()),
                store.clone(),
                key,
                m.as_u64() + 1,
            ));
        }
        (engines, store)
    }

    /// Routes messages between engines for `rounds` rounds with no loss.
    fn run_rounds(engines: &mut [Engine], rounds: usize) {
        let mut oracle = CountingPortOracle::default();
        for _ in 0..rounds {
            let mut inflight: Vec<Outbound> = Vec::new();
            let me_of = |o: &Outbound| o.to.as_u64() as usize;
            for e in engines.iter_mut() {
                inflight.extend(e.begin_round(&mut oracle));
            }
            // Settle all cascades within the round.
            while !inflight.is_empty() {
                let mut next = Vec::new();
                for out in inflight {
                    let idx = me_of(&out);
                    next.extend(engines[idx].handle(out.msg, &mut oracle));
                }
                inflight = next;
            }
            for e in engines.iter_mut() {
                e.end_round();
            }
        }
    }

    #[test]
    fn publish_buffers_and_signs() {
        let (mut engines, store) = setup(2, ProtocolVariant::Drum);
        let id = engines[0].publish(Bytes::from_static(b"hello"));
        assert!(engines[0].buffer().contains(id));
        assert!(engines[0].buffer().get(id).unwrap().verify(&store).is_ok());
        assert_eq!(engines[0].buffer().get(id).unwrap().hops, 1);
    }

    #[test]
    fn drum_disseminates_to_all() {
        let (mut engines, _) = setup(8, ProtocolVariant::Drum);
        let id = engines[0].publish(Bytes::from_static(b"m"));
        run_rounds(&mut engines, 10);
        for e in &engines {
            assert!(e.buffer().seen(id), "{:?} missing message", e.me());
        }
    }

    #[test]
    fn push_disseminates_to_all() {
        let (mut engines, _) = setup(8, ProtocolVariant::Push);
        let id = engines[0].publish(Bytes::from_static(b"m"));
        run_rounds(&mut engines, 12);
        for e in &engines {
            assert!(e.buffer().seen(id));
        }
    }

    #[test]
    fn pull_disseminates_to_all() {
        let (mut engines, _) = setup(8, ProtocolVariant::Pull);
        let id = engines[0].publish(Bytes::from_static(b"m"));
        run_rounds(&mut engines, 15);
        for e in &engines {
            assert!(e.buffer().seen(id));
        }
    }

    #[test]
    fn delivery_reported_once() {
        let (mut engines, _) = setup(4, ProtocolVariant::Drum);
        engines[0].publish(Bytes::from_static(b"m"));
        run_rounds(&mut engines, 8);
        let delivered = engines[1].take_delivered();
        assert_eq!(delivered.len(), 1);
        // Draining twice yields nothing new.
        assert!(engines[1].take_delivered().is_empty());
    }

    #[test]
    fn forged_data_rejected() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let fake = DataMessage {
            id: MessageId::new(ProcessId(0), 99),
            hops: 0,
            payload: Bytes::from_static(b"forged"),
            auth: drum_crypto::auth::AuthTag::zero(),
        };
        let mut oracle = CountingPortOracle::default();
        engines[1].begin_round(&mut oracle);
        engines[1].handle(
            GossipMessage::PushData {
                from: ProcessId(0),
                messages: vec![fake.clone()],
            },
            &mut oracle,
        );
        assert!(!engines[1].buffer().seen(fake.id));
        assert_eq!(engines[1].stats().dropped_auth, 1);
    }

    #[test]
    fn budget_drops_flood() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let mut oracle = CountingPortOracle::default();
        engines[0].begin_round(&mut oracle);
        // Flood the pull port with 50 requests: only F/2 = 2 accepted.
        let mut responses = 0;
        for i in 0..50 {
            let req = GossipMessage::PullRequest {
                from: ProcessId(1),
                digest: Digest::new(),
                reply_port: PortRef::Plain(1000 + i),
                nonce: i as u64,
            };
            responses += engines[0].handle(req, &mut oracle).len();
        }
        assert_eq!(responses, 2);
        assert_eq!(engines[0].stats().accepted_of(MessageKind::PullRequest), 2);
        assert_eq!(engines[0].stats().dropped_of(MessageKind::PullRequest), 48);
    }

    #[test]
    fn unsolicited_push_reply_dropped() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let mut oracle = CountingPortOracle::default();
        engines[0].begin_round(&mut oracle);
        let reply = GossipMessage::PushReply {
            from: ProcessId(1),
            digest: Digest::new(),
            data_port: PortRef::Plain(5000),
            nonce: 0,
        };
        // Engine 0 never offered to p1 in this contrived setup... unless the
        // random view picked it. Force the situation by clearing:
        engines[0].offered_to.clear();
        let out = engines[0].handle(reply, &mut oracle);
        assert!(out.is_empty());
        assert_eq!(engines[0].stats().dropped_unsolicited, 1);
    }

    #[test]
    fn push_reply_accepted_only_once_per_offer() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        engines[0].publish(Bytes::from_static(b"m"));
        let mut oracle = CountingPortOracle::default();
        engines[0].begin_round(&mut oracle);
        engines[0].offered_to.insert(ProcessId(1));
        let reply = || GossipMessage::PushReply {
            from: ProcessId(1),
            digest: Digest::new(),
            data_port: PortRef::Plain(5000),
            nonce: 0,
        };
        let first = engines[0].handle(reply(), &mut oracle);
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0].msg, GossipMessage::PushData { .. }));
        let second = engines[0].handle(reply(), &mut oracle);
        assert!(second.is_empty());
    }

    #[test]
    fn sealed_ports_used_when_enabled() {
        let (mut engines, _) = setup(3, ProtocolVariant::Drum);
        let mut oracle = CountingPortOracle::default();
        let out = engines[0].begin_round(&mut oracle);
        assert!(!out.is_empty());
        for o in &out {
            match &o.msg {
                GossipMessage::PullRequest { reply_port, .. }
                | GossipMessage::PushOffer { reply_port, .. } => {
                    assert!(reply_port.is_sealed(), "port must be sealed: {o:?}");
                }
                other => panic!("unexpected round-start message {other:?}"),
            }
        }
    }

    #[test]
    fn plain_ports_when_random_ports_disabled() {
        let store = KeyStore::new(7);
        let members: Vec<ProcessId> = (0..3).map(ProcessId).collect();
        let key = store.register(0);
        for m in &members {
            store.register(m.as_u64());
        }
        let mut engine = Engine::new(
            GossipConfig::drum().with_random_ports(false),
            Membership::new(ProcessId(0), members),
            store,
            key,
            1,
        );
        let mut oracle = CountingPortOracle::default();
        let out = engine.begin_round(&mut oracle);
        for o in &out {
            match &o.msg {
                GossipMessage::PullRequest { reply_port, .. }
                | GossipMessage::PushOffer { reply_port, .. } => {
                    assert!(matches!(reply_port, PortRef::Plain(_)));
                }
                other => panic!("unexpected message {other:?}"),
            }
        }
    }

    #[test]
    fn round_advances_and_budget_resets() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let mut oracle = CountingPortOracle::default();
        assert_eq!(engines[0].round(), Round(0));
        engines[0].begin_round(&mut oracle);
        assert_eq!(engines[0].round(), Round(1));
        // Exhaust pull budget.
        for i in 0..10 {
            engines[0].handle(
                GossipMessage::PullRequest {
                    from: ProcessId(1),
                    digest: Digest::new(),
                    reply_port: PortRef::Plain(i),
                    nonce: 0,
                },
                &mut oracle,
            );
        }
        engines[0].end_round();
        engines[0].begin_round(&mut oracle);
        // Fresh budget accepts again.
        let out = engines[0].handle(
            GossipMessage::PullRequest {
                from: ProcessId(1),
                digest: Digest::new(),
                reply_port: PortRef::Plain(1),
                nonce: 0,
            },
            &mut oracle,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn buffer_purges_after_configured_rounds() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let id = engines[0].publish(Bytes::from_static(b"m"));
        let mut oracle = CountingPortOracle::default();
        for _ in 0..11 {
            engines[0].begin_round(&mut oracle);
            engines[0].end_round();
        }
        assert!(!engines[0].buffer().contains(id));
        assert!(engines[0].buffer().seen(id));
    }

    #[test]
    fn tracer_records_budget_drops_and_round_lifecycle() {
        use drum_trace::{MemorySink, Tracer, Value};
        use std::sync::Arc;

        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let sink = Arc::new(MemorySink::new());
        engines[0].set_tracer(Tracer::new(sink.clone()));
        let mut oracle = CountingPortOracle::default();
        engines[0].begin_round(&mut oracle);
        for i in 0..10 {
            engines[0].handle(
                GossipMessage::PullRequest {
                    from: ProcessId(1),
                    digest: Digest::new(),
                    reply_port: PortRef::Plain(1000 + i),
                    nonce: i as u64,
                },
                &mut oracle,
            );
        }
        let stats = engines[0].end_round();

        let events = sink.take();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count() as u64;
        assert_eq!(count("round.begin"), 1);
        assert_eq!(count("round.end"), 1);
        // Bound exhaustion is edge-triggered: exactly one event for the
        // flooded pull-request channel no matter how many drops occurred.
        assert!(stats.dropped_of(MessageKind::PullRequest) > 1);
        assert_eq!(count("budget.exhausted"), 1);
        assert_eq!(
            count("msg.accept"),
            stats.accepted_of(MessageKind::PullRequest)
        );
        // Every engine event carries the emitting process id.
        for e in &events {
            assert_eq!(e.target, "engine");
            assert_eq!(e.field("me"), Some(&Value::U64(0)));
        }
    }

    #[test]
    fn pull_reply_respects_exchange_cap() {
        let store = KeyStore::new(7);
        let members: Vec<ProcessId> = (0..2).map(ProcessId).collect();
        let k0 = store.register(0);
        store.register(1);
        let mut engine = Engine::new(
            GossipConfig::drum().with_max_msgs_per_exchange(3),
            Membership::new(ProcessId(0), members),
            store,
            k0,
            1,
        );
        for _ in 0..10 {
            engine.publish(Bytes::from_static(b"m"));
        }
        let mut oracle = CountingPortOracle::default();
        engine.begin_round(&mut oracle);
        let out = engine.handle(
            GossipMessage::PullRequest {
                from: ProcessId(1),
                digest: Digest::new(),
                reply_port: PortRef::Plain(9),
                nonce: 0,
            },
            &mut oracle,
        );
        match &out[0].msg {
            GossipMessage::PullReply { messages, .. } => assert_eq!(messages.len(), 3),
            other => panic!("expected pull-reply, got {other:?}"),
        }
    }

    #[test]
    fn counting_oracle_never_leaves_rotation_window() {
        // Regression: the oracle used to compute `40_000u16.wrapping_add(n)`
        // with a u16 counter, so allocation ~25.5k wrapped past 65 535 into
        // the privileged port range. Drive well past both the old port-space
        // wrap (25 535 allocations) and the old counter wrap (65 535).
        let mut oracle = CountingPortOracle::default();
        let mut first_window = Vec::with_capacity(4);
        for i in 0u64..70_000 {
            let port = oracle.allocate_port(PortPurpose::PullReply, Round(0));
            assert!(
                (ROTATION_BASE..u16::MAX).contains(&port),
                "allocation {i} escaped the rotation window: {port}"
            );
            if i < 4 {
                first_window.push(port);
            }
        }
        // Unchanged low-allocation behavior: sequential from the base.
        assert_eq!(first_window, vec![40_001, 40_002, 40_003, 40_004]);
        // The rotation really cycles (modular, not saturating): after one
        // full span the sequence returns to the base of the window.
        let mut fresh = CountingPortOracle::default();
        for _ in 0..ROTATION_SPAN {
            fresh.allocate_port(PortPurpose::PushData, Round(0));
        }
        assert_eq!(
            fresh.allocate_port(PortPurpose::PushData, Round(0)),
            40_001,
            "one full span must wrap back to the first port"
        );
    }

    /// A hostile data batch: a valid message, duplicate fan-in of it, a
    /// payload-tampered copy, an outright forgery, and repeats of each —
    /// the mix a flooded receiver actually drains out of `recvmmsg`.
    fn hostile_mix(publisher: &mut Engine) -> Vec<DataMessage> {
        let id = publisher.publish(Bytes::from_static(b"real"));
        let real = publisher.buffer().get(id).unwrap().clone();
        let mut tampered = real.clone();
        tampered.payload = Bytes::from_static(b"tampered");
        let forged = DataMessage {
            id: MessageId::new(ProcessId(0), 77),
            hops: 0,
            payload: Bytes::from_static(b"forged"),
            auth: drum_crypto::auth::AuthTag::zero(),
        };
        vec![
            real.clone(),
            real.clone(),
            tampered.clone(),
            forged.clone(),
            real,
            tampered,
            forged,
        ]
    }

    #[test]
    fn batched_verification_matches_per_datagram_path() {
        // Two identically seeded instances; only the verification path
        // differs. Accept/reject decisions, stats and delivery must match.
        let (mut batched, _) = setup(2, ProtocolVariant::Drum);
        let (mut fallback, _) = setup(2, ProtocolVariant::Drum);
        batched[1].set_batch_verify(true);
        fallback[1].set_batch_verify(false);

        let mut results = Vec::new();
        for engines in [&mut batched, &mut fallback] {
            let mix = hostile_mix(&mut engines[0]);
            let mut oracle = CountingPortOracle::default();
            engines[1].begin_round(&mut oracle);
            engines[1].handle(
                GossipMessage::PushData {
                    from: ProcessId(0),
                    messages: mix,
                },
                &mut oracle,
            );
            let stats = engines[1].end_round();
            results.push((stats, engines[1].take_delivered()));
        }
        assert_eq!(results[0], results[1]);
        // The mix carries 4 bad datagrams (2 tampered + 2 forged) and one
        // unique valid message delivered once.
        assert_eq!(results[0].0.dropped_auth, 4);
        assert_eq!(results[0].0.delivered, 1);
    }

    #[test]
    fn identical_fan_in_pays_one_hmac() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        engines[1].set_batch_verify(true);
        let id = engines[0].publish(Bytes::from_static(b"m"));
        let real = engines[0].buffer().get(id).unwrap().clone();
        let mut oracle = CountingPortOracle::default();
        engines[1].begin_round(&mut oracle);
        engines[1].handle(
            GossipMessage::PushData {
                from: ProcessId(0),
                messages: vec![real.clone(); 32],
            },
            &mut oracle,
        );
        let (c_full, c_hits) = {
            let reg = engines[1].tracer().registry();
            (
                reg.counter(names::MAC_FULL_VERIFIES),
                reg.counter(names::MAC_BATCH_HITS),
            )
        };
        assert_eq!(c_full.get(), 1);
        assert_eq!(c_hits.get(), 31);

        // The cache is round-scoped: the same fan-in next round pays one
        // fresh HMAC rather than trusting a stale verdict.
        engines[1].begin_round(&mut oracle);
        engines[1].handle(
            GossipMessage::PushData {
                from: ProcessId(0),
                messages: vec![real; 8],
            },
            &mut oracle,
        );
        assert_eq!(c_full.get(), 2);
        assert_eq!(c_hits.get(), 38);
    }

    #[test]
    fn frame_sign_verify_round_trip_between_engines() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let mut oracle = CountingPortOracle::default();
        engines[0].begin_round(&mut oracle);
        engines[1].begin_round(&mut oracle);
        let nonce = engines[0].frame_nonce();
        let body = b"packed frame body";
        let tag = engines[0].sign_frame(nonce, body);
        assert!(engines[1]
            .verify_frame(ProcessId(0), nonce, body, &tag)
            .is_ok());
        // Tampered body, wrong nonce and wrong sender all fail.
        assert!(engines[1]
            .verify_frame(ProcessId(0), nonce, b"tampered", &tag)
            .is_err());
        assert!(engines[1]
            .verify_frame(ProcessId(0), nonce + 1, body, &tag)
            .is_err());
        assert!(engines[1]
            .verify_frame(ProcessId(1), nonce, body, &tag)
            .is_err());
        // Both verification modes agree.
        engines[1].set_batch_verify(false);
        assert!(engines[1]
            .verify_frame(ProcessId(0), nonce, body, &tag)
            .is_ok());
        assert!(engines[1]
            .verify_frame(ProcessId(0), nonce, b"tampered", &tag)
            .is_err());
    }

    #[test]
    fn repeated_frame_fan_in_pays_one_hmac() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        engines[1].set_batch_verify(true);
        let mut oracle = CountingPortOracle::default();
        engines[0].begin_round(&mut oracle);
        engines[1].begin_round(&mut oracle);
        let nonce = engines[0].frame_nonce();
        let tag = engines[0].sign_frame(nonce, b"body");
        for _ in 0..16 {
            assert!(engines[1]
                .verify_frame(ProcessId(0), nonce, b"body", &tag)
                .is_ok());
        }
        let reg = engines[1].tracer().registry();
        assert_eq!(reg.counter(names::MAC_FULL_VERIFIES).get(), 1);
        assert_eq!(reg.counter(names::MAC_BATCH_HITS).get(), 15);
    }

    #[test]
    fn preverified_data_skips_per_message_macs() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        engines[1].set_batch_verify(true);
        let id = engines[0].publish(Bytes::from_static(b"m"));
        let real = engines[0].buffer().get(id).unwrap().clone();
        let mut oracle = CountingPortOracle::default();
        engines[1].begin_round(&mut oracle);
        let mut out = Vec::new();
        engines[1].handle_into_preverified(
            GossipMessage::PushData {
                from: ProcessId(0),
                messages: vec![real; 8],
            },
            &mut oracle,
            &mut out,
        );
        // Delivered once, zero per-message HMAC work.
        assert_eq!(engines[1].stats().delivered, 1);
        assert!(engines[1].buffer().seen(id));
        let reg = engines[1].tracer().registry();
        assert_eq!(reg.counter(names::MAC_FULL_VERIFIES).get(), 0);
        assert_eq!(reg.counter(names::MAC_BATCH_HITS).get(), 0);
    }

    #[test]
    fn preverified_data_still_pays_budget() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        let id = engines[0].publish(Bytes::from_static(b"m"));
        let real = engines[0].buffer().get(id).unwrap().clone();
        let mut oracle = CountingPortOracle::default();
        engines[1].begin_round(&mut oracle);
        let mut out = Vec::new();
        // Drum F=4: the push-data channel accepts max(F/2, 1) = 2.
        for _ in 0..10 {
            engines[1].handle_into_preverified(
                GossipMessage::PushData {
                    from: ProcessId(0),
                    messages: vec![real.clone()],
                },
                &mut oracle,
                &mut out,
            );
        }
        assert_eq!(engines[1].stats().accepted_of(MessageKind::PushData), 2);
        assert_eq!(engines[1].stats().dropped_of(MessageKind::PushData), 8);
    }

    #[test]
    fn fallback_path_leaves_batch_counters_at_zero() {
        let (mut engines, _) = setup(2, ProtocolVariant::Drum);
        engines[1].set_batch_verify(false);
        assert!(!engines[1].batch_verify_enabled());
        let id = engines[0].publish(Bytes::from_static(b"m"));
        let real = engines[0].buffer().get(id).unwrap().clone();
        let mut oracle = CountingPortOracle::default();
        engines[1].begin_round(&mut oracle);
        engines[1].handle(
            GossipMessage::PushData {
                from: ProcessId(0),
                messages: vec![real; 16],
            },
            &mut oracle,
        );
        let reg = engines[1].tracer().registry();
        assert_eq!(reg.counter(names::MAC_FULL_VERIFIES).get(), 0);
        assert_eq!(reg.counter(names::MAC_BATCH_HITS).get(), 0);
    }
}
