//! Figure 7: strong fixed-strength attacks (B = 7.2n and B = 36n) — how
//!
//! Thin wrapper over [`drum_bench::figures::fig07`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig07(&mut out).expect("write fig07 to stdout");
}
