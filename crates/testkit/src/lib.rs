//! Deterministic in-memory network for Drum engines.
//!
//! `drum-sim` simulates the paper's *abstract* model (push without offers,
//! acceptance probabilities); `drum-net` runs real UDP with wall-clock
//! rounds. This crate fills the gap between them: it drives **real
//! [`drum_core::engine::Engine`]s** — full push-offer/push-reply/push-data
//! handshake, sealed ports, budgets, buffers — through perfectly
//! reproducible synchronized rounds over a virtual network with
//! configurable link loss, partitions and fabricated-message attacks.
//!
//! Uses:
//!
//! * integration tests that need determinism but also the *real* protocol
//!   code path (e.g. validating that the paper's conclusions survive the
//!   push-offer handshake the analysis omits);
//! * protocol debugging with reproducible message orderings;
//! * failure injection (partitions, targeted loss) without sockets.
//!
//! # Examples
//!
//! ```
//! use drum_testkit::{NetworkConfig, VirtualNetwork};
//! use drum_core::bytes::Bytes;
//!
//! let mut net = VirtualNetwork::new(NetworkConfig::drum(8), 42);
//! let id = net.publish(0, Bytes::from_static(b"hello"));
//! net.run_rounds(10);
//! assert_eq!(net.holders(id), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prop;

use std::collections::HashMap;

/// Averages a per-seed measurement over `seeds` — the shared shape of
/// "run the scenario for each seed, report the mean" assertions in
/// statistical protocol tests, so each test states only its scenario.
///
/// # Panics
///
/// Panics if `seeds` is empty (a mean of nothing is a test bug).
pub fn mean_over_seeds(seeds: std::ops::Range<u64>, mut measure: impl FnMut(u64) -> f64) -> f64 {
    let count = seeds.end.checked_sub(seeds.start).filter(|&c| c > 0);
    let count = count.expect("mean_over_seeds needs a non-empty seed range") as f64;
    seeds.map(&mut measure).sum::<f64>() / count
}

use drum_core::bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use drum_core::config::GossipConfig;
use drum_core::digest::Digest;
use drum_core::engine::{Engine, Outbound, PortOracle, PortPurpose, SendPort};
use drum_core::ids::{MessageId, ProcessId, Round};
use drum_core::message::{GossipMessage, MessageKind, PortRef};
use drum_core::view::Membership;
use drum_crypto::keys::KeyStore;

/// Configuration of a virtual network of engines.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of engines.
    pub n: usize,
    /// Gossip configuration shared by all engines.
    pub gossip: GossipConfig,
    /// Per-transmission loss probability.
    pub loss: f64,
    /// Fabricated messages per round per attacked engine (0 = no attack);
    /// split between channels according to the protocol, like the paper.
    pub attack_x: f64,
    /// Indices of attacked engines.
    pub attacked: Vec<usize>,
}

impl NetworkConfig {
    /// A lossless, unattacked Drum network of `n` engines.
    pub fn drum(n: usize) -> Self {
        NetworkConfig {
            n,
            gossip: GossipConfig::drum(),
            loss: 0.0,
            attack_x: 0.0,
            attacked: Vec::new(),
        }
    }

    /// Replaces the gossip configuration.
    pub fn with_gossip(mut self, gossip: GossipConfig) -> Self {
        self.gossip = gossip;
        self
    }

    /// Sets the loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss out of range");
        self.loss = loss;
        self
    }

    /// Attacks the given engines with `x` fabricated messages per round.
    pub fn with_attack(mut self, attacked: Vec<usize>, x: f64) -> Self {
        self.attacked = attacked;
        self.attack_x = x;
        self
    }
}

/// A registered random port: owner, purpose and allocation round.
#[derive(Debug, Clone, Copy)]
struct PortEntry {
    owner: usize,
    purpose: PortPurpose,
    born: Round,
}

/// Port oracle shared by all engines: allocates globally unique ports and
/// records ownership so the network can route (and expire) them.
#[derive(Debug, Default)]
struct Registry {
    next_port: u16,
    ports: HashMap<u16, PortEntry>,
}

/// Adapter giving one engine's `begin_round`/`handle` calls access to the
/// shared registry.
struct OracleFor<'a> {
    registry: &'a mut Registry,
    owner: usize,
}

impl PortOracle for OracleFor<'_> {
    fn allocate_port(&mut self, purpose: PortPurpose, round: Round) -> u16 {
        self.registry.next_port = self.registry.next_port.checked_add(1).unwrap_or(1);
        let port = self.registry.next_port;
        self.registry.ports.insert(
            port,
            PortEntry {
                owner: self.owner,
                purpose,
                born: round,
            },
        );
        port
    }
}

/// A deterministic network of real engines with synchronized rounds.
pub struct VirtualNetwork {
    config: NetworkConfig,
    engines: Vec<Engine>,
    registry: Registry,
    rng: SmallRng,
    /// Pairs of engines that cannot currently exchange messages.
    partitions: Vec<(usize, usize)>,
    round: u64,
    /// Delivered message ids per engine (app-level view).
    delivered: Vec<Vec<MessageId>>,
    /// Delivered payloads per engine.
    payloads: Vec<Vec<Bytes>>,
}

impl core::fmt::Debug for VirtualNetwork {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("VirtualNetwork")
            .field("n", &self.engines.len())
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl VirtualNetwork {
    /// Builds the network: engines, keys and memberships.
    ///
    /// # Panics
    ///
    /// Panics if `config.n < 2` or an attacked index is out of range.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        assert!(config.n >= 2, "need at least two engines");
        assert!(
            config.attacked.iter().all(|&i| i < config.n),
            "attacked index out of range"
        );
        let store = KeyStore::new(seed);
        let members: Vec<ProcessId> = (0..config.n as u64).map(ProcessId).collect();
        let engines = members
            .iter()
            .map(|&m| {
                let key = store.register(m.as_u64());
                Engine::new(
                    config.gossip.clone(),
                    Membership::new(m, members.clone()),
                    store.clone(),
                    key,
                    seed ^ m.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            })
            .collect();
        let n = config.n;
        VirtualNetwork {
            config,
            engines,
            registry: Registry::default(),
            rng: SmallRng::seed_from_u64(seed ^ 0xD0_5A11),
            partitions: Vec::new(),
            round: 0,
            delivered: vec![Vec::new(); n],
            payloads: vec![Vec::new(); n],
        }
    }

    /// Current synchronized round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Immutable access to an engine.
    pub fn engine(&self, i: usize) -> &Engine {
        &self.engines[i]
    }

    /// Originates a message at engine `i`; returns its id.
    pub fn publish(&mut self, i: usize, payload: Bytes) -> MessageId {
        self.engines[i].publish(payload)
    }

    /// Number of engines whose buffers have seen `id`.
    pub fn holders(&self, id: MessageId) -> usize {
        self.engines.iter().filter(|e| e.buffer().seen(id)).count()
    }

    /// Message ids delivered to engine `i`'s application so far.
    pub fn delivered_ids(&self, i: usize) -> &[MessageId] {
        &self.delivered[i]
    }

    /// Payloads delivered to engine `i`'s application so far.
    pub fn delivered_payloads(&self, i: usize) -> &[Bytes] {
        &self.payloads[i]
    }

    /// Severs the link between engines `a` and `b` (both directions).
    pub fn partition(&mut self, a: usize, b: usize) {
        let pair = (a.min(b), a.max(b));
        if !self.partitions.contains(&pair) {
            self.partitions.push(pair);
        }
    }

    /// Restores the link between engines `a` and `b`.
    pub fn heal(&mut self, a: usize, b: usize) {
        let pair = (a.min(b), a.max(b));
        self.partitions.retain(|p| *p != pair);
    }

    fn severed(&self, a: usize, b: usize) -> bool {
        let pair = (a.min(b), a.max(b));
        self.partitions.contains(&pair)
    }

    /// Whether a transmission from `from` to `to` goes through this time.
    fn transmits(&mut self, from: usize, to: usize) -> bool {
        if self.severed(from, to) {
            return false;
        }
        self.config.loss == 0.0 || !self.rng.random_bool(self.config.loss)
    }

    /// Runs one synchronized round across all engines.
    ///
    /// Per round: every engine begins its round (emitting pull-requests and
    /// push-offers), fabricated attack traffic is injected, each engine's
    /// well-known inboxes are *shuffled* (the accepted subset is uniform
    /// over the round's arrivals, as in the paper) and processed under the
    /// engine's budgets; response cascades (random-port messages) settle
    /// within the round.
    pub fn run_round(&mut self) {
        self.round += 1;
        let n = self.engines.len();

        // Inboxes for this round, by destination.
        let mut well_known: Vec<Vec<GossipMessage>> = vec![Vec::new(); n];
        let mut random_port: Vec<Vec<(PortPurpose, GossipMessage)>> = vec![Vec::new(); n];

        // Phase 1: round starts.
        let mut outbound: Vec<(usize, Outbound)> = Vec::new();
        for i in 0..n {
            let mut oracle = OracleFor {
                registry: &mut self.registry,
                owner: i,
            };
            for out in self.engines[i].begin_round(&mut oracle) {
                outbound.push((i, out));
            }
        }
        self.route(outbound, &mut well_known, &mut random_port);

        // Phase 2: attack injection on the well-known channels.
        let (x_push, x_pull) = self.attack_split();
        let attacked = self.config.attacked.clone();
        for &victim in &attacked {
            let fakes_pull = randomized_round(x_pull, &mut self.rng);
            let fakes_push = randomized_round(x_push, &mut self.rng);
            for k in 0..fakes_pull {
                well_known[victim].push(GossipMessage::PullRequest {
                    from: ProcessId(0xDEAD_0000 + k as u64),
                    digest: Digest::new(),
                    reply_port: PortRef::Plain(0),
                    nonce: self.round << 16 | k as u64,
                });
            }
            for k in 0..fakes_push {
                well_known[victim].push(GossipMessage::PushOffer {
                    from: ProcessId(0xDEAD_0000 + k as u64),
                    reply_port: PortRef::Plain(0),
                    nonce: self.round << 20 | k as u64,
                });
            }
        }

        // Phase 3: well-known inboxes — shuffled, then processed under the
        // engines' budgets.
        let mut cascade: Vec<(usize, Outbound)> = Vec::new();
        for (i, inbox) in well_known.iter_mut().enumerate() {
            shuffle(inbox, &mut self.rng);
            let mut oracle = OracleFor {
                registry: &mut self.registry,
                owner: i,
            };
            for msg in inbox.drain(..) {
                for out in self.engines[i].handle(msg, &mut oracle) {
                    cascade.push((i, out));
                }
            }
        }

        // Phase 4: settle random-port cascades within the round.
        let mut guard = 0;
        while !cascade.is_empty() {
            guard += 1;
            assert!(guard < 16, "cascade failed to settle");
            let mut wk: Vec<Vec<GossipMessage>> = vec![Vec::new(); n];
            self.route(cascade, &mut wk, &mut random_port);
            // Anything aimed at well-known ports mid-round waits for the
            // next round in this synchronized model; engines do not emit
            // such messages mid-round anyway.
            debug_assert!(wk.iter().all(Vec::is_empty));

            cascade = Vec::new();
            for (i, inbox) in random_port.iter_mut().enumerate() {
                let mut oracle = OracleFor {
                    registry: &mut self.registry,
                    owner: i,
                };
                for (purpose, msg) in inbox.drain(..) {
                    let matches = matches!(
                        (purpose, msg.kind()),
                        (PortPurpose::PullReply, MessageKind::PullReply)
                            | (PortPurpose::PushReply, MessageKind::PushReply)
                            | (PortPurpose::PushData, MessageKind::PushData)
                    );
                    if matches {
                        for out in self.engines[i].handle(msg, &mut oracle) {
                            cascade.push((i, out));
                        }
                    }
                }
            }
        }

        // Phase 5: collect deliveries and close the round.
        for i in 0..n {
            for msg in self.engines[i].take_delivered() {
                self.delivered[i].push(msg.id);
                self.payloads[i].push(msg.payload);
            }
            self.engines[i].end_round();
        }

        // Expire random ports past their lifetime.
        let lifetime = self.config.gossip.port_lifetime_rounds.max(1);
        let now = self.round;
        self.registry
            .ports
            .retain(|_, e| now.saturating_sub(e.born.as_u64()) < lifetime);
    }

    /// Runs `k` rounds.
    pub fn run_rounds(&mut self, k: usize) {
        for _ in 0..k {
            self.run_round();
        }
    }

    /// Runs until `id` reaches `fraction` of the engines or `max_rounds`
    /// elapse; returns the round count at which the threshold was met.
    pub fn run_until_spread(
        &mut self,
        id: MessageId,
        fraction: f64,
        max_rounds: u32,
    ) -> Option<u32> {
        let need = (fraction * self.engines.len() as f64).ceil() as usize;
        for r in 1..=max_rounds {
            self.run_round();
            if self.holders(id) >= need {
                return Some(r);
            }
        }
        None
    }

    fn attack_split(&self) -> (f64, f64) {
        use drum_core::config::ProtocolVariant;
        match self.config.gossip.variant {
            ProtocolVariant::Drum => (self.config.attack_x / 2.0, self.config.attack_x / 2.0),
            ProtocolVariant::Push => (self.config.attack_x, 0.0),
            ProtocolVariant::Pull => (0.0, self.config.attack_x),
        }
    }

    /// Routes outbound messages into the destination inboxes, applying
    /// loss, partitions and random-port ownership checks.
    fn route(
        &mut self,
        outbound: Vec<(usize, Outbound)>,
        well_known: &mut [Vec<GossipMessage>],
        random_port: &mut [Vec<(PortPurpose, GossipMessage)>],
    ) {
        for (from, out) in outbound {
            match out.port {
                SendPort::WellKnownPull | SendPort::WellKnownPush => {
                    let to = out.to.as_u64() as usize;
                    if to < well_known.len() && self.transmits(from, to) {
                        well_known[to].push(out.msg);
                    }
                }
                SendPort::Port(p) => {
                    // Only deliverable if the port is (still) allocated; an
                    // expired or bogus port silently eats the message —
                    // exactly what protects against reply-port guessing.
                    let Some(entry) = self.registry.ports.get(&p).copied() else {
                        continue;
                    };
                    if self.transmits(from, entry.owner) {
                        random_port[entry.owner].push((entry.purpose, out.msg));
                    }
                }
            }
        }
    }
}

fn shuffle(v: &mut [GossipMessage], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i as u64) as usize;
        v.swap(i, j);
    }
}

fn randomized_round(rate: f64, rng: &mut SmallRng) -> usize {
    let base = rate.floor();
    let frac = rate - base;
    base as usize + usize::from(frac > 0.0 && rng.random_bool(frac))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissemination_without_failures() {
        let mut net = VirtualNetwork::new(NetworkConfig::drum(12), 1);
        let id = net.publish(0, Bytes::from_static(b"m"));
        let rounds = net.run_until_spread(id, 1.0, 50).expect("must spread");
        assert!(rounds <= 12, "took {rounds} rounds");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = VirtualNetwork::new(NetworkConfig::drum(10).with_loss(0.05), seed);
            let id = net.publish(0, Bytes::from_static(b"m"));
            net.run_until_spread(id, 1.0, 100)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn push_and_pull_variants_work() {
        for gossip in [GossipConfig::push(), GossipConfig::pull()] {
            let mut net =
                VirtualNetwork::new(NetworkConfig::drum(10).with_gossip(gossip.clone()), 3);
            let id = net.publish(0, Bytes::from_static(b"m"));
            assert!(
                net.run_until_spread(id, 1.0, 80).is_some(),
                "{:?} failed to spread",
                gossip.variant
            );
        }
    }

    #[test]
    fn loss_slows_but_does_not_stop() {
        let mut net = VirtualNetwork::new(NetworkConfig::drum(10).with_loss(0.3), 5);
        let id = net.publish(0, Bytes::from_static(b"m"));
        assert!(net.run_until_spread(id, 1.0, 200).is_some());
    }

    #[test]
    fn partition_blocks_until_healed() {
        // Fully partition engine 3 from everyone. Buffers must not purge,
        // or the message would be gone before the partition heals.
        let config = NetworkConfig::drum(6).with_gossip(GossipConfig::drum().with_buffer_rounds(0));
        let mut net = VirtualNetwork::new(config, 9);
        for other in [0, 1, 2, 4, 5] {
            net.partition(3, other);
        }
        let id = net.publish(0, Bytes::from_static(b"m"));
        net.run_rounds(20);
        assert!(
            !net.engine(3).buffer().seen(id),
            "partitioned engine must not receive"
        );
        assert_eq!(net.holders(id), 5);

        for other in [0, 1, 2, 4, 5] {
            net.heal(3, other);
        }
        net.run_rounds(10);
        assert!(
            net.engine(3).buffer().seen(id),
            "healed engine must catch up"
        );
    }

    #[test]
    fn delivered_payloads_match() {
        let mut net = VirtualNetwork::new(NetworkConfig::drum(4), 11);
        net.publish(0, Bytes::from_static(b"payload-x"));
        net.run_rounds(10);
        for i in 1..4 {
            assert_eq!(
                net.delivered_payloads(i),
                &[Bytes::from_static(b"payload-x")]
            );
            assert_eq!(net.delivered_ids(i).len(), 1);
        }
        // The source does not deliver its own message.
        assert!(net.delivered_ids(0).is_empty());
    }

    #[test]
    fn full_handshake_drum_flat_under_attack() {
        // The headline result survives the real push-offer handshake that
        // the paper's analysis and simulations omit.
        let mean_rounds = |x: f64, gossip: GossipConfig| {
            let mut total = 0u32;
            let trials = 10;
            for seed in 0..trials {
                let cfg = NetworkConfig::drum(30)
                    .with_gossip(gossip.clone())
                    .with_attack(vec![0, 1, 2], x)
                    .with_loss(0.01);
                let mut net = VirtualNetwork::new(cfg, seed);
                let id = net.publish(0, Bytes::from_static(b"m"));
                total += net.run_until_spread(id, 0.99, 400).unwrap_or(400);
            }
            total as f64 / 10.0
        };

        let drum_weak = mean_rounds(32.0, GossipConfig::drum());
        let drum_strong = mean_rounds(256.0, GossipConfig::drum());
        assert!(
            drum_strong < drum_weak + 3.0,
            "Drum with offers must stay flat: {drum_weak:.1} -> {drum_strong:.1}"
        );

        let push_weak = mean_rounds(32.0, GossipConfig::push());
        let push_strong = mean_rounds(256.0, GossipConfig::push());
        assert!(
            push_strong > push_weak * 1.5,
            "Push must degrade: {push_weak:.1} -> {push_strong:.1}"
        );
    }

    #[test]
    fn expired_ports_eat_messages() {
        // A message sent to a long-expired port must vanish, not crash.
        let mut net = VirtualNetwork::new(NetworkConfig::drum(4), 13);
        net.run_rounds(1);
        // Steal a port number allocated in round 1.
        let stale_port = 1u16;
        net.run_rounds(10); // long past the lifetime
        let out = vec![(
            0usize,
            Outbound {
                to: ProcessId(1),
                port: SendPort::Port(stale_port),
                msg: GossipMessage::PullReply {
                    from: ProcessId(0),
                    messages: vec![],
                },
            },
        )];
        let n = net.engines.len();
        let mut wk = vec![Vec::new(); n];
        let mut rp = vec![Vec::new(); n];
        net.route(out, &mut wk, &mut rp);
        assert!(rp.iter().all(Vec::is_empty), "stale port must not deliver");
    }

    #[test]
    #[should_panic(expected = "attacked index")]
    fn rejects_bad_attacked_index() {
        VirtualNetwork::new(NetworkConfig::drum(4).with_attack(vec![9], 8.0), 1);
    }
}
