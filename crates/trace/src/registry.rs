//! A process-wide counter/gauge registry.
//!
//! Emission sites hold a [`Counter`] or [`Gauge`] handle (an `Arc`'d
//! atomic — incrementing is lock-free); snapshots are sorted by name so
//! repeated snapshots of identical states render identically, and they
//! export to `drum_metrics` tables and JSON.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use drum_metrics::json::Json;
use drum_metrics::table::Table;

/// Well-known counter names used by the wired layers, so dashboards and
/// tests agree on spelling.
pub mod names {
    /// Datagrams/messages successfully sent.
    pub const MESSAGES_SENT: &str = "messages_sent";
    /// Datagrams/messages received from the wire.
    pub const MESSAGES_RECEIVED: &str = "messages_received";
    /// Messages dropped because a per-round resource bound was exhausted.
    pub const DROPPED_BY_BOUND: &str = "dropped_by_bound";
    /// Pull-requests refused by the pull-channel bound specifically.
    pub const PULL_REQUESTS_REFUSED: &str = "pull_requests_refused";
    /// Random reply-port sockets allocated (port rotations).
    pub const PORT_ROTATIONS: &str = "port_rotations";
    /// Datagrams that failed to decode.
    pub const DECODE_ERRORS: &str = "decode_errors";
    /// Fabricated attack datagrams sent.
    pub const ATTACK_SENT: &str = "attack_sent";
    /// Receive syscalls made by the runtime (`recvmmsg` on the batched
    /// path, `recv_from` on the per-datagram fallback). Under flood this
    /// stays far below `messages_received` + `decode_errors` exactly when
    /// the syscall amortization is working.
    pub const SYSCALLS_RECV: &str = "net.syscalls_recv";
    /// Send syscalls made by the runtime (`sendmmsg` or `send_to`).
    pub const SYSCALLS_SEND: &str = "net.syscalls_send";
    /// Datagrams moved by batched (`recvmmsg`) receive calls; divide by
    /// `net.syscalls_recv` for the mean batch fill. Zero on the fallback
    /// path — a cheap way for dashboards to tell which mode ran.
    pub const BATCH_FILL: &str = "net.batch_fill";
    /// Rounds whose fixed-cadence deadline had already passed when the
    /// previous round's work finished — the load indicator that replaced
    /// the silent cadence drift (the deadline now advances from the
    /// previous deadline, not from `Instant::now()` after round work).
    pub const NET_ROUNDS_LATE: &str = "net.rounds_late";
    /// Outbound messages dropped because their destination port was 0 —
    /// a failed random-port allocation upstream (local bind failure, or a
    /// peer advertising port 0 after exhausting its own oracle).
    pub const NET_ALLOC_FAILED: &str = "net.alloc_failed";
    /// Sharded runtime: `epoll_pwait` wakeups taken by shard event loops.
    /// Divide `net.shard_dispatch` by this for engines-worth of datagram
    /// work served per kernel wakeup.
    pub const SHARD_WAKEUPS: &str = "net.shard_wakeups";
    /// Sharded runtime: ready-socket dispatches (token → engine drain)
    /// performed by shard event loops.
    pub const SHARD_DISPATCH: &str = "net.shard_dispatch";
    /// Full HMAC verifications paid on received data messages. Under an
    /// identical-fan-in flood this stays near the number of *unique*
    /// `(source, seq, tag)` triples per round while `messages_received`
    /// counts every copy — the gap is the batched-verification win.
    pub const MAC_FULL_VERIFIES: &str = "crypto.mac_full_verifies";
    /// Verdicts served from the round-scoped batch-verification cache
    /// instead of recomputing the HMAC (see `drum_crypto::batch`).
    pub const MAC_BATCH_HITS: &str = "crypto.mac_batch_hits";
    /// SHA-256 kernel invocations behind the MAC work that actually ran
    /// (multiway verification plus frame signing): an 8-wide multi-buffer
    /// call counts once, as does a single-block call. The ratio to
    /// `crypto.lanes_filled` is the multiway batching win.
    pub const CRYPTO_COMPRESS_CALLS: &str = "crypto.compress_calls";
    /// Total kernel lanes those invocations advanced — i.e. 64-byte blocks
    /// hashed. Fixed-seed runs report identical values with and without
    /// `DRUM_CRYPTO_NO_SIMD=1`; only `crypto.compress_calls` moves.
    pub const CRYPTO_LANES_FILLED: &str = "crypto.lanes_filled";
    /// MTU-packed gossip frames sent (each is one datagram carrying one
    /// or more data-plane messages to the same destination).
    pub const FRAMES_SENT: &str = "net.frames_sent";
    /// Data-plane messages carried inside sent frames. Divide by
    /// `net.frames_sent` for the mean pack ratio; it approaches 1 when
    /// traffic is sparse and climbs under sustained multi-message load.
    pub const MSGS_PER_FRAME: &str = "net.msgs_per_frame";
    /// Received frames rejected because their frame tag failed
    /// authentication (fabricated or tampered frames).
    pub const FRAMES_REJECTED: &str = "net.frames_rejected";
    /// High-water mark of message-buffer memory (payload bytes plus
    /// per-entry overhead), summed over processes. Bounded buffers keep
    /// this flat under sustained load; see `ext_soak`.
    pub const BUFFER_BYTES_PEAK: &str = "buffer.bytes_peak";
    /// Stream-scheduler submissions that exceeded the configured window
    /// and were queued with backpressure instead of silently dropped.
    pub const STREAM_BACKPRESSURE: &str = "stream.backpressure";
    /// Jobs executed to completion by a `drum_pool::Pool`.
    pub const POOL_JOBS: &str = "pool.jobs";
    /// Pool jobs run by a thread other than their batch's submitter —
    /// the cross-thread redistribution dynamic scheduling exists for.
    /// `pool.steals / pool.jobs` near zero means the submitter did all
    /// the work; near `(threads-1)/threads` means even sharing.
    pub const POOL_STEALS: &str = "pool.steals";
    /// Times an idle pool worker parked on the injector condvar. Stays
    /// flat while a flat sweep keeps the pool fed; climbs when batches
    /// drain between submissions.
    pub const POOL_PARK: &str = "pool.park";
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (open sockets, buffer size).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
}

/// A shared, cheaply clonable registry of named counters and gauges.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    /// The same name always yields handles to the same underlying value.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((_, c)) = counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        counters.push((name.to_string(), c.clone()));
        c
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((_, g)) = gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Snapshots every counter and gauge as `(name, value)`, sorted by
    /// name, so identical states snapshot identically.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .chain(
                self.inner
                    .gauges
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .iter()
                    .map(|(n, g)| (n.clone(), g.get())),
            )
            .collect();
        out.sort();
        out
    }

    /// Renders the snapshot as a `drum_metrics` text table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["metric".into(), "value".into()]);
        for (name, value) in self.snapshot() {
            t.row(vec![name, value.to_string()]);
        }
        t
    }

    /// Serializes the snapshot as a JSON object (sorted keys).
    pub fn to_json(&self) -> String {
        Json::Obj(
            self.snapshot()
                .into_iter()
                .map(|(n, v)| (n, Json::num(v as f64)))
                .collect(),
        )
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("messages_sent");
        let b = reg.counter("messages_sent");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("messages_sent").get(), 5);
    }

    #[test]
    fn gauge_sets_and_reads() {
        let reg = Registry::new();
        let g = reg.gauge("open_sockets");
        g.set(12);
        assert_eq!(reg.gauge("open_sockets").get(), 12);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("z_last").add(1);
        reg.counter("a_first").add(2);
        reg.gauge("m_gauge").set(7);
        let snap = reg.snapshot();
        assert_eq!(
            snap,
            vec![
                ("a_first".to_string(), 2),
                ("m_gauge".to_string(), 7),
                ("z_last".to_string(), 1),
            ]
        );
    }

    #[test]
    fn table_and_json_render() {
        let reg = Registry::new();
        reg.counter(names::MESSAGES_SENT).add(10);
        reg.counter(names::DROPPED_BY_BOUND).add(3);
        let table = reg.to_table().render();
        assert!(table.contains("messages_sent"));
        assert!(table.contains("10"));
        assert_eq!(
            reg.to_json(),
            r#"{"dropped_by_bound":3,"messages_sent":10}"#
        );
    }

    #[test]
    fn counters_are_thread_safe() {
        let reg = Registry::new();
        let c = reg.counter("shared");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
