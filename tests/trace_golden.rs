//! Golden-trace regression test: the observability layer as a protocol
//! oracle.
//!
//! A fixed-seed Drum-under-attack simulation is run with a JSON-lines
//! trace sink. Because sim events are round-stamped (no wall clock) and
//! tracing never draws from the simulation RNG, the emitted trace is a
//! pure function of `(config, seed)` — byte for byte. The recorded
//! fixture in `tests/fixtures/trace_golden.jsonl` therefore pins the
//! entire observable evolution of the protocol: any change to the
//! engine's round structure, the attack model, the event taxonomy or the
//! JSON encoding shows up as a diff here.
//!
//! Regenerating after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p drum --test trace_golden
//! ```
//!
//! then review the fixture diff like any other code change.

use std::sync::Arc;

use drum::core::config::ProtocolVariant;
use drum::sim::{run_trial_traced, SimConfig};
use drum::trace::{JsonLinesSink, SharedBuf, Tracer};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/trace_golden.jsonl"
);

/// The canonical scenario: 40 processes, 10% malicious, Drum under a
/// 64-messages-per-round attack, 8 rounds, seed 2004 (the paper's year).
fn canonical_trace() -> String {
    let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 40, 64.0);
    cfg.max_rounds = 8;
    let buf = SharedBuf::new();
    let sink = Arc::new(JsonLinesSink::new(buf.clone()));
    run_trial_traced(&cfg, 2004, 8, Tracer::new(sink));
    buf.contents_string()
}

#[test]
fn fixed_seed_trace_is_byte_identical_across_runs() {
    let first = canonical_trace();
    let second = canonical_trace();
    assert!(!first.is_empty(), "canonical scenario emitted no events");
    assert_eq!(first, second, "fixed-seed trace must be deterministic");
}

#[test]
fn trace_matches_golden_fixture() {
    let got = canonical_trace();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &got).expect("failed to write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE).expect(
        "missing tests/fixtures/trace_golden.jsonl — regenerate with \
         `UPDATE_GOLDEN=1 cargo test -p drum --test trace_golden`",
    );
    assert_eq!(
        got, want,
        "trace diverged from the golden fixture; if the change is \
         intentional, regenerate with `UPDATE_GOLDEN=1 cargo test -p drum \
         --test trace_golden` and review the diff"
    );
}

#[test]
fn golden_trace_has_expected_shape() {
    let trace = canonical_trace();
    let lines: Vec<&str> = trace.lines().collect();
    // One sim.start header, then per-round events.
    assert!(lines[0].contains("\"event\":\"sim.start\""));
    assert!(lines[0].contains("\"target\":\"sim\""));
    // Every line is a single JSON object with the fixed key order.
    for line in &lines {
        assert!(line.starts_with("{\"target\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
    }
    // The attacked scenario must actually show attack pressure and
    // deliveries.
    assert!(lines.iter().any(|l| l.contains("\"event\":\"round\"")));
    assert!(lines.iter().any(|l| l.contains("\"event\":\"deliver\"")));
    assert!(lines.iter().any(|l| l.contains("\"fakes_push\"")));
}
