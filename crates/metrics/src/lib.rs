//! Statistics, distributions and recorders for the Drum evaluation harness.
//!
//! This crate is the measurement substrate shared by the simulator
//! (`drum-sim`), the UDP runtime (`drum-net`) and the figure-regeneration
//! binaries (`drum-bench`):
//!
//! * [`stats`] — streaming mean/variance (propagation-time averages and
//!   standard deviations, Figures 3–4 and 7–9),
//! * [`cdf`] — empirical CDFs (Figures 5, 11, 13, 14),
//! * [`histogram`] — bucketed latency distributions,
//! * [`recorder`] — the paper's §8 throughput/latency accounting,
//! * [`table`] — aligned text output for the `figN` binaries.
//!
//! # Examples
//!
//! ```
//! use drum_metrics::stats::RunningStats;
//!
//! let stats: RunningStats = [4.0, 5.0, 6.0].into_iter().collect();
//! assert_eq!(stats.mean(), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod histogram;
pub mod recorder;
pub mod stats;
pub mod table;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use recorder::{LatencyRecorder, ThroughputRecorder};
pub use stats::RunningStats;
pub use table::Table;

#[cfg(test)]
mod proptests {
    use crate::cdf::Cdf;
    use crate::stats::RunningStats;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cdf_from_samples_is_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let cdf = Cdf::from_samples(&samples);
            let pts = cdf.points();
            for w in pts.windows(2) {
                prop_assert!(w[1].0 > w[0].0);
                prop_assert!(w[1].1 >= w[0].1);
            }
            prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        }

        #[test]
        fn merge_matches_sequential(xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
                                    ys in proptest::collection::vec(-1e3f64..1e3, 0..100)) {
            let mut merged: RunningStats = xs.iter().copied().collect();
            let other: RunningStats = ys.iter().copied().collect();
            merged.merge(&other);
            let all: RunningStats = xs.iter().chain(ys.iter()).copied().collect();
            prop_assert_eq!(merged.count(), all.count());
            prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
        }

        #[test]
        fn ks_distance_bounded(a in proptest::collection::vec(-100f64..100.0, 1..50),
                               b in proptest::collection::vec(-100f64..100.0, 1..50)) {
            let ca = Cdf::from_samples(&a);
            let cb = Cdf::from_samples(&b);
            let d = ca.ks_distance(&cb);
            prop_assert!((0.0..=1.0).contains(&d));
            // Symmetry
            prop_assert!((d - cb.ks_distance(&ca)).abs() < 1e-12);
        }
    }
}
