//! Log-domain combinatorics.
//!
//! The Appendix C recursions multiply binomial probabilities with hundreds
//! of factors; evaluating them in the log domain with exact `ln k!` prefix
//! sums keeps everything stable for group sizes up to 10⁶.

/// Precomputed `ln(k!)` for `k = 0..=n_max`.
///
/// # Examples
///
/// ```
/// use drum_analysis::logmath::LogFactorial;
///
/// let lf = LogFactorial::up_to(10);
/// assert!((lf.ln_factorial(5) - (120f64).ln()).abs() < 1e-12);
/// assert!((lf.ln_choose(5, 2) - (10f64).ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LogFactorial {
    table: Vec<f64>,
}

impl LogFactorial {
    /// Builds the table for arguments up to `n_max` inclusive.
    pub fn up_to(n_max: usize) -> Self {
        let mut table = Vec::with_capacity(n_max + 1);
        table.push(0.0);
        let mut acc = 0.0f64;
        for k in 1..=n_max {
            acc += (k as f64).ln();
            table.push(acc);
        }
        LogFactorial { table }
    }

    /// Largest supported argument.
    pub fn max_n(&self) -> usize {
        self.table.len() - 1
    }

    /// `ln(k!)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the precomputed range.
    pub fn ln_factorial(&self, k: usize) -> f64 {
        self.table[k]
    }

    /// `ln C(n, k)`; `-inf` when `k > n`.
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.table[n] - self.table[k] - self.table[n - k]
    }

    /// Binomial pmf `C(n, k) p^k (1-p)^(n-k)`, evaluated in the log domain.
    ///
    /// Handles the degenerate probabilities `p = 0` and `p = 1` exactly.
    pub fn binom_pmf(&self, n: usize, k: usize, p: f64) -> f64 {
        if k > n {
            return 0.0;
        }
        if p <= 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if p >= 1.0 {
            return if k == n { 1.0 } else { 0.0 };
        }
        let ln = self.ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
        ln.exp()
    }
}

/// `ln(1 - e^x)` for `x < 0`, numerically stable near 0.
pub fn ln_one_minus_exp(x: f64) -> f64 {
    debug_assert!(x < 0.0);
    if x > -core::f64::consts::LN_2 {
        (-x.exp_m1()).ln()
    } else {
        (-x.exp()).ln_1p()
    }
}

/// `(1 - p)^n` computed stably via `exp(n ln(1-p))`, with exact edges.
pub fn pow_one_minus(p: f64, n: f64) -> f64 {
    if p <= 0.0 {
        1.0
    } else if p >= 1.0 {
        if n == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        (n * (-p).ln_1p()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_values() {
        let lf = LogFactorial::up_to(20);
        assert_eq!(lf.ln_factorial(0), 0.0);
        assert_eq!(lf.ln_factorial(1), 0.0);
        assert!((lf.ln_factorial(10) - (3_628_800f64).ln()).abs() < 1e-9);
        assert_eq!(lf.max_n(), 20);
    }

    #[test]
    fn choose_values() {
        let lf = LogFactorial::up_to(50);
        assert!(
            (lf.ln_choose(50, 25).exp() - 126_410_606_437_752.0).abs() / 126_410_606_437_752.0
                < 1e-9
        );
        assert_eq!(lf.ln_choose(5, 6), f64::NEG_INFINITY);
        assert_eq!(lf.ln_choose(5, 0), 0.0);
        assert_eq!(lf.ln_choose(5, 5), 0.0);
    }

    #[test]
    fn binom_pmf_sums_to_one() {
        let lf = LogFactorial::up_to(100);
        for &p in &[0.001, 0.3, 0.5, 0.99] {
            let total: f64 = (0..=100).map(|k| lf.binom_pmf(100, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "p = {p}: total = {total}");
        }
    }

    #[test]
    fn binom_pmf_degenerate() {
        let lf = LogFactorial::up_to(10);
        assert_eq!(lf.binom_pmf(10, 0, 0.0), 1.0);
        assert_eq!(lf.binom_pmf(10, 3, 0.0), 0.0);
        assert_eq!(lf.binom_pmf(10, 10, 1.0), 1.0);
        assert_eq!(lf.binom_pmf(10, 9, 1.0), 0.0);
        assert_eq!(lf.binom_pmf(10, 11, 0.5), 0.0);
    }

    #[test]
    fn binom_pmf_known_value() {
        let lf = LogFactorial::up_to(10);
        // C(4,2) 0.5^4 = 6/16
        assert!((lf.binom_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn pow_one_minus_edges() {
        assert_eq!(pow_one_minus(0.0, 10.0), 1.0);
        assert_eq!(pow_one_minus(1.0, 10.0), 0.0);
        assert_eq!(pow_one_minus(1.0, 0.0), 1.0);
        assert!((pow_one_minus(0.5, 2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ln_one_minus_exp_matches_naive() {
        for &x in &[-1e-6f64, -0.1, -1.0, -10.0] {
            let naive = (1.0 - x.exp()).ln();
            assert!((ln_one_minus_exp(x) - naive).abs() < 1e-9, "x = {x}");
        }
    }
}
