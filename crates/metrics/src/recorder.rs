//! Latency and throughput recorders for the measurement harness (§8 of the
//! paper).
//!
//! The paper's cluster experiments send 10,000 messages at 40 msg/s and
//! report, per receiving process, the **average received throughput**
//! (ignoring the first and last 5% of the experiment's duration) and the
//! **average latency** of successfully received messages. These recorders
//! reproduce that accounting.

use crate::json::{Json, JsonError};
use crate::stats::RunningStats;

/// Records per-message receive latencies for one process.
///
/// # Examples
///
/// ```
/// use drum_metrics::recorder::LatencyRecorder;
///
/// let mut r = LatencyRecorder::new();
/// r.record_ms(12.5);
/// r.record_ms(20.0);
/// assert_eq!(r.received(), 2);
/// assert_eq!(r.mean_ms(), 16.25);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    stats: RunningStats,
    /// Timestamped samples `(t_secs, latency_ms)` kept for duration-window
    /// trimming; only populated through [`LatencyRecorder::record_at`].
    /// Not serialized by [`LatencyRecorder::to_json`].
    samples: Vec<(f64, f64)>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one successfully delivered message's latency in milliseconds.
    pub fn record_ms(&mut self, latency_ms: f64) {
        self.stats.push(latency_ms);
    }

    /// Records a delivery latency together with its arrival time (seconds
    /// since experiment start), enabling the paper's duration-window trim.
    pub fn record_at(&mut self, t_secs: f64, latency_ms: f64) {
        self.stats.push(latency_ms);
        self.samples.push((t_secs, latency_ms));
    }

    /// Latency statistics restricted to arrivals within `trim` and
    /// `1 - trim` of the experiment duration — the paper's accounting
    /// ("ignoring the first and last 5% of the time", §8), which trims by
    /// **duration**, not by sample count. Only samples recorded through
    /// [`LatencyRecorder::record_at`] participate; the result is empty when
    /// none fall inside the window.
    ///
    /// # Panics
    ///
    /// Panics if `trim` is not in `[0, 0.5)`.
    pub fn windowed_stats(&self, duration_secs: f64, trim: f64) -> RunningStats {
        assert!(
            (0.0..0.5).contains(&trim),
            "trim must be in [0, 0.5): {trim}"
        );
        let lo = duration_secs * trim;
        let hi = duration_secs * (1.0 - trim);
        self.samples
            .iter()
            .filter(|(t, _)| *t >= lo && *t < hi)
            .map(|(_, ms)| *ms)
            .collect()
    }

    /// Mean latency over the paper's standard 5% duration trim; falls back
    /// to the untrimmed mean when no timestamped sample lies in the window
    /// (e.g. all arrivals were stragglers, or only [`record_ms`] was used).
    ///
    /// [`record_ms`]: LatencyRecorder::record_ms
    pub fn paper_mean_ms(&self, duration_secs: f64) -> f64 {
        let w = self.windowed_stats(duration_secs, 0.05);
        if w.count() > 0 {
            w.mean()
        } else {
            self.mean_ms()
        }
    }

    /// Number of messages recorded.
    pub fn received(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation of latency.
    pub fn std_ms(&self) -> f64 {
        self.stats.population_std()
    }

    /// Maximum observed latency; NaN when empty.
    pub fn max_ms(&self) -> f64 {
        self.stats.max()
    }

    /// Serializes the recorder as JSON (its underlying streaming stats).
    pub fn to_json(&self) -> String {
        self.stats.to_json()
    }

    /// Restores a recorder from [`LatencyRecorder::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        Ok(LatencyRecorder {
            stats: RunningStats::from_json(text)?,
            samples: Vec::new(),
        })
    }
}

/// Records message arrival times and computes steady-state throughput,
/// trimming a warm-up/cool-down fraction of the experiment duration exactly
/// as in the paper ("ignoring the first and last 5% of the time").
#[derive(Debug, Clone, Default)]
pub struct ThroughputRecorder {
    /// Arrival times (seconds since experiment start) of delivered messages.
    arrivals: Vec<f64>,
}

impl ThroughputRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivery at `t_secs` seconds since experiment start.
    pub fn record(&mut self, t_secs: f64) {
        self.arrivals.push(t_secs);
    }

    /// Total deliveries recorded.
    pub fn total(&self) -> usize {
        self.arrivals.len()
    }

    /// Average throughput (messages/second) between `trim` and `1 - trim`
    /// of the experiment duration `duration_secs`.
    ///
    /// Returns `0.0` for an empty recorder or a non-positive window.
    ///
    /// # Panics
    ///
    /// Panics if `trim` is not in `[0, 0.5)`.
    pub fn steady_state_throughput(&self, duration_secs: f64, trim: f64) -> f64 {
        assert!(
            (0.0..0.5).contains(&trim),
            "trim must be in [0, 0.5): {trim}"
        );
        let lo = duration_secs * trim;
        let hi = duration_secs * (1.0 - trim);
        let window = hi - lo;
        if window <= 0.0 {
            return 0.0;
        }
        let n = self
            .arrivals
            .iter()
            .filter(|t| **t >= lo && **t < hi)
            .count();
        n as f64 / window
    }

    /// Throughput over the paper's standard 5% trim.
    pub fn paper_throughput(&self, duration_secs: f64) -> f64 {
        self.steady_state_throughput(duration_secs, 0.05)
    }

    /// Serializes the arrival times as a JSON object.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![(
            "arrivals".into(),
            Json::Arr(self.arrivals.iter().map(|t| Json::num(*t)).collect()),
        )])
        .to_string()
    }

    /// Restores a recorder from [`ThroughputRecorder::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        let arrivals = v
            .field_array("arrivals")?
            .iter()
            .map(|t| {
                t.as_f64()
                    .ok_or(JsonError::MissingField { name: "arrival" })
            })
            .collect::<Result<_, _>>()?;
        Ok(ThroughputRecorder { arrivals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_basics() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.received(), 0);
        assert_eq!(r.mean_ms(), 0.0);
        r.record_ms(10.0);
        r.record_ms(30.0);
        assert_eq!(r.received(), 2);
        assert_eq!(r.mean_ms(), 20.0);
        assert_eq!(r.max_ms(), 30.0);
        assert!((r.std_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn latency_trim_is_by_duration_not_count() {
        let mut r = LatencyRecorder::new();
        // Ten early outliers, all inside the first 4% of a 100 s run. A
        // count-based 5% trim of 20 samples would drop only one from each
        // end; the paper's duration-based trim must drop all ten.
        for i in 0..10 {
            r.record_at(i as f64 * 0.4, 1000.0);
        }
        // Ten steady-state samples in the middle of the run.
        for i in 0..10 {
            r.record_at(40.0 + i as f64, 10.0);
        }
        let w = r.windowed_stats(100.0, 0.05);
        assert_eq!(w.count(), 10, "all early-burst samples must be trimmed");
        assert_eq!(w.mean(), 10.0);
        assert_eq!(r.paper_mean_ms(100.0), 10.0);
        // The untrimmed mean still sees everything.
        assert_eq!(r.mean_ms(), 505.0);
    }

    #[test]
    fn latency_trim_excludes_cooldown_tail() {
        let mut r = LatencyRecorder::new();
        r.record_at(50.0, 20.0);
        r.record_at(97.0, 500.0); // straggler in the last 3% of 100 s
        let w = r.windowed_stats(100.0, 0.05);
        assert_eq!(w.count(), 1);
        assert_eq!(r.paper_mean_ms(100.0), 20.0);
    }

    #[test]
    fn latency_paper_mean_falls_back_when_window_empty() {
        let mut r = LatencyRecorder::new();
        r.record_ms(15.0); // untimestamped
        assert_eq!(r.paper_mean_ms(10.0), 15.0);

        let mut all_late = LatencyRecorder::new();
        all_late.record_at(9.9, 42.0); // inside the final 5% of 10 s
        assert_eq!(all_late.paper_mean_ms(10.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "trim")]
    fn latency_bad_trim_panics() {
        LatencyRecorder::new().windowed_stats(1.0, 0.6);
    }

    #[test]
    fn throughput_uniform_arrivals() {
        let mut r = ThroughputRecorder::new();
        // 100 messages uniformly over 10 seconds = 10 msg/s.
        for i in 0..100 {
            r.record(i as f64 * 0.1);
        }
        let tp = r.steady_state_throughput(10.0, 0.0);
        assert!((tp - 10.0).abs() < 1e-9, "tp = {tp}");
    }

    #[test]
    fn throughput_trims_edges() {
        let mut r = ThroughputRecorder::new();
        // A burst only in the first 5% must not count with 5% trim.
        for i in 0..50 {
            r.record(i as f64 * 0.001); // all within [0, 0.05)
        }
        assert_eq!(r.paper_throughput(1.0), 0.0);
        // But counts without trimming.
        assert!(r.steady_state_throughput(1.0, 0.0) > 0.0);
    }

    #[test]
    fn empty_throughput_is_zero() {
        let r = ThroughputRecorder::new();
        assert_eq!(r.paper_throughput(10.0), 0.0);
        assert_eq!(r.total(), 0);
    }

    #[test]
    #[should_panic(expected = "trim")]
    fn bad_trim_panics() {
        ThroughputRecorder::new().steady_state_throughput(1.0, 0.5);
    }

    #[test]
    fn zero_duration_is_zero() {
        let mut r = ThroughputRecorder::new();
        r.record(0.0);
        assert_eq!(r.steady_state_throughput(0.0, 0.0), 0.0);
    }
}
