//! Figure 13: detailed analysis (Appendix C) vs simulation, no DoS attack.
//!
//! Thin wrapper over [`drum_bench::figures::fig13`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::fig13(&mut out).expect("write fig13 to stdout");
}
