//! Cryptographic substrate for the Drum DoS-resistant gossip protocol.
//!
//! The Drum paper (Badishi, Keidar, Sasson — DSN 2004) assumes two standard
//! cryptographic services:
//!
//! 1. **Source authentication** — each multicast data message can be
//!    attributed unforgeably to its originator ([`auth`]).
//! 2. **Port concealment** — the randomly chosen ports carried in
//!    pull-requests and push-offers are encrypted so the attacker cannot
//!    target them ([`mod@seal`]).
//!
//! Both are built on a from-scratch, test-vector-verified SHA-256
//! ([`sha256`]) and HMAC-SHA-256 ([`hmac`]); key distribution is modeled by
//! a [`keys::KeyStore`] standing in for the paper's PKI (see `DESIGN.md`
//! for the substitution rationale).
//!
//! # Examples
//!
//! Sealing a random port for a gossip partner:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use drum_crypto::keys::KeyStore;
//! use drum_crypto::seal::{seal_port, open_port};
//!
//! let pki = KeyStore::new(42);
//! let partner_key = pki.register(7);
//!
//! // Sender side: conceal the ephemeral port.
//! let sealed = seal_port(&pki.key_of(7)?, /*nonce=*/ 1, 50123)?;
//!
//! // Recipient side: recover it.
//! assert_eq!(open_port(&partner_key, &sealed)?, 50123);
//! # Ok(())
//! # }
//! ```

// Unsafe code is denied crate-wide and allowed in exactly two places: the
// `sha256::shani` and `sha256::avx2` modules, the leaf kernels that call
// x86-64 intrinsics behind runtime CPU-feature checks. Everything else in
// this crate — including the multiway lane transposition feeding the AVX2
// kernel — is safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod batch;
pub mod hex;
pub mod hmac;
pub mod keys;
pub mod multiway;
pub mod seal;
pub mod sha256;

pub use auth::{
    frame_job, msg_job, sign, sign_frame_with, sign_many, sign_with, verify, verify_frame,
    verify_frame_with, verify_many, verify_with, AuthError, AuthTag, AUTH_TAG_LEN,
};
pub use batch::{BatchVerifier, MacCounters, VerifyRequest};
pub use hmac::HmacKey;
pub use keys::{KeyStore, SecretKey, UnknownPeerError};
pub use multiway::{LaneStats, MacJob, MultiMac};
pub use seal::{open, open_port, seal, seal_port, SealError, SealedBox};

#[cfg(test)]
mod proptests {
    use crate::hmac::{hmac_sha256, HmacKey};
    use crate::keys::SecretKey;
    use crate::seal::{open, seal, MAX_SEALED_LEN};
    use crate::sha256::Sha256;
    use drum_testkit::prop::{check, Config, Gen};
    use drum_testkit::{prop_assert, prop_assert_eq};

    fn key_bytes(g: &mut Gen) -> [u8; 32] {
        let mut key = [0u8; 32];
        for b in &mut key {
            *b = g.u8();
        }
        key
    }

    #[test]
    fn sha256_incremental_equals_oneshot() {
        check(
            "sha256_incremental_equals_oneshot",
            Config::default(),
            |g| {
                let data = g.bytes(0..512);
                let split = g.usize_in(0..512).min(data.len());
                let mut h = Sha256::new();
                h.update(&data[..split]);
                h.update(&data[split..]);
                prop_assert_eq!(h.finalize(), Sha256::digest(&data));
                Ok(())
            },
        );
    }

    #[test]
    fn hmac_deterministic() {
        check("hmac_deterministic", Config::default(), |g| {
            let key = g.bytes(0..100);
            let data = g.bytes(0..200);
            prop_assert_eq!(hmac_sha256(&key, &data), hmac_sha256(&key, &data));
            Ok(())
        });
    }

    #[test]
    fn cached_schedule_hmac_equals_oneshot() {
        check(
            "cached_schedule_hmac_equals_oneshot",
            Config::default(),
            |g| {
                let key = g.bytes(0..100);
                let data = g.bytes(0..256);
                let split = g.usize_in(0..257).min(data.len());
                let schedule = HmacKey::new(&key);
                let expected = hmac_sha256(&key, &data);
                // One-shot over the cached schedule.
                prop_assert_eq!(schedule.mac(&data), expected);
                // Streamed as two arbitrary parts.
                prop_assert_eq!(
                    schedule.mac_parts(&[&data[..split], &data[split..]]),
                    expected
                );
                // Incremental context started from the cached schedule.
                let mut mac = schedule.begin();
                mac.update(&data[..split]);
                mac.update(&data[split..]);
                prop_assert_eq!(mac.finalize(), expected);
                Ok(())
            },
        );
    }

    // Satellite: multiway sign_many/verify_many equal the scalar
    // sign_with/verify_with for random lane counts 1..=8 (and beyond, so the
    // ragged final batch after full 8-lane chunks is exercised), random key
    // sets, and message lengths spanning 0..4 blocks — on both the
    // dispatched (8-lane where available) and forced-scalar engines.
    #[test]
    fn multiway_equals_scalar_paths() {
        use crate::auth::{
            frame_job, msg_job, sign_frame_with, sign_many, sign_with, verify_frame_with,
            verify_many, verify_with, AuthError,
        };
        use crate::multiway::MultiMac;
        use crate::sha256::BLOCK_LEN;

        check("multiway_equals_scalar_paths", Config::default(), |g| {
            let nkeys = g.usize_in(1..5);
            let schedules: Vec<HmacKey> =
                (0..nkeys).map(|_| HmacKey::new(&g.bytes(1..64))).collect();
            // Mostly partial lanes (1..=8), sometimes multi-chunk + ragged.
            let njobs = if g.u8() % 4 == 0 {
                g.usize_in(9..28)
            } else {
                g.usize_in(1..9)
            };
            let mut key_of = Vec::new();
            let mut frames = Vec::new();
            let mut ids = Vec::new();
            let mut payloads = Vec::new();
            for _ in 0..njobs {
                key_of.push(g.index(nkeys));
                frames.push(g.u8() % 2 == 1);
                ids.push((g.u64(), g.u64()));
                payloads.push(g.bytes(0..4 * BLOCK_LEN));
            }
            let jobs: Vec<_> = (0..njobs)
                .map(|i| {
                    let key = &schedules[key_of[i]];
                    let (a, b) = ids[i];
                    if frames[i] {
                        frame_job(key, a, b, &payloads[i])
                    } else {
                        msg_job(key, a, b, &payloads[i])
                    }
                })
                .collect();

            let scalar_tags: Vec<_> = (0..njobs)
                .map(|i| {
                    let key = &schedules[key_of[i]];
                    let (a, b) = ids[i];
                    if frames[i] {
                        sign_frame_with(key, a, b, &payloads[i])
                    } else {
                        sign_with(key, a, b, &payloads[i])
                    }
                })
                .collect();

            let mut tags = Vec::new();
            let mut verdicts = Vec::new();
            for mm in [&mut MultiMac::lanes(), &mut MultiMac::scalar()] {
                sign_many(mm, &jobs, &mut tags);
                prop_assert_eq!(&tags, &scalar_tags);
                // verify_many verdicts match verify_with/verify_frame_with,
                // including on a corrupted tag.
                let mut bad = tags.clone();
                let victim = g.index(njobs);
                bad[victim].0[g.index(32)] ^= g.u8() | 1;
                verify_many(mm, &jobs, &bad, &mut verdicts);
                for i in 0..njobs {
                    let key = &schedules[key_of[i]];
                    let (a, b) = ids[i];
                    let want = if frames[i] {
                        verify_frame_with(key, a, b, &payloads[i], &bad[i])
                    } else {
                        verify_with(key, a, b, &payloads[i], &bad[i])
                    };
                    prop_assert_eq!(verdicts[i], want);
                    if i == victim {
                        prop_assert_eq!(verdicts[i], Err(AuthError::Forged));
                    }
                }
            }
            Ok(())
        });
    }

    #[test]
    fn seal_round_trips() {
        check("seal_round_trips", Config::default(), |g| {
            let k = SecretKey::from_bytes(key_bytes(g));
            let nonce = g.u64();
            let pt = g.bytes(0..MAX_SEALED_LEN + 1);
            let sealed = seal(&k, nonce, &pt).unwrap();
            prop_assert_eq!(open(&k, &sealed).unwrap(), pt);
            Ok(())
        });
    }

    #[test]
    fn seal_tamper_detected() {
        check("seal_tamper_detected", Config::default(), |g| {
            let k = SecretKey::from_bytes(key_bytes(g));
            let nonce = g.u64();
            let pt = g.bytes(1..MAX_SEALED_LEN + 1);
            let flip = g.u8() | 1; // non-zero XOR mask
            let mut sealed = seal(&k, nonce, &pt).unwrap();
            let i = g.index(sealed.ciphertext.len());
            sealed.ciphertext[i] ^= flip;
            prop_assert!(open(&k, &sealed).is_err());
            Ok(())
        });
    }

    #[test]
    fn hex_round_trips() {
        check("hex_round_trips", Config::default(), |g| {
            let data = g.bytes(0..64);
            prop_assert_eq!(
                crate::hex::decode(&crate::hex::encode(&data)).unwrap(),
                data
            );
            Ok(())
        });
    }
}
