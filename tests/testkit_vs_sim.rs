//! The abstract simulator (`drum-sim`, no push-offers, acceptance
//! probabilities) versus the real engine on the deterministic virtual
//! network (`drum-testkit`, full three-way push handshake, sealed ports,
//! real buffers). The paper's analysis deliberately models push *without*
//! offers; these tests confirm the conclusions carry over to the real
//! protocol.

use drum::core::config::{GossipConfig, ProtocolVariant};
use drum::sim::config::SimConfig;
use drum::sim::runner::run_experiment;
use drum::testkit::{NetworkConfig, VirtualNetwork};
use drum_core::bytes::Bytes;

const TRIALS: u64 = 8;

/// Mean rounds for the real engine to reach `fraction` of the group.
fn testkit_rounds(gossip: GossipConfig, n: usize, attacked: usize, x: f64) -> f64 {
    let mut total = 0u32;
    for seed in 0..TRIALS {
        let cfg = NetworkConfig::drum(n)
            .with_gossip(gossip.clone())
            .with_loss(0.01)
            .with_attack((0..attacked).collect(), x);
        let mut net = VirtualNetwork::new(cfg, seed);
        let id = net.publish(0, Bytes::from_static(b"m"));
        total += net.run_until_spread(id, 0.99, 500).unwrap_or(500);
    }
    total as f64 / TRIALS as f64
}

fn sim_rounds(proto: ProtocolVariant, n: usize, attacked: usize, x: f64) -> f64 {
    let mut cfg = if x > 0.0 {
        let mut c = SimConfig::paper_attack(proto, n, x);
        c.malicious = 0; // the testkit has no malicious members
        if let Some(a) = c.attack.as_mut() {
            a.attacked = attacked;
        }
        c
    } else {
        SimConfig::baseline(proto, n)
    };
    cfg.max_rounds = 1000;
    run_experiment(&cfg, 100, 77, 0).mean_rounds()
}

#[test]
fn no_attack_real_engine_matches_simulator() {
    for (gossip, proto) in [
        (GossipConfig::drum(), ProtocolVariant::Drum),
        (GossipConfig::push(), ProtocolVariant::Push),
        (GossipConfig::pull(), ProtocolVariant::Pull),
    ] {
        let real = testkit_rounds(gossip, 60, 0, 0.0);
        let sim = sim_rounds(proto, 60, 0, 0.0);
        assert!(
            (real - sim).abs() <= 3.0,
            "{proto}: real engine {real:.1} vs simulator {sim:.1}"
        );
    }
}

#[test]
fn drum_flat_under_attack_with_real_handshake() {
    let weak = testkit_rounds(GossipConfig::drum(), 40, 4, 32.0);
    let strong = testkit_rounds(GossipConfig::drum(), 40, 4, 512.0);
    assert!(
        strong < weak + 3.0,
        "real Drum should be flat in x: {weak:.1} -> {strong:.1}"
    );
}

#[test]
fn push_degrades_under_attack_with_real_handshake() {
    // With offers, an attacked target cannot even *answer* the offer, so
    // the push chain breaks exactly as the offer-less model predicts.
    let weak = testkit_rounds(GossipConfig::push(), 40, 4, 32.0);
    let strong = testkit_rounds(GossipConfig::push(), 40, 4, 256.0);
    assert!(
        strong > weak * 1.5,
        "real Push should degrade: {weak:.1} -> {strong:.1}"
    );
}

#[test]
fn pull_source_attack_stalls_with_real_handshake() {
    let weak = testkit_rounds(GossipConfig::pull(), 40, 1, 32.0);
    let strong = testkit_rounds(GossipConfig::pull(), 40, 1, 256.0);
    assert!(
        strong > weak * 1.5,
        "real Pull should stall at the source: {weak:.1} -> {strong:.1}"
    );
}

#[test]
fn real_drum_beats_real_push_and_pull_under_attack() {
    let drum = testkit_rounds(GossipConfig::drum(), 40, 4, 256.0);
    let push = testkit_rounds(GossipConfig::push(), 40, 4, 256.0);
    let pull = testkit_rounds(GossipConfig::pull(), 40, 4, 256.0);
    assert!(drum * 1.5 < push, "drum {drum:.1} vs push {push:.1}");
    assert!(drum * 1.5 < pull, "drum {drum:.1} vs pull {pull:.1}");
}
