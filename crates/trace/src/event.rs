//! The structured event model: typed field values, timestamps in
//! sim-rounds or wall-clock microseconds, and a byte-stable JSON-lines
//! encoding built on `drum_metrics::json`.

use drum_metrics::json::Json;

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, ids, rounds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, fractions).
    F64(f64),
    /// String (labels, message kinds).
    Str(String),
    /// Static string — no allocation on emission; hot paths (per-message
    /// engine events) should prefer this over [`Value::Str`].
    Static(&'static str),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Static(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            // Counts above 2^53 would lose precision through the f64-backed
            // Json::Num; trace counters never get near that.
            Value::U64(v) => Json::num(*v as f64),
            Value::I64(v) => Json::num(*v as f64),
            Value::F64(v) => Json::num(*v),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Static(s) => Json::Str((*s).to_string()),
            Value::Bool(b) => Json::Bool(*b),
        }
    }
}

/// One named field of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (static so emission sites allocate only for values).
    pub key: &'static str,
    /// Field value.
    pub value: Value,
}

/// When an event happened, in the clock domain of its emitter.
///
/// Simulation layers use [`Timestamp::Round`] so fixed-seed runs are
/// byte-identical; the networked runtime uses [`Timestamp::WallMicros`]
/// (microseconds since the tracer's epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timestamp {
    /// No meaningful time (configuration events, counters).
    None,
    /// Logical round number — deterministic across identical runs.
    Round(u64),
    /// Microseconds since the owning tracer's epoch instant.
    WallMicros(u64),
}

/// A single structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emitting component ("engine", "sim", "net", "attack", ...).
    pub target: &'static str,
    /// Event name within the component ("round.begin", "budget.drop", ...).
    pub name: &'static str,
    /// When it happened.
    pub time: Timestamp,
    /// Typed payload fields, in emission order.
    pub fields: Vec<Field>,
}

impl Event {
    /// Creates an event with no fields.
    pub fn new(target: &'static str, name: &'static str, time: Timestamp) -> Self {
        Event {
            target,
            name,
            time,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push(Field {
            key,
            value: value.into(),
        });
        self
    }

    /// Looks up a field value by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }

    /// Encodes the event as one JSON object with a fixed key order, so
    /// identical event sequences serialize byte-identically.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("target".to_string(), Json::Str(self.target.to_string())),
            ("event".to_string(), Json::Str(self.name.to_string())),
        ];
        match self.time {
            Timestamp::None => {}
            Timestamp::Round(r) => pairs.push(("round".to_string(), Json::num(r as f64))),
            Timestamp::WallMicros(us) => {
                pairs.push(("wall_us".to_string(), Json::num(us as f64)));
            }
        }
        if !self.fields.is_empty() {
            pairs.push((
                "fields".to_string(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|f| (f.key.to_string(), f.value.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(pairs)
    }

    /// The event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.to_json().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_stable_and_ordered() {
        let e = Event::new("engine", "round.begin", Timestamp::Round(3))
            .with("me", 7u64)
            .with("pull", 2usize);
        assert_eq!(
            e.to_json_line(),
            r#"{"target":"engine","event":"round.begin","round":3,"fields":{"me":7,"pull":2}}"#
        );
        // Identical events serialize identically.
        assert_eq!(e.to_json_line(), e.clone().to_json_line());
    }

    #[test]
    fn fieldless_event_omits_fields_key() {
        let e = Event::new("net", "stop", Timestamp::None);
        assert_eq!(e.to_json_line(), r#"{"target":"net","event":"stop"}"#);
    }

    #[test]
    fn wall_timestamp_serializes() {
        let e = Event::new("net", "round.begin", Timestamp::WallMicros(1500));
        assert!(e.to_json_line().contains(r#""wall_us":1500"#));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u16), Value::U64(3));
        assert_eq!(Value::from(-2i32), Value::I64(-2));
        assert_eq!(Value::from(0.5f64), Value::F64(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Static("x"));
        assert_eq!(Value::from("x".to_string()), Value::Str("x".into()));
        // Both string forms serialize identically.
        assert_eq!(
            Value::Static("x").to_json(),
            Value::Str("x".into()).to_json()
        );
    }

    #[test]
    fn field_lookup() {
        let e = Event::new("sim", "round", Timestamp::Round(1)).with("with_m", 5u64);
        assert_eq!(e.field("with_m"), Some(&Value::U64(5)));
        assert_eq!(e.field("missing"), None);
    }
}
