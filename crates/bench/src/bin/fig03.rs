//! Figure 3: targeted DoS attacks — the paper's headline result.
//!
//! (a) propagation time vs attack rate `x` with 10% of the processes
//!     attacked: Push and Pull degrade linearly, Drum stays flat;
//! (b) propagation time vs attacked fraction α at `x = 128`.

use drum_bench::{banner, scaled, sweep_table, trials, PROTOCOL_NAMES, SEED};
use drum_sim::experiments::{fig3a_attack_strength, fig3b_attack_extent};

fn main() {
    banner("Figure 3", "propagation time under targeted DoS attacks");
    let trials = trials();
    let ns: Vec<usize> = if drum_bench::full_scale() {
        vec![120, 1000]
    } else {
        vec![120]
    };
    let xs: Vec<f64> = scaled(
        vec![0.0, 32.0, 64.0, 128.0, 256.0, 512.0],
        vec![
            0.0, 32.0, 64.0, 96.0, 128.0, 192.0, 256.0, 320.0, 384.0, 448.0, 512.0,
        ],
    );

    for &n in &ns {
        println!("(a) alpha = 10%, n = {n}: average rounds to 99% of correct processes vs x");
        let rows = fig3a_attack_strength(n, &xs, trials, SEED);
        println!("{}", sweep_table("x", &rows, &PROTOCOL_NAMES));
        println!("paper: Drum flat; Push and Pull linear in x\n");
    }

    let alphas = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    for &n in &ns {
        println!("(b) x = 128, n = {n}: average rounds vs attacked fraction alpha");
        let rows = fig3b_attack_extent(n, 128.0, &alphas, trials, SEED);
        println!("{}", sweep_table("alpha", &rows, &PROTOCOL_NAMES));
        println!("paper: all grow with alpha, but Drum stays far below Push and Pull\n");
    }
}
