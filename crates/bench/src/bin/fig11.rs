//! Figure 11: CDF of per-receiver average latency (real UDP measurements)
//! under (a) α = 10% and (b) α = 40%, both with x = 128.
//!
//! Push delivers fast to non-attacked receivers but its attacked receivers
//! lag far behind; Pull is uniformly slow; Drum is almost as fast as Push
//! with a small attacked/non-attacked gap.

use std::time::Duration;

use drum_bench::{banner, scaled, PROTOCOLS, PROTOCOL_NAMES, SEED};
use drum_metrics::table::Table;
use drum_net::experiment::{paper_cluster_config, throughput_experiment};

fn main() {
    banner(
        "Figure 11",
        "CDF of per-process average delivery latency (measurements)",
    );
    let n = scaled(20, 50);
    let round = Duration::from_millis(scaled(100, 1000));
    let messages = scaled(300, 10_000);
    let rate = 40.0;

    for alpha in [0.1, 0.4] {
        let attacked = ((n as f64) * alpha).round() as usize;
        println!("alpha = {alpha}, x = 128, n = {n}: per-receiver mean latency (ms), sorted");
        let mut table = Table::new(
            std::iter::once("percentile".to_string())
                .chain(PROTOCOL_NAMES.iter().map(|s| s.to_string()))
                .collect(),
        );

        let mut per_protocol: Vec<Vec<f64>> = Vec::new();
        for &p in &PROTOCOLS {
            let cfg = paper_cluster_config(p, n, attacked, 128.0, round, SEED);
            let report = throughput_experiment(cfg, messages, rate, 50, Duration::from_secs(5))
                .expect("cluster failed");
            let mut lats: Vec<f64> = report
                .receivers
                .iter()
                .filter(|r| r.received > 0)
                .map(|r| r.mean_latency_ms)
                .collect();
            lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
            per_protocol.push(lats);
        }

        for pct in [10usize, 25, 50, 75, 90, 100] {
            let mut cells = vec![format!("{pct}%")];
            for lats in &per_protocol {
                if lats.is_empty() {
                    cells.push("-".into());
                    continue;
                }
                let idx = ((pct as f64 / 100.0) * lats.len() as f64).ceil() as usize;
                let idx = idx.clamp(1, lats.len()) - 1;
                cells.push(format!("{:.0}", lats[idx]));
            }
            table.row(cells);
        }
        println!("{table}");
        println!(
            "paper: Drum tracks Push up to the ~90th percentile and avoids Push's\n\
             attacked-receiver tail (4x the non-attacked latency); Pull is uniformly slow\n"
        );
    }
}
