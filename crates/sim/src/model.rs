//! The round-synchronized simulation model (§7 and Appendix C of the
//! paper), tracking the propagation of a single message `M`.
//!
//! Model recap:
//!
//! * rounds are synchronized; every correct process gossips every round
//!   (buffers always hold *some* messages, so contention for reception
//!   slots exists whether or not a process holds `M`);
//! * push is modeled without push-offers, as in the paper's analysis and
//!   simulations;
//! * each transmission is independently lost with probability `loss`;
//! * a process accepts at most `F_in-push` push messages and `F_in-pull`
//!   pull-requests per round, chosen uniformly among valid + fabricated
//!   arrivals — this is where the DoS attack bites;
//! * pull-replies are always received thanks to random ports, except in the
//!   no-random-ports ablation where the adversary splits its pull budget
//!   between the request and reply ports (Figure 12(a));
//! * crashed and malicious processes transmit nothing and drop everything
//!   sent to them (correct processes still waste fan-out on them).

use rand::rngs::SmallRng;

use drum_core::BitSet;
use drum_trace::{trace_event, Timestamp, Tracer};

use crate::adversary::{AdversaryStrategy, TargetView};
use crate::config::{Role, SimConfig};
use crate::sampling::{
    accepted_valid, any_interesting, binomial, randomized_round, sample_targets, sample_targets_any,
};

/// Mutable state of one simulated trial.
#[derive(Debug)]
pub struct SimState {
    cfg: SimConfig,
    /// Whether process `i` holds `M` — word-packed so the per-round
    /// delivery bookkeeping runs on popcount/trailing-zeros word ops.
    has_m: BitSet,
    /// Role of each process, precomputed.
    roles: Vec<Role>,
    /// Whether process `i` is currently under attack (dynamic when the
    /// adversary rotates its target set).
    attacked_flags: Vec<bool>,
    /// Current round number (0 = initial state, only the source holds `M`).
    round: u32,
    /// Structured-event emitter; round-stamped, so fixed-seed runs trace
    /// byte-identically (the golden-trace CI oracle).
    tracer: Tracer,
    /// Indices of correct processes (roles are fixed for a trial's lifetime).
    correct_idx: Vec<usize>,
    /// Incrementally maintained `correct_with_m` — the per-round trace event
    /// and the experiment loop both query it every round, so a full O(n)
    /// scan per query would dominate large-n sweeps.
    n_correct_with_m: usize,
    /// Incrementally maintained `attacked_with_m`; rebuilt on target
    /// rotation, bumped at delivery time otherwise.
    n_attacked_with_m: usize,
    /// The adversary strategy driving targeting; consulted at the top of
    /// every round. [`crate::adversary::StaticFlood`] for unattacked runs.
    strategy: Box<dyn AdversaryStrategy>,
    /// Per-target per-round channel rates `(push, pull)` chosen by the
    /// strategy. Constant for a trial's lifetime, so computed once.
    adv_x_push: f64,
    adv_x_pull: f64,

    // Scratch buffers, reused across rounds.
    push_valid: Vec<u32>,
    push_with_m: Vec<u32>,
    pull_requests: Vec<Vec<u32>>,
    reply_valid: Vec<u32>,
    reply_with_m: Vec<u32>,
    new_m: BitSet,
    targets: Vec<usize>,
    rotation_picks: Vec<usize>,
}

impl SimState {
    /// Initializes a trial: the source (process 0) holds `M`, nobody else.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation config");
        let n = cfg.n;
        let roles: Vec<Role> = (0..n).map(|i| cfg.role_of(i)).collect();
        let attacked_flags: Vec<bool> = roles.iter().map(|r| *r == Role::AttackedCorrect).collect();
        let mut has_m = BitSet::new(n);
        has_m.set(0);
        let correct_idx: Vec<usize> = (0..n)
            .filter(|&i| matches!(roles[i], Role::AttackedCorrect | Role::Correct))
            .collect();
        // Only the source holds `M` initially.
        let n_correct_with_m =
            usize::from(matches!(roles[0], Role::AttackedCorrect | Role::Correct));
        let n_attacked_with_m = usize::from(attacked_flags[0]);
        let strategy = cfg.adversary().strategy();
        let (adv_x_push, adv_x_pull) = strategy.rates(&cfg);
        SimState {
            cfg,
            has_m,
            roles,
            attacked_flags,
            round: 0,
            tracer: Tracer::disabled(),
            correct_idx,
            n_correct_with_m,
            n_attacked_with_m,
            strategy,
            adv_x_push,
            adv_x_pull,
            push_valid: vec![0; n],
            push_with_m: vec![0; n],
            pull_requests: vec![Vec::new(); n],
            reply_valid: vec![0; n],
            reply_with_m: vec![0; n],
            new_m: BitSet::new(n),
            targets: Vec::new(),
            rotation_picks: Vec::new(),
        }
    }

    /// The scenario being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Attaches a tracer and emits a `sim.start` scenario event. Tracing
    /// never touches the RNG, so traced and untraced runs of the same seed
    /// evolve identically.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        trace_event!(
            self.tracer,
            "sim",
            "sim.start",
            Timestamp::Round(0),
            n = self.cfg.n,
            protocol = self.cfg.protocol.to_string(),
            malicious = self.cfg.malicious,
            crashed = self.cfg.crashed,
            attacked = self.cfg.attacked(),
            x_per_round = self.cfg.attack.map_or(0.0, |a| a.x_per_round),
            random_ports = self.cfg.random_ports,
            adversary = self.strategy.name()
        );
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current round number.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether process `i` currently holds `M`.
    pub fn has_m(&self, i: usize) -> bool {
        self.has_m.get(i)
    }

    fn is_correct(&self, i: usize) -> bool {
        matches!(self.roles[i], Role::AttackedCorrect | Role::Correct)
    }

    /// Whether process `i` is currently under attack. Unlike the static
    /// [`SimConfig::role_of`], this tracks adversarial target rotation.
    pub fn is_attacked(&self, i: usize) -> bool {
        self.attacked_flags[i]
    }

    /// Re-draws the attacked set uniformly among correct processes
    /// (rotating-adversary extension). The correct-index list is fixed for
    /// the trial and the pick buffer is reused, so rotation allocates
    /// nothing after the first call.
    fn rotate_targets(&mut self, rng: &mut SmallRng) {
        let k = self.cfg.attacked();
        let mut picked = core::mem::take(&mut self.rotation_picks);
        sample_targets_any(self.correct_idx.len(), k, rng, &mut picked);
        self.apply_targets(&picked);
        self.rotation_picks = picked;
    }

    /// Replaces the attacked set with `picked` (indices into
    /// `correct_idx`) and rebuilds the incremental attacked-with-`M`
    /// counter.
    fn apply_targets(&mut self, picked: &[usize]) {
        for flag in &mut self.attacked_flags {
            *flag = false;
        }
        self.n_attacked_with_m = 0;
        for &idx in picked {
            let target = self.correct_idx[idx];
            self.attacked_flags[target] = true;
            if self.has_m.get(target) {
                self.n_attacked_with_m += 1;
            }
        }
    }

    /// Number of correct processes currently holding `M`.
    pub fn correct_with_m(&self) -> usize {
        debug_assert_eq!(
            self.n_correct_with_m,
            (0..self.cfg.n)
                .filter(|&i| self.is_correct(i) && self.has_m.get(i))
                .count()
        );
        self.n_correct_with_m
    }

    /// Number of attacked correct processes holding `M`.
    pub fn attacked_with_m(&self) -> usize {
        debug_assert_eq!(
            self.n_attacked_with_m,
            (0..self.cfg.n)
                .filter(|&i| self.is_attacked(i) && self.has_m.get(i))
                .count()
        );
        self.n_attacked_with_m
    }

    /// Number of non-attacked correct processes holding `M`.
    pub fn unattacked_with_m(&self) -> usize {
        self.correct_with_m() - self.attacked_with_m()
    }

    /// Fraction of correct processes holding `M`.
    pub fn fraction_with_m(&self) -> f64 {
        self.correct_with_m() as f64 / self.cfg.correct() as f64
    }

    /// Executes one synchronized gossip round.
    pub fn step(&mut self, rng: &mut SmallRng) {
        let n = self.cfg.n;
        let ok = 1.0 - self.cfg.loss;
        self.round += 1;

        if let Some(k) = self.cfg.attack.and_then(|a| a.rotate_every) {
            if k > 0 && self.round.is_multiple_of(k) {
                self.rotate_targets(rng);
                trace_event!(
                    self.tracer,
                    "sim",
                    "attack.rotate",
                    Timestamp::Round(u64::from(self.round)),
                    targets = self.cfg.attacked()
                );
            }
        }

        // Adaptive-strategy targeting. `StaticFlood` (the paper's model and
        // the default) always declines, drawing nothing from the RNG, so
        // static scenarios keep their pre-strategy random stream.
        if self.cfg.attack.is_some() {
            let k = self.cfg.attacked();
            let mut picked = core::mem::take(&mut self.rotation_picks);
            let changed = self.strategy.retarget(
                &TargetView {
                    round: self.round,
                    k,
                    correct: &self.correct_idx,
                    has_m: &self.has_m,
                },
                rng,
                &mut picked,
            );
            if changed {
                self.apply_targets(&picked);
                trace_event!(
                    self.tracer,
                    "sim",
                    "attack.retarget",
                    Timestamp::Round(u64::from(self.round)),
                    strategy = self.strategy.name(),
                    targets = picked.len()
                );
            }
            self.rotation_picks = picked;
        }

        self.new_m.clear_all();

        // Fabricated-message totals injected this round (attack tracing).
        let mut fakes_push_total = 0u64;
        let mut fakes_pull_total = 0u64;

        // ---------------- Push phase ----------------
        let view_push = self.cfg.view_push();
        if view_push > 0 {
            self.push_valid.iter_mut().for_each(|v| *v = 0);
            self.push_with_m.iter_mut().for_each(|v| *v = 0);
            for s in 0..n {
                if !self.is_correct(s) {
                    continue; // crashed/malicious send nothing valid
                }
                let mut targets = core::mem::take(&mut self.targets);
                sample_targets(n, s, view_push, rng, &mut targets);
                for &t in &targets {
                    // Crashed/malicious targets silently discard.
                    if self.is_correct(t) && rng_chance(rng, ok) {
                        self.push_valid[t] += 1;
                        if self.has_m.get(s) {
                            self.push_with_m[t] += 1;
                        }
                    }
                }
                self.targets = targets;
            }
            let f_in_push = self.cfg.view_push();
            let x_push = self.adv_x_push;
            for t in 0..n {
                if !self.is_correct(t) || self.has_m.get(t) {
                    continue;
                }
                let fakes = if self.is_attacked(t) && x_push > 0.0 {
                    binomial(randomized_round(x_push, rng), ok, rng)
                } else {
                    0
                };
                fakes_push_total += fakes as u64;
                let valid = self.push_valid[t] as usize;
                let with_m = self.push_with_m[t] as usize;
                let acc = accepted_valid(valid, fakes, f_in_push, rng);
                if with_m > 0 && any_interesting(with_m, valid - with_m, acc, rng) {
                    self.new_m.set(t);
                }
            }
        }

        // ---------------- Pull phase ----------------
        let view_pull = self.cfg.view_pull();
        if view_pull > 0 {
            for q in &mut self.pull_requests {
                q.clear();
            }
            self.reply_valid.iter_mut().for_each(|v| *v = 0);
            self.reply_with_m.iter_mut().for_each(|v| *v = 0);

            for p in 0..n {
                if !self.is_correct(p) {
                    continue;
                }
                let mut targets = core::mem::take(&mut self.targets);
                sample_targets(n, p, view_pull, rng, &mut targets);
                for &t in &targets {
                    if self.is_correct(t) && rng_chance(rng, ok) {
                        self.pull_requests[t].push(p as u32);
                    }
                }
                self.targets = targets;
            }

            let f_in_pull = self.cfg.view_pull();
            // In the no-random-ports variant the pull attack budget is split
            // evenly between the request port and the reply port (§9).
            let (x_req, x_reply) = if self.cfg.random_ports {
                (self.adv_x_pull, 0.0)
            } else {
                (self.adv_x_pull / 2.0, self.adv_x_pull / 2.0)
            };

            for t in 0..n {
                if !self.is_correct(t) {
                    continue;
                }
                let reqs = core::mem::take(&mut self.pull_requests[t]);
                let fakes = if self.is_attacked(t) && x_req > 0.0 {
                    binomial(randomized_round(x_req, rng), ok, rng)
                } else {
                    0
                };
                fakes_pull_total += fakes as u64;
                let acc = accepted_valid(reqs.len(), fakes, f_in_pull, rng);
                // Choose which `acc` requests are served: partial
                // Fisher-Yates over the request list.
                let mut reqs = reqs;
                partial_shuffle(&mut reqs, acc, rng);
                for &p in reqs.iter().take(acc) {
                    let p = p as usize;
                    // The reply travels back; subject to link loss.
                    if !rng_chance(rng, ok) {
                        continue;
                    }
                    if self.cfg.random_ports {
                        // Random reply port: always processed.
                        if self.has_m.get(t) && !self.has_m.get(p) {
                            self.new_m.set(p);
                        }
                    } else {
                        // Well-known reply port: contends with fakes below.
                        self.reply_valid[p] += 1;
                        if self.has_m.get(t) {
                            self.reply_with_m[p] += 1;
                        }
                    }
                }
                self.pull_requests[t] = reqs;
            }

            if !self.cfg.random_ports {
                for p in 0..n {
                    if !self.is_correct(p) || self.has_m.get(p) {
                        continue;
                    }
                    let fakes = if self.is_attacked(p) && x_reply > 0.0 {
                        binomial(randomized_round(x_reply, rng), ok, rng)
                    } else {
                        0
                    };
                    fakes_pull_total += fakes as u64;
                    let valid = self.reply_valid[p] as usize;
                    let with_m = self.reply_with_m[p] as usize;
                    let acc = accepted_valid(valid, fakes, f_in_pull, rng);
                    if with_m > 0 && any_interesting(with_m, valid - with_m, acc, rng) {
                        self.new_m.set(p);
                    }
                }
            }
        }

        // Simultaneous state update: messages received this round are
        // forwarded starting next round. Word-level popcount gives the
        // delivery total; the per-delivery walk visits set bits only, in
        // ascending order (trace byte-stability).
        let newly = self.new_m.count_ones() as u64;
        let new_m = core::mem::replace(&mut self.new_m, BitSet::new(0));
        for i in new_m.iter_ones() {
            self.has_m.set(i);
            // Delivery-time counter maintenance; only correct processes
            // ever have `new_m` set.
            self.n_correct_with_m += 1;
            if self.is_attacked(i) {
                self.n_attacked_with_m += 1;
            }
            trace_event!(
                self.tracer,
                "sim",
                "deliver",
                Timestamp::Round(u64::from(self.round)),
                process = i,
                attacked = self.is_attacked(i)
            );
        }
        self.new_m = new_m;
        trace_event!(
            self.tracer,
            "sim",
            "round",
            Timestamp::Round(u64::from(self.round)),
            with_m = self.correct_with_m(),
            new = newly,
            attacked_with_m = self.attacked_with_m(),
            fakes_push = fakes_push_total,
            fakes_pull = fakes_pull_total
        );
    }
}

#[inline]
fn rng_chance(rng: &mut SmallRng, p: f64) -> bool {
    use rand::RngExt;
    p >= 1.0 || rng.random_bool(p)
}

/// Moves a uniform random `k`-subset to the front of `v` (partial
/// Fisher-Yates).
fn partial_shuffle(v: &mut [u32], k: usize, rng: &mut SmallRng) {
    use rand::RngExt;
    let k = k.min(v.len());
    for i in 0..k {
        let j = rng.random_range(i..v.len());
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drum_core::ProtocolVariant;
    use rand::SeedableRng;

    fn run(cfg: SimConfig, seed: u64, max_rounds: u32) -> (SimState, u32) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut state = SimState::new(cfg);
        let mut rounds = 0;
        while state.fraction_with_m() < state.config().threshold && rounds < max_rounds {
            state.step(&mut rng);
            rounds += 1;
        }
        (state, rounds)
    }

    #[test]
    fn initial_state_only_source() {
        let state = SimState::new(SimConfig::baseline(ProtocolVariant::Drum, 50));
        assert_eq!(state.correct_with_m(), 1);
        assert!(state.has_m(0));
        assert!(!state.has_m(1));
        assert_eq!(state.round(), 0);
    }

    #[test]
    fn all_protocols_disseminate_without_failures() {
        for p in [
            ProtocolVariant::Drum,
            ProtocolVariant::Push,
            ProtocolVariant::Pull,
        ] {
            let (state, rounds) = run(SimConfig::baseline(p, 120), 7, 100);
            assert!(
                state.fraction_with_m() >= 0.99,
                "{p} stuck at {}",
                state.fraction_with_m()
            );
            assert!(rounds <= 20, "{p} took {rounds} rounds");
        }
    }

    #[test]
    fn propagation_is_logarithmic_ish() {
        // Figure 2(a): rounds grow slowly (log) with n.
        let r = |n| {
            let mut total = 0;
            for seed in 0..5 {
                total += run(SimConfig::baseline(ProtocolVariant::Drum, n), seed, 200).1;
            }
            total as f64 / 5.0
        };
        let r50 = r(50);
        let r800 = r(800);
        assert!(r800 < r50 * 3.0, "r50={r50} r800={r800}");
    }

    #[test]
    fn crashes_degrade_gracefully() {
        // Figure 2(b): even 40% crashed processes only slow things down.
        let mut cfg = SimConfig::baseline(ProtocolVariant::Drum, 200);
        cfg.crashed = 80;
        let (state, rounds) = run(cfg, 3, 200);
        assert!(
            state.fraction_with_m() >= 0.99,
            "stuck at {}",
            state.fraction_with_m()
        );
        assert!(rounds < 40);
    }

    #[test]
    fn malicious_members_do_not_block_dissemination() {
        let mut cfg = SimConfig::baseline(ProtocolVariant::Drum, 200);
        cfg.malicious = 20;
        let (state, _) = run(cfg, 3, 200);
        assert!(state.fraction_with_m() >= 0.99);
    }

    #[test]
    fn targeted_attack_slows_push_much_more_than_drum() {
        // The core claim (Figure 3(a)) at small scale: α=10%, strong x.
        let avg = |proto| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let cfg = SimConfig::paper_attack(proto, 120, 256.0);
                run(cfg, seed, 400).1 as f64
            })
        };
        let drum = avg(ProtocolVariant::Drum);
        let push = avg(ProtocolVariant::Push);
        assert!(
            push > drum * 2.0,
            "push {push} should be much slower than drum {drum}"
        );
    }

    #[test]
    fn attacked_source_blocks_pull_exit() {
        // Under a strong attack on the source, Pull takes many rounds for M
        // to leave the source at all (geometric with small p̃).
        let cfg = SimConfig::paper_attack(ProtocolVariant::Pull, 120, 256.0);
        let mut slow_exits = 0;
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut state = SimState::new(cfg.clone());
            let mut exit_round = None;
            for r in 1..=100 {
                state.step(&mut rng);
                if state.correct_with_m() > 1 {
                    exit_round = Some(r);
                    break;
                }
            }
            if exit_round.unwrap_or(101) > 3 {
                slow_exits += 1;
            }
        }
        assert!(
            slow_exits >= 3,
            "expected several slow source exits, got {slow_exits}"
        );
    }

    #[test]
    fn no_random_ports_variant_is_slower_under_attack() {
        let avg = |random_ports: bool| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 256.0);
                cfg.random_ports = random_ports;
                run(cfg, seed, 400).1 as f64
            })
        };
        let with_ports = avg(true);
        let without = avg(false);
        assert!(
            without > with_ports * 1.3,
            "no-random-ports {without} should be slower than {with_ports}"
        );
    }

    #[test]
    fn attacked_and_unattacked_counts_consistent() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 64.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut state = SimState::new(cfg);
        for _ in 0..10 {
            state.step(&mut rng);
            assert_eq!(
                state.correct_with_m(),
                state.attacked_with_m() + state.unattacked_with_m()
            );
        }
    }

    #[test]
    fn incremental_counters_match_full_recount() {
        // The counters are maintained at delivery time and rebuilt on
        // rotation; they must agree with a from-scratch scan at every
        // round, including across rotation boundaries.
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 80, 64.0);
        cfg.attack.as_mut().unwrap().rotate_every = Some(2);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut state = SimState::new(cfg);
        for _ in 0..20 {
            state.step(&mut rng);
            let correct: usize = (0..state.config().n)
                .filter(|&i| state.is_correct(i) && state.has_m(i))
                .count();
            let attacked: usize = (0..state.config().n)
                .filter(|&i| state.is_attacked(i) && state.has_m(i))
                .count();
            assert_eq!(state.correct_with_m(), correct);
            assert_eq!(state.attacked_with_m(), attacked);
        }
    }

    #[test]
    fn partial_shuffle_selects_uniform_prefix() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let mut v = [0u32, 1, 2, 3, 4];
            partial_shuffle(&mut v, 2, &mut rng);
            counts[v[0] as usize] += 1;
            counts[v[1] as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let p = *c as f64 / 100_000.0;
            assert!((p - 0.2).abs() < 0.01, "element {i}: {p}");
        }
    }

    #[test]
    fn rotating_adversary_moves_targets() {
        let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 60, 64.0);
        cfg.attack.as_mut().unwrap().rotate_every = Some(2);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut state = SimState::new(cfg.clone());
        let initial: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
        assert_eq!(initial.len(), 6);
        // Run past a rotation boundary; the attacked set should change at
        // some point (probability of re-drawing the same 6-subset is ~0).
        let mut changed = false;
        for _ in 0..10 {
            state.step(&mut rng);
            let now: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
            assert_eq!(now.len(), 6, "target count must be preserved");
            // Targets are always correct processes.
            for &t in &now {
                assert!(matches!(
                    cfg.role_of(t),
                    Role::AttackedCorrect | Role::Correct
                ));
            }
            if now != initial {
                changed = true;
            }
        }
        assert!(changed, "rotation never changed the target set");
    }

    #[test]
    fn rotating_attack_does_not_beat_static_against_drum() {
        // The extension's finding: moving the attack around gains nothing.
        let mean = |rotate: Option<u32>| {
            drum_testkit::mean_over_seeds(0..10, |seed| {
                let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
                cfg.attack.as_mut().unwrap().rotate_every = rotate;
                run(cfg, seed, 400).1 as f64
            })
        };
        let static_attack = mean(None);
        let rotating = mean(Some(1));
        assert!(
            rotating < static_attack + 3.0,
            "rotation should not help the adversary: static {static_attack:.1} vs rotating {rotating:.1}"
        );
    }

    #[test]
    fn eclipse_attacks_only_the_source() {
        use crate::adversary::AdversaryKind;
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 60, 64.0)
            .with_adversary(AdversaryKind::Eclipse);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut state = SimState::new(cfg);
        for _ in 0..5 {
            state.step(&mut rng);
            let attacked: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
            assert_eq!(attacked, vec![0], "eclipse must pin the source alone");
        }
    }

    #[test]
    fn chasing_adversary_tracks_the_frontier() {
        use crate::adversary::AdversaryKind;
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 60, 64.0)
            .with_adversary(AdversaryKind::TargetChasing { every: 1 });
        let mut rng = SmallRng::seed_from_u64(11);
        let mut state = SimState::new(cfg.clone());
        // Early rounds: far more than 6 processes lack M, so every chased
        // target must be one of them. Targets are re-drawn at the top of
        // the round, so check against the *pre-step* frontier.
        for _ in 0..3 {
            let frontier: Vec<usize> = (0..60)
                .filter(|&i| state.is_correct(i) && !state.has_m(i))
                .collect();
            assert!(frontier.len() > 6);
            state.step(&mut rng);
            let targets: Vec<usize> = (0..60).filter(|&i| state.is_attacked(i)).collect();
            assert_eq!(targets.len(), 6, "target count must be preserved");
            for &t in &targets {
                assert!(
                    frontier.contains(&t),
                    "chased target {t} already held M at round start"
                );
            }
        }
    }

    #[test]
    fn adaptive_adversaries_do_not_break_drum_bounds() {
        use crate::adversary::AdversaryKind;
        // The tentpole claim (extension beyond the paper): none of the
        // adaptive strategies slows Drum catastrophically relative to the
        // paper's static flood at the same total budget.
        let mean = |kind: AdversaryKind| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let cfg =
                    SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0).with_adversary(kind);
                run(cfg, seed, 400).1 as f64
            })
        };
        let static_rounds = mean(AdversaryKind::Static);
        for kind in [
            AdversaryKind::TargetChasing { every: 1 },
            AdversaryKind::Eclipse,
            AdversaryKind::PullAbuse,
            AdversaryKind::Replay,
        ] {
            let adaptive = mean(kind);
            assert!(
                adaptive < static_rounds * 2.0 + 5.0,
                "{} broke Drum's bound: {adaptive:.1} rounds vs static {static_rounds:.1}",
                kind.name()
            );
        }
    }

    #[test]
    fn pull_abuse_hurts_pull_more_than_drum() {
        use crate::adversary::AdversaryKind;
        // Where the bound story differs by protocol: the all-pull budget
        // lands on Pull's only channel but just one of Drum's two.
        let mean = |proto| {
            drum_testkit::mean_over_seeds(0..8, |seed| {
                let cfg = SimConfig::paper_attack(proto, 120, 128.0)
                    .with_adversary(AdversaryKind::PullAbuse);
                run(cfg, seed, 400).1 as f64
            })
        };
        let drum = mean(ProtocolVariant::Drum);
        let pull = mean(ProtocolVariant::Pull);
        assert!(
            pull > drum * 1.5,
            "pull-abuse should hurt Pull ({pull:.1}) more than Drum ({drum:.1})"
        );
    }

    #[test]
    fn fraction_never_decreases() {
        let cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 120, 128.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut state = SimState::new(cfg);
        let mut prev = state.fraction_with_m();
        for _ in 0..30 {
            state.step(&mut rng);
            let now = state.fraction_with_m();
            assert!(now >= prev);
            prev = now;
        }
    }
}
