//! Sealing of randomly chosen port numbers (and other small payloads).
//!
//! Drum transmits the random ports chosen for push-replies, pull-replies and
//! data messages inside pull-requests and push-offers. The paper encrypts
//! them under the recipient's public key so an eavesdropping attacker cannot
//! learn which ephemeral ports to flood. Here the seal is an authenticated
//! stream cipher keyed with the *recipient's* secret (obtained through the
//! [`crate::keys::KeyStore`] standing in for the PKI):
//!
//! ```text
//! keystream = HMAC(K_r, "drum.seal.ks" || nonce)
//! ct        = plaintext XOR keystream
//! tag       = HMAC(K_r, "drum.seal.tag" || nonce || ct)
//! ```
//!
//! The adversary holds no group member's key, so sealed ports are both
//! confidential and tamper-evident for the threat model of the paper.

use crate::hmac::{hmac_sha256, verify_tag};
use crate::keys::SecretKey;

/// Maximum plaintext length a single seal supports (one keystream block).
pub const MAX_SEALED_LEN: usize = 32;

/// Length of the authentication tag appended to a sealed payload.
pub const TAG_LEN: usize = 32;

/// A sealed (encrypted + authenticated) payload together with its nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBox {
    /// Caller-supplied uniquifier (e.g. round number and message counter).
    pub nonce: u64,
    /// Ciphertext, same length as the plaintext.
    pub ciphertext: Vec<u8>,
    /// HMAC tag binding nonce and ciphertext to the recipient key.
    pub tag: [u8; TAG_LEN],
}

/// Errors from [`open`]/[`seal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Plaintext longer than [`MAX_SEALED_LEN`].
    TooLong {
        /// Requested length.
        len: usize,
    },
    /// Authentication failed: wrong key, wrong nonce or tampered data.
    BadTag,
}

impl core::fmt::Display for SealError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SealError::TooLong { len } => {
                write!(
                    f,
                    "plaintext of {len} bytes exceeds seal capacity {MAX_SEALED_LEN}"
                )
            }
            SealError::BadTag => write!(f, "seal authentication failed"),
        }
    }
}

impl std::error::Error for SealError {}

fn keystream(key: &SecretKey, nonce: u64) -> [u8; 32] {
    let mut label = [0u8; 12 + 8];
    label[..12].copy_from_slice(b"drum.seal.ks");
    label[12..].copy_from_slice(&nonce.to_be_bytes());
    hmac_sha256(key.as_bytes(), &label)
}

fn auth_tag(key: &SecretKey, nonce: u64, ct: &[u8]) -> [u8; TAG_LEN] {
    let mut data = Vec::with_capacity(13 + 8 + ct.len());
    data.extend_from_slice(b"drum.seal.tag");
    data.extend_from_slice(&nonce.to_be_bytes());
    data.extend_from_slice(ct);
    hmac_sha256(key.as_bytes(), &data)
}

/// Seals `plaintext` for the holder of `recipient_key`.
///
/// `nonce` must not repeat for the same recipient key while the sealed value
/// matters (Drum uses the round number and an in-round counter); reuse leaks
/// the XOR of the two plaintexts, as with any stream cipher.
///
/// # Errors
///
/// Returns [`SealError::TooLong`] if `plaintext` exceeds [`MAX_SEALED_LEN`].
pub fn seal(
    recipient_key: &SecretKey,
    nonce: u64,
    plaintext: &[u8],
) -> Result<SealedBox, SealError> {
    if plaintext.len() > MAX_SEALED_LEN {
        return Err(SealError::TooLong {
            len: plaintext.len(),
        });
    }
    let ks = keystream(recipient_key, nonce);
    let ciphertext: Vec<u8> = plaintext
        .iter()
        .zip(ks.iter())
        .map(|(p, k)| p ^ k)
        .collect();
    let tag = auth_tag(recipient_key, nonce, &ciphertext);
    Ok(SealedBox {
        nonce,
        ciphertext,
        tag,
    })
}

/// Opens a [`SealedBox`] with the recipient's key.
///
/// # Errors
///
/// Returns [`SealError::BadTag`] if the tag does not verify (wrong key or
/// tampering).
pub fn open(recipient_key: &SecretKey, sealed: &SealedBox) -> Result<Vec<u8>, SealError> {
    let expected = auth_tag(recipient_key, sealed.nonce, &sealed.ciphertext);
    if !verify_tag(&expected, &sealed.tag) {
        return Err(SealError::BadTag);
    }
    let ks = keystream(recipient_key, sealed.nonce);
    Ok(sealed
        .ciphertext
        .iter()
        .zip(ks.iter())
        .map(|(c, k)| c ^ k)
        .collect())
}

/// Convenience: seals a 16-bit port number.
///
/// # Errors
///
/// Never fails in practice (2 bytes < capacity); the `Result` mirrors
/// [`seal`].
pub fn seal_port(recipient_key: &SecretKey, nonce: u64, port: u16) -> Result<SealedBox, SealError> {
    seal(recipient_key, nonce, &port.to_be_bytes())
}

/// Convenience: opens a sealed 16-bit port number.
///
/// # Errors
///
/// Returns [`SealError::BadTag`] on authentication failure or if the
/// plaintext is not exactly two bytes.
pub fn open_port(recipient_key: &SecretKey, sealed: &SealedBox) -> Result<u16, SealError> {
    let pt = open(recipient_key, sealed)?;
    let bytes: [u8; 2] = pt.as_slice().try_into().map_err(|_| SealError::BadTag)?;
    Ok(u16::from_be_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn key(byte: u8) -> SecretKey {
        SecretKey::from_bytes([byte; 32])
    }

    #[test]
    fn round_trip() {
        let k = key(1);
        let sealed = seal(&k, 7, b"hello").unwrap();
        assert_eq!(open(&k, &sealed).unwrap(), b"hello");
    }

    #[test]
    fn port_round_trip() {
        let k = key(2);
        let sealed = seal_port(&k, 1, 54321).unwrap();
        assert_eq!(open_port(&k, &sealed).unwrap(), 54321);
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&key(1), 7, b"hello").unwrap();
        assert_eq!(open(&key(2), &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = key(1);
        let mut sealed = seal(&k, 7, b"hello").unwrap();
        sealed.ciphertext[0] ^= 1;
        assert_eq!(open(&k, &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let k = key(1);
        let mut sealed = seal(&k, 7, b"hello").unwrap();
        sealed.nonce += 1;
        assert_eq!(open(&k, &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let k = key(3);
        let sealed = seal(&k, 9, b"\x00\x00").unwrap();
        // A zero plaintext must not yield a zero ciphertext.
        assert_ne!(sealed.ciphertext, vec![0, 0]);
    }

    #[test]
    fn distinct_nonces_distinct_ciphertexts() {
        let k = key(4);
        let a = seal(&k, 1, b"port").unwrap();
        let b = seal(&k, 2, b"port").unwrap();
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn too_long_rejected() {
        let k = key(5);
        let data = [0u8; MAX_SEALED_LEN + 1];
        assert_eq!(seal(&k, 0, &data), Err(SealError::TooLong { len: 33 }));
    }

    #[test]
    fn empty_plaintext_ok() {
        let k = key(6);
        let sealed = seal(&k, 0, b"").unwrap();
        assert_eq!(open(&k, &sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn random_ports_round_trip() {
        let mut rng = SmallRng::seed_from_u64(11);
        let k = SecretKey::generate(&mut rng);
        for nonce in 0..100u64 {
            let port = (nonce * 577 % 65536) as u16;
            let sealed = seal_port(&k, nonce, port).unwrap();
            assert_eq!(open_port(&k, &sealed).unwrap(), port);
        }
    }

    #[test]
    fn error_display() {
        assert!(SealError::BadTag.to_string().contains("authentication"));
        assert!(SealError::TooLong { len: 40 }.to_string().contains("40"));
    }
}
