//! Batched UDP syscall I/O: raw Linux `recvmmsg`/`sendmmsg`/`epoll`
//! wrappers with a portable stub fallback.
//!
//! The paper's central argument (§4, §8–9) is that Drum survives floods
//! because excess datagrams are discarded *cheaply*, before they cost
//! protocol resources. With one `recv_from` per datagram the fixed syscall
//! overhead — not decoding or verification — dominates the receive budget
//! under a Figure-5-style flood. `recvmmsg(2)` moves up to [`BATCH`]
//! datagrams per kernel crossing and `sendmmsg(2)` does the same for the
//! encode-once fan-out, amortizing the fixed cost by ~64×; `epoll(7)` lets
//! quiet rounds block instead of spinning a 1 ms sleep-poll.
//!
//! No libc is available in this hermetic workspace, so the syscalls are
//! issued through `asm!` shims (x86-64 and aarch64 Linux). Following the
//! pattern of `drum_crypto::sha256::shani`, this module is the **single
//! unsafe island of drum-net**: everything it exports is a safe API over
//! caller-owned arenas, `lib.rs` denies `unsafe_code` crate-wide and allows
//! it for this module alone, and every caller keeps a portable per-datagram
//! fallback (used on non-Linux targets and under `DRUM_NET_NO_BATCH=1`)
//! that makes the exact same accept/drop decisions.
//!
//! Layout notes (see DESIGN.md §14): `mmsghdr`/`iovec`/`sockaddr_in` are
//! declared here with `#[repr(C)]` matching the Linux UAPI; the arenas own
//! fixed vectors of them plus the datagram buffers, and header pointers are
//! re-derived from those vectors immediately before every syscall, so the
//! structures never hold dangling self-references across moves.

/// Maximum datagrams moved per `recvmmsg`/`sendmmsg` call.
pub const BATCH: usize = 64;

/// Whether this build target supports the batched syscall path at all
/// (Linux on x86-64 or aarch64). A `false` here means every [`enabled`]
/// check is `false` and the arenas are inert stubs.
pub const fn available() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Whether batched I/O is in effect: the target supports it *and* the
/// `DRUM_NET_NO_BATCH` environment variable is unset/empty/`0`. Cached on
/// first call, so the whole process commits to one mode.
pub fn enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        available()
            && !matches!(
                std::env::var("DRUM_NET_NO_BATCH").as_deref(),
                Ok("1") | Ok("true")
            )
    })
}

pub use imp::{fd_of, Epoll, RecvArena, SendArena, SockAddrV4Raw};

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::BATCH;
    use std::io;
    use std::net::{SocketAddr, UdpSocket};
    use std::os::unix::io::AsRawFd;

    // ---------------------------------------------------------------
    // Syscall numbers and constants.
    // ---------------------------------------------------------------

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const RECVMMSG: usize = 299;
        pub const SENDMMSG: usize = 307;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
        pub const RECVMMSG: usize = 243;
        pub const SENDMMSG: usize = 269;
    }

    const AF_INET: u16 = 2;
    const MSG_DONTWAIT: u32 = 0x40;
    const EAGAIN: i32 = 11;
    const EINTR: i32 = 4;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLLIN: u32 = 0x1;

    // ---------------------------------------------------------------
    // The asm shims. Raw syscalls return `-errno` in `[-4095, -1]`.
    // ---------------------------------------------------------------

    /// Issues a 6-argument raw syscall.
    ///
    /// # Safety
    ///
    /// The caller must uphold the kernel contract of syscall `n`: every
    /// pointer argument must be valid for the access the kernel performs,
    /// with lengths matching the buffers they describe.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    /// Issues a 6-argument raw syscall (aarch64 `svc 0` convention).
    ///
    /// # Safety
    ///
    /// Same contract as the x86-64 shim: arguments must satisfy the kernel
    /// API of syscall `n`.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    /// Folds a raw syscall return into `io::Result<usize>`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// `true` for errno values the drain loops treat as "no data now".
    fn is_soft(err: &io::Error) -> bool {
        matches!(err.raw_os_error(), Some(EAGAIN) | Some(EINTR))
    }

    // ---------------------------------------------------------------
    // Kernel ABI structures (Linux UAPI layout, x86-64 and aarch64).
    // ---------------------------------------------------------------

    /// `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// `struct user_msghdr`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut SockAddrV4Raw,
        namelen: i32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: u32,
    }

    impl MsgHdr {
        fn zeroed() -> Self {
            MsgHdr {
                name: core::ptr::null_mut(),
                namelen: 0,
                iov: core::ptr::null_mut(),
                iovlen: 0,
                control: core::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            }
        }
    }

    /// `struct mmsghdr`: one `msghdr` plus the kernel-filled datagram
    /// length.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    /// `struct sockaddr_in` (network byte order for port and address).
    #[repr(C)]
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SockAddrV4Raw {
        family: u16,
        port_be: [u8; 2],
        addr_be: [u8; 4],
        zero: [u8; 8],
    }

    impl SockAddrV4Raw {
        /// Converts a std socket address; `None` for IPv6 destinations
        /// (the runtime only ever targets loopback IPv4, but callers fall
        /// back to `send_to` rather than panic).
        pub fn from_std(addr: SocketAddr) -> Option<Self> {
            match addr {
                SocketAddr::V4(v4) => Some(SockAddrV4Raw {
                    family: AF_INET,
                    port_be: v4.port().to_be_bytes(),
                    addr_be: v4.ip().octets(),
                    zero: [0u8; 8],
                }),
                SocketAddr::V6(_) => None,
            }
        }

        fn unspecified() -> Self {
            SockAddrV4Raw {
                family: 0,
                port_be: [0; 2],
                addr_be: [0; 4],
                zero: [0u8; 8],
            }
        }
    }

    /// The raw file descriptor of a UDP socket, for the arena calls.
    pub fn fd_of(socket: &UdpSocket) -> i32 {
        socket.as_raw_fd()
    }

    // ---------------------------------------------------------------
    // Receive arena.
    // ---------------------------------------------------------------

    /// Fixed scratch for `recvmmsg`: [`BATCH`] datagram buffers of
    /// `slot_len` bytes each, plus the `mmsghdr`/`iovec` vectors one call
    /// fills. Allocated once per runtime thread and reused for every
    /// batched receive; the buffer pages commit lazily, so idle slots cost
    /// address space only.
    pub struct RecvArena {
        slot_len: usize,
        bufs: Vec<u8>,
        lens: [usize; BATCH],
        hdrs: Vec<MMsgHdr>,
        iovs: Vec<IoVec>,
        count: usize,
    }

    impl std::fmt::Debug for RecvArena {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RecvArena")
                .field("slot_len", &self.slot_len)
                .field("count", &self.count)
                .finish_non_exhaustive()
        }
    }

    // SAFETY: the only raw pointers the arena stores are the iovec/msghdr
    // scratch, and those are re-derived from the owned, heap-stable
    // vectors immediately before every syscall (see `recv`) — a value left
    // over from before a move is never read. Everything the pointers
    // target is owned by the arena, so it can move between threads (a
    // shard is built on the spawning thread and runs on its own).
    unsafe impl Send for RecvArena {}

    impl RecvArena {
        /// Creates an arena whose per-datagram slots hold `slot_len`
        /// bytes (callers pass the codec's maximum wire length, so
        /// truncation behavior matches a `recv_from` into the same-sized
        /// scratch buffer).
        pub fn new(slot_len: usize) -> Self {
            RecvArena {
                slot_len,
                bufs: vec![0u8; slot_len * BATCH],
                lens: [0; BATCH],
                hdrs: vec![
                    MMsgHdr {
                        hdr: MsgHdr::zeroed(),
                        len: 0,
                    };
                    BATCH
                ],
                iovs: vec![
                    IoVec {
                        base: core::ptr::null_mut(),
                        len: 0,
                    };
                    BATCH
                ],
                count: 0,
            }
        }

        /// One `recvmmsg` on `fd`: receives up to [`BATCH`] datagrams
        /// without blocking. Returns the number received (`0` when the
        /// socket has nothing pending). Datagrams are then readable via
        /// [`RecvArena::datagram`] in kernel queue order — the same order a
        /// `recv_from` loop would have seen them.
        pub fn recv(&mut self, fd: i32) -> io::Result<usize> {
            self.count = 0;
            // Re-derive every pointer from the (heap-stable) vectors right
            // before the call: the arena stays movable and the kernel only
            // ever sees addresses valid for this call.
            for i in 0..BATCH {
                self.iovs[i] = IoVec {
                    base: self.bufs[i * self.slot_len..].as_mut_ptr(),
                    len: self.slot_len,
                };
                self.hdrs[i].hdr = MsgHdr::zeroed();
                self.hdrs[i].hdr.iov = &mut self.iovs[i];
                self.hdrs[i].hdr.iovlen = 1;
                self.hdrs[i].len = 0;
            }
            // SAFETY: `hdrs` holds BATCH initialized mmsghdrs whose iovecs
            // point at BATCH disjoint `slot_len` slices of `bufs`, all
            // owned by `self` and alive across the call; name/control are
            // null so the kernel writes datagram bytes and lengths only.
            let ret = unsafe {
                syscall6(
                    nr::RECVMMSG,
                    fd as usize,
                    self.hdrs.as_mut_ptr() as usize,
                    BATCH,
                    MSG_DONTWAIT as usize,
                    0, // timeout: NULL
                    0,
                )
            };
            match check(ret) {
                Ok(n) => {
                    let n = n.min(BATCH);
                    for i in 0..n {
                        self.lens[i] = (self.hdrs[i].len as usize).min(self.slot_len);
                    }
                    self.count = n;
                    Ok(n)
                }
                Err(e) if is_soft(&e) => Ok(0),
                Err(e) => Err(e),
            }
        }

        /// The bytes of datagram `i` from the last [`RecvArena::recv`].
        ///
        /// # Panics
        ///
        /// Panics if `i` is not below the last call's return value.
        pub fn datagram(&self, i: usize) -> &[u8] {
            assert!(i < self.count, "datagram index out of batch");
            &self.bufs[i * self.slot_len..i * self.slot_len + self.lens[i]]
        }
    }

    // ---------------------------------------------------------------
    // Send arena.
    // ---------------------------------------------------------------

    /// Fixed scratch for `sendmmsg`: queued datagrams share one grow-only
    /// byte arena, and the encode-once fan-out queues *ranges* — a message
    /// fanned to `k` recipients is copied once and referenced `k` times.
    pub struct SendArena {
        bytes: Vec<u8>,
        /// Queued datagrams: byte range in `bytes` + destination.
        msgs: Vec<(usize, usize, SockAddrV4Raw)>,
        addrs: Vec<SockAddrV4Raw>,
        hdrs: Vec<MMsgHdr>,
        iovs: Vec<IoVec>,
    }

    impl std::fmt::Debug for SendArena {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SendArena")
                .field("queued", &self.msgs.len())
                .finish_non_exhaustive()
        }
    }

    // SAFETY: as for `RecvArena` — header/iovec pointers are re-derived
    // from owned vectors right before the `sendmmsg` call, never carried
    // across a move.
    unsafe impl Send for SendArena {}

    impl Default for SendArena {
        fn default() -> Self {
            Self::new()
        }
    }

    impl SendArena {
        /// Creates an empty send arena.
        pub fn new() -> Self {
            SendArena {
                bytes: Vec::new(),
                msgs: Vec::with_capacity(BATCH),
                addrs: vec![SockAddrV4Raw::unspecified(); BATCH],
                hdrs: vec![
                    MMsgHdr {
                        hdr: MsgHdr::zeroed(),
                        len: 0,
                    };
                    BATCH
                ],
                iovs: vec![
                    IoVec {
                        base: core::ptr::null_mut(),
                        len: 0,
                    };
                    BATCH
                ],
            }
        }

        /// Number of queued datagrams.
        pub fn len(&self) -> usize {
            self.msgs.len()
        }

        /// Whether nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.msgs.is_empty()
        }

        /// Whether the arena holds a full batch (callers flush then).
        pub fn is_full(&self) -> bool {
            self.msgs.len() >= BATCH
        }

        /// Queues one datagram, copying `payload` into the arena.
        ///
        /// # Panics
        ///
        /// Panics if the arena [`is_full`](SendArena::is_full).
        pub fn push(&mut self, dest: SockAddrV4Raw, payload: &[u8]) {
            assert!(!self.is_full(), "push into a full SendArena");
            let start = self.bytes.len();
            self.bytes.extend_from_slice(payload);
            self.msgs.push((start, payload.len(), dest));
        }

        /// Queues one datagram whose bytes are identical to the previously
        /// queued one, sharing its arena range (the encode-once fan-out
        /// path: no copy).
        ///
        /// # Panics
        ///
        /// Panics if the arena is empty or full.
        pub fn push_repeat(&mut self, dest: SockAddrV4Raw) {
            assert!(!self.is_full(), "push into a full SendArena");
            let (start, len, _) = *self.msgs.last().expect("push_repeat on empty arena");
            self.msgs.push((start, len, dest));
        }

        /// Flushes everything queued through `sendmmsg`, looping over
        /// partial sends. Returns `(datagrams_sent, syscalls_made)`;
        /// datagrams the kernel refuses (buffer pressure, routing errors)
        /// are dropped, matching the fire-and-forget `send_to` semantics of
        /// the per-datagram path. The arena is empty afterwards.
        pub fn flush(&mut self, fd: i32) -> (usize, usize) {
            let total = self.msgs.len();
            if total == 0 {
                return (0, 0);
            }
            // Build headers after the byte arena is final (it may have
            // reallocated while queueing).
            for (i, &(start, len, dest)) in self.msgs.iter().enumerate() {
                self.addrs[i] = dest;
                self.iovs[i] = IoVec {
                    base: self.bytes[start..].as_mut_ptr(),
                    len,
                };
                self.hdrs[i].hdr = MsgHdr::zeroed();
                self.hdrs[i].hdr.name = &mut self.addrs[i];
                self.hdrs[i].hdr.namelen = core::mem::size_of::<SockAddrV4Raw>() as i32;
                self.hdrs[i].hdr.iov = &mut self.iovs[i];
                self.hdrs[i].hdr.iovlen = 1;
                self.hdrs[i].len = 0;
            }
            let mut sent = 0usize;
            let mut syscalls = 0usize;
            while sent < total {
                // SAFETY: `hdrs[sent..total]` are initialized mmsghdrs
                // whose name/iovec pointers address `self.addrs`,
                // `self.iovs` and `self.bytes`, none of which are touched
                // while the kernel reads them.
                let ret = unsafe {
                    syscall6(
                        nr::SENDMMSG,
                        fd as usize,
                        self.hdrs[sent..].as_mut_ptr() as usize,
                        total - sent,
                        MSG_DONTWAIT as usize,
                        0,
                        0,
                    )
                };
                syscalls += 1;
                match check(ret) {
                    Ok(0) => break,
                    Ok(n) => sent += n.min(total - sent),
                    Err(_) => break,
                }
            }
            self.msgs.clear();
            self.bytes.clear();
            (sent, syscalls)
        }
    }

    // ---------------------------------------------------------------
    // Epoll.
    // ---------------------------------------------------------------

    /// `struct epoll_event`. Packed on x86-64 (the one ABI where the
    /// kernel declares it `__attribute__((packed))`), naturally aligned
    /// elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// A level-triggered epoll instance used as a round-loop sleep that
    /// wakes the moment any registered socket becomes readable.
    ///
    /// The runtime never asks *which* sockets woke it — after a wake it
    /// re-drains every socket until `WouldBlock`, exactly as the sleep-poll
    /// loop did — so readiness events are deliberately discarded and the
    /// accept/drop behavior stays identical to the fallback.
    #[derive(Debug)]
    pub struct Epoll {
        fd: i32,
    }

    impl Epoll {
        /// Creates an epoll instance (`epoll_create1(0)`).
        ///
        /// # Errors
        ///
        /// Propagates the kernel error.
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers.
            let ret = unsafe { syscall6(nr::EPOLL_CREATE1, 0, 0, 0, 0, 0, 0) };
            check(ret).map(|fd| Epoll { fd: fd as i32 })
        }

        /// Registers `socket` for readability wakeups. Sockets deregister
        /// themselves when closed (the kernel removes a closed descriptor
        /// from every epoll set), so there is no `del`.
        ///
        /// # Errors
        ///
        /// Propagates the kernel error.
        pub fn add(&self, socket: &UdpSocket) -> io::Result<()> {
            self.add_tagged(socket, socket.as_raw_fd() as u64)
        }

        /// Registers `socket` for readability wakeups with an explicit
        /// event token. The sharded runtime packs an engine index and a
        /// channel class into the token so one `epoll_pwait` can route
        /// each ready socket straight to the engine that owns it (see
        /// [`Epoll::wait_tagged`]); [`Epoll::add`] is the untagged form
        /// whose events are discarded.
        ///
        /// # Errors
        ///
        /// Propagates the kernel error.
        pub fn add_tagged(&self, socket: &UdpSocket, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: token,
            };
            // SAFETY: `ev` is a valid epoll_event alive across the call.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.fd as usize,
                    EPOLL_CTL_ADD as usize,
                    socket.as_raw_fd() as usize,
                    core::ptr::addr_of_mut!(ev) as usize,
                    0,
                    0,
                )
            };
            check(ret).map(|_| ())
        }

        /// Blocks until any registered socket is readable or `timeout_ms`
        /// elapses. Returns the number of ready descriptors (possibly `0`
        /// on timeout or interrupt); callers treat any return as "go drain
        /// everything".
        ///
        /// # Errors
        ///
        /// Propagates kernel errors other than `EINTR`.
        pub fn wait(&self, timeout_ms: i32) -> io::Result<usize> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 16];
            // SAFETY: `events` is writable for 16 epoll_event entries;
            // the null sigmask (arg 5) makes epoll_pwait behave as
            // epoll_wait, which aarch64 does not expose directly.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                    0,
                )
            };
            match check(ret) {
                Ok(n) => Ok(n),
                Err(e) if is_soft(&e) => Ok(0),
                Err(e) => Err(e),
            }
        }

        /// Like [`Epoll::wait`], but appends the registration token of
        /// every ready descriptor to `out` so the caller can drain only
        /// the sockets the kernel reported. One call surfaces at most 64
        /// tokens; level-triggered semantics re-report anything still
        /// readable on the next call, so a shard serving thousands of
        /// sockets never misses one — it just takes another wakeup.
        ///
        /// Returns the number of tokens appended (`0` on timeout or
        /// interrupt).
        ///
        /// # Errors
        ///
        /// Propagates kernel errors other than `EINTR`.
        pub fn wait_tagged(&self, timeout_ms: i32, out: &mut Vec<u64>) -> io::Result<usize> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            // SAFETY: `events` is writable for 64 epoll_event entries;
            // null sigmask as in `wait`.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                    0,
                )
            };
            match check(ret) {
                Ok(n) => {
                    for ev in events.iter().take(n) {
                        // By-value field copy: `data` may be unaligned in
                        // the packed x86-64 layout, so never take a ref.
                        let token = { *ev }.data;
                        out.push(token);
                    }
                    Ok(n)
                }
                Err(e) if is_soft(&e) => Ok(0),
                Err(e) => Err(e),
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing the fd this struct exclusively owns.
            let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
        }
    }
}

/// Inert stand-ins for targets without the batched path. Constructing the
/// arenas is allowed (so callers need no `cfg`), but [`super::available`]
/// is `false` there, every gate routes to the per-datagram fallback, and
/// the operations themselves fail with `Unsupported` if reached anyway.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use std::io;
    use std::net::{SocketAddr, UdpSocket};

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "batched syscall I/O is Linux-only",
        )
    }

    /// Raw IPv4 socket address (stub).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SockAddrV4Raw;

    impl SockAddrV4Raw {
        /// Always `None`: no batched destinations exist on this target.
        pub fn from_std(_addr: SocketAddr) -> Option<Self> {
            None
        }
    }

    /// Raw fd accessor (stub: the batched path never runs here).
    pub fn fd_of(_socket: &UdpSocket) -> i32 {
        -1
    }

    /// Receive arena (stub).
    #[derive(Debug)]
    pub struct RecvArena;

    impl RecvArena {
        /// Creates the inert arena.
        pub fn new(_slot_len: usize) -> Self {
            RecvArena
        }

        /// Always fails: the caller should have checked [`super::enabled`].
        pub fn recv(&mut self, _fd: i32) -> io::Result<usize> {
            Err(unsupported())
        }

        /// Unreachable on this target.
        pub fn datagram(&self, _i: usize) -> &[u8] {
            &[]
        }
    }

    /// Send arena (stub).
    #[derive(Debug, Default)]
    pub struct SendArena;

    impl SendArena {
        /// Creates the inert arena.
        pub fn new() -> Self {
            SendArena
        }

        /// Always zero.
        pub fn len(&self) -> usize {
            0
        }

        /// Always empty.
        pub fn is_empty(&self) -> bool {
            true
        }

        /// Never full.
        pub fn is_full(&self) -> bool {
            false
        }

        /// Unreachable on this target (callers gate on [`super::enabled`]).
        pub fn push(&mut self, _dest: SockAddrV4Raw, _payload: &[u8]) {}

        /// Unreachable on this target.
        pub fn push_repeat(&mut self, _dest: SockAddrV4Raw) {}

        /// Nothing to flush.
        pub fn flush(&mut self, _fd: i32) -> (usize, usize) {
            (0, 0)
        }
    }

    /// Epoll (stub).
    #[derive(Debug)]
    pub struct Epoll;

    impl Epoll {
        /// Always fails on this target.
        pub fn new() -> io::Result<Epoll> {
            Err(unsupported())
        }

        /// Unreachable on this target.
        pub fn add(&self, _socket: &UdpSocket) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable on this target.
        pub fn add_tagged(&self, _socket: &UdpSocket, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable on this target.
        pub fn wait(&self, _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }

        /// Unreachable on this target.
        pub fn wait_tagged(&self, _timeout_ms: i32, _out: &mut Vec<u64>) -> io::Result<usize> {
            Err(unsupported())
        }
    }
}

#[cfg(all(
    test,
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, UdpSocket};
    use std::time::{Duration, Instant};

    fn pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        rx.set_nonblocking(true).unwrap();
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        (rx, tx)
    }

    #[test]
    fn recvmmsg_returns_datagrams_in_order() {
        let (rx, tx) = pair();
        let dest = rx.local_addr().unwrap();
        for i in 0..10u8 {
            tx.send_to(&[i, i, i], dest).unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        let mut arena = RecvArena::new(64);
        let n = arena.recv(fd_of(&rx)).unwrap();
        assert_eq!(n, 10);
        for i in 0..10 {
            assert_eq!(arena.datagram(i), &[i as u8; 3]);
        }
        // Drained: next call reports nothing without blocking.
        assert_eq!(arena.recv(fd_of(&rx)).unwrap(), 0);
    }

    #[test]
    fn recvmmsg_truncates_to_slot_len_like_recv_from() {
        let (rx, tx) = pair();
        let dest = rx.local_addr().unwrap();
        tx.send_to(&[0xAB; 100], dest).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let mut arena = RecvArena::new(16);
        assert_eq!(arena.recv(fd_of(&rx)).unwrap(), 1);
        assert_eq!(arena.datagram(0), &[0xAB; 16]);
    }

    #[test]
    fn sendmmsg_delivers_fanout_without_copies() {
        let (rx, tx) = pair();
        let dest = SockAddrV4Raw::from_std(rx.local_addr().unwrap()).unwrap();
        let mut arena = SendArena::new();
        arena.push(dest, b"fanned");
        for _ in 0..7 {
            arena.push_repeat(dest);
        }
        let (sent, syscalls) = arena.flush(fd_of(&tx));
        assert_eq!(sent, 8);
        assert_eq!(syscalls, 1);
        assert!(arena.is_empty());
        std::thread::sleep(Duration::from_millis(20));
        let mut got = 0;
        let mut buf = [0u8; 64];
        while let Ok((len, _)) = rx.recv_from(&mut buf) {
            assert_eq!(&buf[..len], b"fanned");
            got += 1;
        }
        assert_eq!(got, 8);
    }

    #[test]
    fn send_arena_handles_full_batches() {
        let (rx, tx) = pair();
        let dest = SockAddrV4Raw::from_std(rx.local_addr().unwrap()).unwrap();
        let mut arena = SendArena::new();
        for i in 0..BATCH {
            assert!(!arena.is_full());
            arena.push(dest, &[i as u8]);
        }
        assert!(arena.is_full());
        let (sent, syscalls) = arena.flush(fd_of(&tx));
        assert_eq!(sent, BATCH);
        assert!(syscalls >= 1);
    }

    #[test]
    fn epoll_wakes_on_datagram_and_times_out_when_quiet() {
        let (rx, tx) = pair();
        let ep = Epoll::new().unwrap();
        ep.add(&rx).unwrap();

        // Quiet socket: wait should time out (allow generous slack).
        let t0 = Instant::now();
        assert_eq!(ep.wait(30).unwrap(), 0);
        assert!(t0.elapsed() >= Duration::from_millis(20));

        // Data pending: wait returns promptly with a ready fd.
        tx.send_to(b"wake", rx.local_addr().unwrap()).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let t0 = Instant::now();
        assert!(ep.wait(5_000).unwrap() >= 1);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn enabled_respects_target_support() {
        assert!(available());
        // `enabled()` may be false if the test runner exported
        // DRUM_NET_NO_BATCH; it must never be true without support.
        if enabled() {
            assert!(available());
        }
    }
}
