//! Multiway HMAC-SHA-256: many short MACs batched through the 8-lane
//! multi-buffer kernel.
//!
//! Under a Figure 7 flood the MAC kernel is the receiver's hot path: every
//! datagram that survives port filtering costs one HMAC. The batch verdict
//! cache and frame packing cut how *many* HMACs run; this module cuts what
//! each remaining HMAC *costs* by computing up to [`LANES`] of them in
//! lockstep over the transposed AVX2 compression kernel in
//! [`crate::sha256`].
//!
//! The front-end exploits the precomputed [`HmacKey`] ipad/opad midstates:
//! a short MAC (message + padding within one block) is exactly two
//! compressions — one inner tail block resumed from the ipad midstate, one
//! outer block resumed from the opad midstate — so a full 8-lane batch of
//! short MACs runs in 2 kernel calls instead of 16.
//!
//! Dispatch picks the fastest kernel for the host, not just any SIMD one:
//! on SHA-NI hardware the single-block unit beats the 8-lane AVX2 kernel
//! per block, so [`MultiMac::new`] stays single-block there (see
//! [`simd_preferred`]); on AVX2-only hosts the lane kernel wins ~3.6× over
//! the portable rounds and is used whenever batches form.
//!
//! Tags are bit-identical to the scalar [`HmacKey::mac_parts`] path in both
//! the 8-lane and forced-scalar configurations; the tests and the crate
//! property suite pin that.

use crate::hmac::HmacKey;
use crate::sha256::{self, BLOCK_LEN, DIGEST_LEN};
use std::sync::OnceLock;

/// Lanes per kernel call: how many MACs advance per 8-wide compression.
pub const LANES: usize = sha256::LANES;

/// Whether the CPU has the 8-lane kernel at all (AVX2 on x86-64).
pub fn simd_available() -> bool {
    sha256::lanes_available()
}

/// Whether [`MultiMac::new`] uses the 8-lane kernel: the CPU supports it
/// and the `DRUM_CRYPTO_NO_SIMD` ablation switch is unset. The environment
/// is read once and cached for the life of the process, mirroring the other
/// `DRUM_*` ablation gates.
pub fn simd_enabled() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    let disabled = *DISABLED.get_or_init(|| {
        std::env::var("DRUM_CRYPTO_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0")
    });
    simd_available() && !disabled
}

/// Whether [`MultiMac::new`] actually routes work through the 8-lane
/// kernel: [`simd_enabled`], and the kernel is the fastest bulk-hash path
/// on this CPU. On SHA-NI hardware the single-block unit retires a block
/// in fewer cycles than the 8-lane AVX2 kernel's per-lane share, so the
/// dispatcher keeps such hosts on the single-block path — the same policy
/// multi-buffer libraries like ISA-L apply. [`MultiMac::lanes`] bypasses
/// the preference (not the ablation switch) for benches and tests that
/// pin the lane kernel itself.
pub fn simd_preferred() -> bool {
    simd_enabled() && sha256::lanes_preferred()
}

/// Exact kernel-utilization counters, in machine-independent units.
///
/// `compress_calls` counts kernel invocations: an 8-wide call is one call
/// (filling 8 lanes), a single-block call is one call (filling 1 lane). The
/// lane-fill ratio `lanes_filled / (LANES * compress_calls)` therefore reads
/// 1.0 for perfectly batched work and 1/8 for purely scalar work, and the
/// per-block cost `compress_calls / blocks` reads 0.125 on the full 8-lane
/// path versus 1.0 scalar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Kernel invocations (8-wide or single-block).
    pub compress_calls: u64,
    /// Total lanes those invocations advanced (blocks actually hashed).
    pub lanes_filled: u64,
}

impl LaneStats {
    /// Fraction of lane capacity used: 1.0 when every call ran 8-wide full.
    pub fn fill_ratio(&self) -> f64 {
        if self.compress_calls == 0 {
            0.0
        } else {
            self.lanes_filled as f64 / (self.compress_calls as f64 * LANES as f64)
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: LaneStats) {
        self.compress_calls += other.compress_calls;
        self.lanes_filled += other.lanes_filled;
    }
}

/// One MAC to compute: `HMAC(key, domain ‖ a ‖ b ‖ payload)` with `a`/`b`
/// big-endian — the shape shared by Drum's message tags (`source`, `seq`)
/// and frame tags (`sender`, `nonce`). Constructed via
/// [`crate::auth::msg_job`] / [`crate::auth::frame_job`] so the domain
/// strings stay in one place.
#[derive(Debug, Clone, Copy)]
pub struct MacJob<'a> {
    /// Precomputed schedule for the signing key.
    pub key: &'a HmacKey,
    /// Domain-separation prefix.
    pub domain: &'static [u8],
    /// First big-endian u64 of the authenticated triple.
    pub a: u64,
    /// Second big-endian u64 of the authenticated triple.
    pub b: u64,
    /// The authenticated payload.
    pub payload: &'a [u8],
}

/// A reusable multiway MAC engine.
///
/// Owns the per-job scratch (padded inner tails, lane grouping order,
/// intermediate digests) so steady-state batches allocate nothing, and the
/// exact [`LaneStats`] counters for the trace registry. Construct once and
/// reuse; `mac_many` batches arbitrarily many jobs, grouping equal-length
/// messages into full lanes and running any ragged tail single-lane.
pub struct MultiMac {
    /// Whether full chunks go through the 8-lane kernel.
    use_simd: bool,
    /// Per-job padded inner tails (message ‖ SHA-256 padding), reused.
    bufs: Vec<Vec<u8>>,
    /// Job indices sorted by tail length, grouping lockstep-compatible jobs.
    order: Vec<u32>,
    /// Per-job inner digests.
    inner: Vec<[u8; DIGEST_LEN]>,
    /// Per-job final tags; `mac_many` returns a view of this.
    digests: Vec<[u8; DIGEST_LEN]>,
    stats: LaneStats,
}

impl Default for MultiMac {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for MultiMac {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MultiMac")
            .field("use_simd", &self.use_simd)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MultiMac {
    /// Runtime-dispatched engine: 8-lane when [`simd_preferred`].
    pub fn new() -> Self {
        Self::with_simd(simd_preferred())
    }

    /// Forced single-lane engine, for the ablation arm of benches and for
    /// tests that pin the 8-lane path against the scalar one.
    pub fn scalar() -> Self {
        Self::with_simd(false)
    }

    /// Forced 8-lane engine wherever the kernel exists and the
    /// `DRUM_CRYPTO_NO_SIMD` ablation is unset — ignoring the [`simd_preferred`]
    /// speed policy. This is the kernel arm of the hotpath bench and of the
    /// counter-exactness tests, which must exercise the lane path even on
    /// SHA-NI hosts where `new()` dispatches single-block.
    pub fn lanes() -> Self {
        Self::with_simd(simd_enabled())
    }

    fn with_simd(use_simd: bool) -> Self {
        MultiMac {
            use_simd,
            bufs: Vec::new(),
            order: Vec::new(),
            inner: Vec::new(),
            digests: Vec::new(),
            stats: LaneStats::default(),
        }
    }

    /// Whether this engine batches through the 8-lane kernel.
    pub fn simd_active(&self) -> bool {
        self.use_simd
    }

    /// Counters accumulated since the last [`MultiMac::take_stats`].
    pub fn stats(&self) -> LaneStats {
        self.stats
    }

    /// Returns and resets the accumulated counters.
    pub fn take_stats(&mut self) -> LaneStats {
        core::mem::take(&mut self.stats)
    }

    /// Computes every job's tag, returning them in job order.
    ///
    /// Bit-identical to running [`HmacKey::mac_parts`] per job. The returned
    /// slice borrows internal scratch and is valid until the next call.
    pub fn mac_many(&mut self, jobs: &[MacJob<'_>]) -> &[[u8; DIGEST_LEN]] {
        let Self {
            use_simd,
            bufs,
            order,
            inner,
            digests,
            stats,
        } = self;
        let use_simd = *use_simd;
        digests.clear();
        digests.resize(jobs.len(), [0u8; DIGEST_LEN]);
        if jobs.is_empty() {
            return digests;
        }

        // 1. Materialize each job's padded inner tail: the message bytes
        // followed by standard SHA-256 padding for a stream that already
        // absorbed one 64-byte ipad block. The tail is what remains to be
        // compressed from the cached inner midstate — a whole number of
        // blocks, one for any short message.
        if bufs.len() < jobs.len() {
            bufs.resize_with(jobs.len(), Vec::new);
        }
        for (job, buf) in jobs.iter().zip(bufs.iter_mut()) {
            buf.clear();
            buf.extend_from_slice(job.domain);
            buf.extend_from_slice(&job.a.to_be_bytes());
            buf.extend_from_slice(&job.b.to_be_bytes());
            buf.extend_from_slice(job.payload);
            let hashed_bits = ((BLOCK_LEN + buf.len()) as u64) * 8;
            buf.push(0x80);
            while buf.len() % BLOCK_LEN != BLOCK_LEN - 8 {
                buf.push(0);
            }
            buf.extend_from_slice(&hashed_bits.to_be_bytes());
        }

        // 2. Group jobs by tail length (stable, so equal-length jobs keep
        // their submission order): lanes of one kernel call advance in
        // lockstep, so only equal-block-count jobs can share a call.
        order.clear();
        order.extend(0..jobs.len() as u32);
        order.sort_by_key(|&j| bufs[j as usize].len());

        // 3. Inner hash: resume each lane from its key's ipad midstate.
        inner.clear();
        inner.resize(jobs.len(), [0u8; DIGEST_LEN]);
        let mut group = 0;
        while group < order.len() {
            let len = bufs[order[group] as usize].len();
            let mut end = group;
            while end < order.len() && bufs[order[end] as usize].len() == len {
                end += 1;
            }
            let blocks = len / BLOCK_LEN;
            let mut at = group;
            while use_simd && at + LANES <= end {
                let lanes: [u32; LANES] = core::array::from_fn(|l| order[at + l]);
                let mut states: [[u32; 8]; LANES] =
                    core::array::from_fn(|l| jobs[lanes[l] as usize].key.inner_midstate());
                for b in 0..blocks {
                    let span = b * BLOCK_LEN..(b + 1) * BLOCK_LEN;
                    let refs: [&[u8]; LANES] =
                        core::array::from_fn(|l| &bufs[lanes[l] as usize][span.clone()]);
                    sha256::compress8(&mut states, &refs);
                    stats.compress_calls += 1;
                    stats.lanes_filled += LANES as u64;
                }
                for (l, &j) in lanes.iter().enumerate() {
                    inner[j as usize] = digest_bytes(&states[l]);
                }
                at += LANES;
            }
            // Ragged tail of the group (or the whole group when forced
            // scalar): single-lane compressions, one call per block.
            for &j in &order[at..end] {
                let j = j as usize;
                let mut state = jobs[j].key.inner_midstate();
                for block in bufs[j].chunks_exact(BLOCK_LEN) {
                    sha256::compress(&mut state, block);
                    stats.compress_calls += 1;
                    stats.lanes_filled += 1;
                }
                inner[j] = digest_bytes(&state);
            }
            group = end;
        }

        // 4. Outer hash: always exactly one block per job — the 32-byte
        // inner digest plus padding for a 96-byte (opad block + digest)
        // stream — so every job batches here regardless of message length.
        let outer_bits = ((BLOCK_LEN + DIGEST_LEN) * 8) as u64;
        let mut oblock = [0u8; BLOCK_LEN];
        oblock[DIGEST_LEN] = 0x80;
        oblock[BLOCK_LEN - 8..].copy_from_slice(&outer_bits.to_be_bytes());
        let mut oblocks = [oblock; LANES];
        let mut at = 0;
        while use_simd && at + LANES <= jobs.len() {
            for (l, ob) in oblocks.iter_mut().enumerate() {
                ob[..DIGEST_LEN].copy_from_slice(&inner[at + l]);
            }
            let mut states: [[u32; 8]; LANES] =
                core::array::from_fn(|l| jobs[at + l].key.outer_midstate());
            let refs: [&[u8]; LANES] = core::array::from_fn(|l| &oblocks[l][..]);
            sha256::compress8(&mut states, &refs);
            stats.compress_calls += 1;
            stats.lanes_filled += LANES as u64;
            for (l, state) in states.iter().enumerate() {
                digests[at + l] = digest_bytes(state);
            }
            at += LANES;
        }
        for j in at..jobs.len() {
            let mut state = jobs[j].key.outer_midstate();
            oblocks[0][..DIGEST_LEN].copy_from_slice(&inner[j]);
            sha256::compress(&mut state, &oblocks[0]);
            stats.compress_calls += 1;
            stats.lanes_filled += 1;
            digests[j] = digest_bytes(&state);
        }
        digests
    }
}

/// Serializes a chaining state to the big-endian digest bytes.
fn digest_bytes(state: &[u32; 8]) -> [u8; DIGEST_LEN] {
    let mut out = [0u8; DIGEST_LEN];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state.iter()) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<HmacKey> {
        (0..n)
            .map(|i| HmacKey::new(format!("multiway-key-{i}").as_bytes()))
            .collect()
    }

    fn jobs_of<'a>(keys: &'a [HmacKey], payloads: &'a [Vec<u8>]) -> Vec<MacJob<'a>> {
        payloads
            .iter()
            .enumerate()
            .map(|(i, p)| MacJob {
                key: &keys[i % keys.len()],
                domain: if i % 3 == 0 {
                    b"drum.msg.auth"
                } else {
                    b"drum.frame.auth"
                },
                a: i as u64 * 17,
                b: i as u64 + 3,
                payload: p,
            })
            .collect()
    }

    fn scalar_tag(job: &MacJob<'_>) -> [u8; DIGEST_LEN] {
        job.key.mac_parts(&[
            job.domain,
            &job.a.to_be_bytes(),
            &job.b.to_be_bytes(),
            job.payload,
        ])
    }

    // Every batch size from empty through several full chunks plus a ragged
    // tail, with message lengths straddling every block boundary, must match
    // the scalar mac_parts path bit for bit — in both engine configurations.
    #[test]
    fn mac_many_matches_scalar_all_batch_shapes() {
        let keys = keys(5);
        let mut dispatched = MultiMac::lanes();
        let mut forced = MultiMac::scalar();
        for njobs in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 24] {
            let payloads: Vec<Vec<u8>> = (0..njobs)
                .map(|i| {
                    let len = [0, 1, 35, 63, 64, 65, 128, 200, 256][i % 9];
                    (0..len)
                        .map(|b| (b as u8).wrapping_mul(i as u8 + 1))
                        .collect()
                })
                .collect();
            let jobs = jobs_of(&keys, &payloads);
            let want: Vec<[u8; DIGEST_LEN]> = jobs.iter().map(scalar_tag).collect();
            assert_eq!(dispatched.mac_many(&jobs), &want[..], "simd njobs={njobs}");
            assert_eq!(forced.mac_many(&jobs), &want[..], "scalar njobs={njobs}");
        }
    }

    // Counter exactness on the uniform short-MAC flood shape: every MAC is
    // 2 blocks (inner tail + outer), so 512 jobs are 1024 blocks — 128
    // kernel calls 8-wide, 1024 single-lane.
    #[test]
    fn counters_exact_on_uniform_flood() {
        let keys = keys(1);
        let payloads: Vec<Vec<u8>> = (0..512).map(|i| vec![i as u8; 16]).collect();
        let jobs: Vec<MacJob<'_>> = payloads
            .iter()
            .map(|p| MacJob {
                key: &keys[0],
                domain: b"drum.msg.auth",
                a: 1,
                b: p[0] as u64,
                payload: p,
            })
            .collect();

        let mut forced = MultiMac::scalar();
        forced.mac_many(&jobs);
        let s = forced.take_stats();
        assert_eq!(s.compress_calls, 1024);
        assert_eq!(s.lanes_filled, 1024);
        assert_eq!(forced.take_stats(), LaneStats::default(), "take resets");

        let mut lanes = MultiMac::lanes();
        lanes.mac_many(&jobs);
        let s = lanes.take_stats();
        if simd_enabled() {
            assert_eq!(s.compress_calls, 128);
            assert_eq!(s.lanes_filled, 1024);
            assert!((s.fill_ratio() - 1.0).abs() < 1e-9);
        } else {
            assert_eq!(s.compress_calls, 1024);
        }
    }

    // A ragged batch (full chunks + a tail shorter than LANES) keeps exact
    // counts: tail jobs run single-lane, one call per block.
    #[test]
    fn counters_exact_on_ragged_batch() {
        let keys = keys(2);
        let payloads: Vec<Vec<u8>> = (0..11).map(|i| vec![0xab; 8 + i]).collect();
        let jobs = jobs_of(&keys, &payloads);
        let mut mm = MultiMac::lanes();
        mm.mac_many(&jobs);
        let s = mm.take_stats();
        if simd_enabled() {
            // Inner: lengths vary but all pad to one block — 1 chunk call +
            // 3 tail calls. Outer: 1 chunk call + 3 tail calls.
            assert_eq!(s.compress_calls, 8);
            assert_eq!(s.lanes_filled, 22);
        } else {
            assert_eq!(s.compress_calls, 22);
            assert_eq!(s.lanes_filled, 22);
        }
    }

    #[test]
    fn fill_ratio_degenerate_cases() {
        assert_eq!(LaneStats::default().fill_ratio(), 0.0);
        let mut s = LaneStats {
            compress_calls: 2,
            lanes_filled: 16,
        };
        assert!((s.fill_ratio() - 1.0).abs() < 1e-9);
        s.merge(LaneStats {
            compress_calls: 2,
            lanes_filled: 2,
        });
        assert_eq!(s.compress_calls, 4);
        assert_eq!(s.lanes_filled, 18);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", MultiMac::new()).is_empty());
    }
}
