//! Machine-independent scheduling models.
//!
//! The repo's dev hosts differ wildly in core count (CI runners are often
//! 1–2 cores), so wall-clock parallel speedups are not a stable gate.
//! Instead, benches and regression tests model both schedulers over the
//! *measured deterministic per-job costs* (a trial's executed round count)
//! and gate on the modeled spans — exact arithmetic, identical on every
//! machine. Same precedent as PR 4's syscalls-per-datagram gates.
//!
//! Two schedulers are modeled:
//!
//! * [`static_point_makespan`] — the seed harness: each sweep point splits
//!   its trials into `workers` contiguous chunks and joins before the next
//!   point, so every point waits on its own straggler chunk;
//! * [`greedy_makespan`] — list scheduling: each job goes to the
//!   least-loaded worker, which is what atomic-index self-scheduling
//!   converges to when per-job cost dwarfs the claim (one `fetch_add`).
//!
//! All costs are in abstract units (we use simulated rounds); only ratios
//! matter.

/// Sums `costs` over contiguous chunks of `chunk` jobs (last chunk may be
/// short). This is the per-chunk work profile of a static split.
pub fn chunk_sums(costs: &[u64], chunk: usize) -> Vec<u64> {
    assert!(chunk > 0, "chunk size must be positive");
    costs.chunks(chunk).map(|c| c.iter().sum()).collect()
}

/// Modeled makespan of the seed scheduler for **one sweep point**: split
/// `costs` into `workers` contiguous chunks (sizes `div_ceil`), run each
/// chunk on its own worker, join. The point takes as long as its heaviest
/// chunk. A whole sweep under this scheduler is the *sum* of its points'
/// makespans, because of the join barrier between points.
pub fn static_point_makespan(costs: &[u64], workers: usize) -> u64 {
    assert!(workers > 0, "worker count must be positive");
    if costs.is_empty() {
        return 0;
    }
    let chunk = costs.len().div_ceil(workers);
    chunk_sums(costs, chunk).into_iter().max().unwrap_or(0)
}

/// Modeled makespan of dynamic self-scheduling over one flat job set:
/// greedy list scheduling, assigning each job in order to the currently
/// least-loaded worker. Returns the busiest worker's total load.
pub fn greedy_makespan(jobs: &[u64], workers: usize) -> u64 {
    assert!(workers > 0, "worker count must be positive");
    let mut load = vec![0u64; workers];
    for &job in jobs {
        let min = load
            .iter_mut()
            .min()
            .expect("worker count checked positive");
        *min += job;
    }
    load.into_iter().max().unwrap_or(0)
}

/// Total worker-idle units for a schedule: `workers * makespan` slots
/// minus the work actually done. Divide by job count for the
/// idle-per-job metric gated in the hotpath suite.
pub fn idle_time(makespan: u64, workers: usize, jobs: &[u64]) -> u64 {
    (makespan * workers as u64).saturating_sub(jobs.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_sums_cover_all_jobs() {
        assert_eq!(chunk_sums(&[1, 2, 3, 4, 5], 2), vec![3, 7, 5]);
        assert_eq!(chunk_sums(&[], 3), Vec::<u64>::new());
    }

    #[test]
    fn static_makespan_is_heaviest_chunk() {
        // 6 jobs, 3 workers -> chunks of 2: [3, 7, 11].
        assert_eq!(static_point_makespan(&[1, 2, 3, 4, 5, 6], 3), 11);
        // More workers than jobs: every job is its own chunk.
        assert_eq!(static_point_makespan(&[9, 1], 8), 9);
        assert_eq!(static_point_makespan(&[], 4), 0);
    }

    #[test]
    fn greedy_packs_around_stragglers() {
        // One straggler + filler: greedy keeps other workers busy, so the
        // makespan is the straggler alone while the static split strands
        // it with half the filler.
        let jobs = [100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10];
        assert_eq!(greedy_makespan(&jobs, 2), 100);
        assert_eq!(static_point_makespan(&jobs, 2), 150);
    }

    #[test]
    fn greedy_never_beats_the_work_lower_bound() {
        let jobs = [7u64, 3, 9, 4, 4, 6, 2, 8];
        let total: u64 = jobs.iter().sum();
        for workers in 1..6 {
            let span = greedy_makespan(&jobs, workers);
            assert!(span >= total.div_ceil(workers as u64));
            assert!(span >= *jobs.iter().max().unwrap());
            assert!(span <= static_point_makespan(&jobs, workers).max(span));
        }
    }

    #[test]
    fn one_worker_spans_equal_total_work() {
        let jobs = [5u64, 1, 12, 2];
        assert_eq!(greedy_makespan(&jobs, 1), 20);
        assert_eq!(static_point_makespan(&jobs, 1), 20);
        assert_eq!(idle_time(20, 1, &jobs), 0);
    }

    #[test]
    fn idle_time_counts_stranded_slots() {
        let jobs = [100u64, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10];
        let static_span = static_point_makespan(&jobs, 2);
        let dynamic_span = greedy_makespan(&jobs, 2);
        assert_eq!(idle_time(static_span, 2, &jobs), 100);
        assert_eq!(idle_time(dynamic_span, 2, &jobs), 0);
    }
}
