//! Sequence-related sampling: [`index::sample`] without replacement.

pub mod index {
    //! Sampling of distinct indices, mirroring `rand::seq::index`.

    use crate::Rng;

    /// The result of [`sample`]: `amount` distinct indices in `0..length`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Iterates over the sampled indices in selection order.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consumes the sample into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, uniformly over
    /// all subsets, by partial Fisher–Yates: each of the first `amount`
    /// slots swaps with a uniform choice from the not-yet-fixed suffix.
    ///
    /// If `amount >= length` every index is returned (in shuffled order),
    /// matching the saturating behaviour the engine's view/buffer selection
    /// relies on when fewer candidates than requested exist.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        let amount = amount.min(length);
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.random_range(i..length);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        IndexVec(indices)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::SmallRng;
        use crate::SeedableRng;

        #[test]
        fn sample_is_distinct_and_in_range() {
            let mut rng = SmallRng::seed_from_u64(1);
            let picked = sample(&mut rng, 50, 10);
            assert_eq!(picked.len(), 10);
            let set: std::collections::BTreeSet<usize> = picked.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(set.iter().all(|&i| i < 50));
        }

        #[test]
        fn oversized_amount_saturates() {
            let mut rng = SmallRng::seed_from_u64(2);
            let picked = sample(&mut rng, 4, 100);
            let mut all = picked.into_vec();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3]);
        }

        #[test]
        fn zero_cases() {
            let mut rng = SmallRng::seed_from_u64(3);
            assert!(sample(&mut rng, 0, 5).is_empty());
            assert!(sample(&mut rng, 5, 0).is_empty());
        }
    }
}
