//! Extension experiment: fan-out sensitivity. The paper fixes F = 4
//!
//! Thin wrapper over [`drum_bench::figures::ext_fanout`]; `drum-lab figures`
//! regenerates every figure in one process instead.

fn main() {
    let mut out = std::io::stdout().lock();
    drum_bench::figures::ext_fanout(&mut out).expect("write ext_fanout to stdout");
}
