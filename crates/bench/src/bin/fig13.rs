//! Figure 13: detailed analysis (Appendix C) vs simulation, no DoS attack.
//!
//! (a) failure-free; (b) 10% of the processes crashed. The two CDFs are
//! expected to be virtually identical.

use drum_analysis::appendix_c::{analysis_cdf, Protocol};
use drum_bench::{banner, cdf_table, scaled, trials, SEED};
use drum_core::ProtocolVariant;
use drum_sim::config::SimConfig;
use drum_sim::experiments::cdf_curve;

fn sim_variant(p: Protocol) -> ProtocolVariant {
    match p {
        Protocol::Drum => ProtocolVariant::Drum,
        Protocol::Push => ProtocolVariant::Push,
        Protocol::Pull => ProtocolVariant::Pull,
    }
}

fn main() {
    banner(
        "Figure 13",
        "analysis vs simulation CDFs without DoS attacks",
    );
    let trials = trials();
    let n = scaled(120, 1000);
    let rounds = 20;

    for (label, crashed) in [("(a) failure-free", 0usize), ("(b) 10% crashed", n / 10)] {
        println!("{label}, n = {n} ({trials} trials)");
        let mut labels = Vec::new();
        let mut curves = Vec::new();
        for proto in [Protocol::Drum, Protocol::Push, Protocol::Pull] {
            // Analysis: fraction at round start; shift by one to align with
            // the simulator's after-round samples.
            let a = analysis_cdf(proto, n, crashed, 0.01, 4, 0, 0, rounds + 1);
            curves.push(a[1..].to_vec());
            labels.push(format!("{proto} anl"));

            let mut cfg = SimConfig::baseline(sim_variant(proto), n);
            cfg.crashed = crashed;
            curves.push(cdf_curve(&cfg, trials, SEED, rounds));
            labels.push(format!("{proto} sim"));
        }
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        println!("{}", cdf_table(&label_refs, &curves, rounds));
        println!("paper: analysis and simulation curves are almost identical\n");
    }
}
