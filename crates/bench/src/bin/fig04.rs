//! Figure 4: standard deviation of the propagation times of Figure 3.
//!
//! Drum's STD is flat in the attack strength; Push's and especially Pull's
//! grow linearly (Pull's is dominated by the geometric wait for the
//! message to escape the attacked source).

use drum_analysis::appendix_b::std_rounds_to_leave_source;
use drum_bench::{banner, scaled, sweep_table_std, trials, PROTOCOL_NAMES, SEED};
use drum_sim::experiments::{fig3a_attack_strength, fig3b_attack_extent};

fn main() {
    banner(
        "Figure 4",
        "STD of the propagation time under targeted attacks",
    );
    let trials = trials();
    let n = scaled(120, 1000);

    let xs: Vec<f64> = scaled(
        vec![0.0, 32.0, 64.0, 128.0, 256.0],
        vec![0.0, 32.0, 64.0, 128.0, 192.0, 256.0, 384.0, 512.0],
    );
    println!("(a) alpha = 10%, n = {n}: STD of rounds-to-99% vs x ({trials} trials)");
    let rows = fig3a_attack_strength(n, &xs, trials, SEED);
    println!("{}", sweep_table_std("x", &rows, &PROTOCOL_NAMES));

    println!("(b) x = 128, n = {n}: STD vs attacked fraction");
    let rows = fig3b_attack_extent(n, 128.0, &[0.1, 0.2, 0.4, 0.6, 0.8], trials, SEED);
    println!("{}", sweep_table_std("alpha", &rows, &PROTOCOL_NAMES));

    // The paper explains Pull's large STD via p̃ (Appendix B): with F = 4
    // and x = 128 the analytic STD of the source-escape wait is 8.17.
    let analytic = std_rounds_to_leave_source(scaled(120, 1000), 4, 128);
    println!("analytic STD of Pull's source-escape wait (F=4, x=128, n={n}): {analytic:.2} rounds");
    println!("paper: 8.17 rounds for n = 1000, explaining Pull's measured STD of 9.3");
}
