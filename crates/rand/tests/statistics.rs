//! Statistical sanity checks for the in-tree generators.
//!
//! These are not rigorous randomness tests (xoshiro256++ has those in its
//! published analysis); they guard against *implementation* bugs — a biased
//! range reduction, a miswired probability comparison, an off-by-one in
//! sampling without replacement — with fixed seeds so they never flake.

use rand::rngs::{SmallRng, SplitMix64};
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

/// Chi-squared statistic of `draws` uniform draws over `buckets` buckets.
fn chi_squared(rng: &mut SmallRng, buckets: u64, draws: u64) -> f64 {
    let mut counts = vec![0u64; buckets as usize];
    for _ in 0..draws {
        counts[rng.random_range(0..buckets) as usize] += 1;
    }
    let expected = draws as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[test]
fn random_range_is_uniform_chi_squared() {
    // 64 buckets → 63 degrees of freedom. The p = 0.001 critical value is
    // ≈ 103.4; a correct generator with these fixed seeds sits far below,
    // while a modulo-bias or shifted-range bug blows the statistic up by
    // orders of magnitude.
    for seed in [11u64, 222, 3333] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let stat = chi_squared(&mut rng, 64, 64_000);
        assert!(
            stat < 110.0,
            "chi-squared {stat:.1} too large for seed {seed} (expect < 110)"
        );
    }
}

#[test]
fn random_range_covers_non_power_of_two_spans() {
    // Spans that are not powers of two are exactly where naive `% span`
    // reductions show bias; verify every value is reachable and the counts
    // are balanced.
    let mut rng = SmallRng::seed_from_u64(17);
    let span = 10u64;
    let draws = 50_000u64;
    let mut counts = [0u64; 10];
    for _ in 0..draws {
        counts[rng.random_range(100..100 + span) as usize - 100] += 1;
    }
    let expected = draws as f64 / span as f64;
    for (v, &c) in counts.iter().enumerate() {
        let rel = (c as f64 - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "value {v} count {c} deviates {rel:.3} from uniform"
        );
    }
}

#[test]
fn random_bool_mean_matches_probability() {
    let n = 40_000u64;
    for (seed, p) in [(21u64, 0.1f64), (22, 0.5), (23, 0.9), (24, 0.01)] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let hits = (0..n).filter(|_| rng.random_bool(p)).count() as f64;
        let mean = hits / n as f64;
        // 5 standard errors of a Bernoulli(p) mean — effectively never
        // trips on a correct implementation, always trips on p misuse.
        let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt();
        assert!(
            (mean - p).abs() <= tol,
            "random_bool({p}): observed mean {mean:.4}, tolerance {tol:.4}"
        );
    }
}

#[test]
fn f64_range_mean_is_centered() {
    let mut rng = SmallRng::seed_from_u64(31);
    let n = 50_000;
    let sum: f64 = (0..n).map(|_| rng.random_range(-3.0..5.0f64)).sum();
    let mean = sum / n as f64;
    // Uniform on [-3, 5): mean 1, sd 8/sqrt(12); 5 standard errors.
    let tol = 5.0 * (8.0 / 12.0f64.sqrt()) / (n as f64).sqrt();
    assert!((mean - 1.0).abs() < tol, "mean {mean:.4} off-center");
}

#[test]
fn sample_without_replacement_is_correct_and_uniform() {
    let mut rng = SmallRng::seed_from_u64(41);

    // Correctness: distinct, in range, right count — including the full
    // permutation edge case.
    for (len, amount) in [(10usize, 3usize), (10, 10), (1, 1), (100, 99)] {
        let picked = sample(&mut rng, len, amount).into_vec();
        assert_eq!(picked.len(), amount);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            amount,
            "duplicates in sample({len}, {amount})"
        );
        assert!(picked.iter().all(|&i| i < len));
    }

    // Uniformity: each index appears in a 2-of-8 sample with probability
    // 1/4; check the per-index inclusion frequency.
    let trials = 20_000u64;
    let mut hits = [0u64; 8];
    for _ in 0..trials {
        for i in sample(&mut rng, 8, 2).into_vec() {
            hits[i] += 1;
        }
    }
    let expected = trials as f64 * 2.0 / 8.0;
    for (i, &h) in hits.iter().enumerate() {
        let rel = (h as f64 - expected).abs() / expected;
        assert!(rel < 0.06, "index {i} inclusion rate deviates {rel:.3}");
    }
}

#[test]
fn identical_seeds_give_identical_streams() {
    let mut a = SmallRng::seed_from_u64(0xDEAD_BEEF);
    let mut b = SmallRng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..256 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    let mut a = SplitMix64::new(99);
    let mut b = SplitMix64::new(99);
    for _ in 0..256 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn nearby_seeds_decorrelate() {
    // SplitMix64 expansion must keep adjacent u64 seeds from producing
    // correlated xoshiro states.
    let mut a = SmallRng::seed_from_u64(1000);
    let mut b = SmallRng::seed_from_u64(1001);
    let matches = (0..1024).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(matches, 0, "adjacent seeds produced colliding outputs");
}

#[test]
fn fill_bytes_bits_are_balanced() {
    let mut rng = SmallRng::seed_from_u64(51);
    let mut buf = vec![0u8; 8192];
    rng.fill_bytes(&mut buf);
    let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
    let total = (buf.len() * 8) as f64;
    let frac = ones as f64 / total;
    // 5 standard errors of a fair-coin bit fraction.
    let tol = 5.0 * 0.5 / total.sqrt();
    assert!(
        (frac - 0.5).abs() < tol,
        "bit fraction {frac:.4} unbalanced"
    );
}
