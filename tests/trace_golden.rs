//! Golden-trace regression tests: the observability layer as a protocol
//! oracle.
//!
//! A fixed-seed Drum-under-attack simulation is run with a JSON-lines
//! trace sink. Because sim events are round-stamped (no wall clock) and
//! tracing never draws from the simulation RNG, the emitted trace is a
//! pure function of `(config, seed, stepper)` — byte for byte. Two
//! fixtures pin the two steppers independently:
//!
//! * `tests/fixtures/trace_golden.jsonl` — the **serial oracle**
//!   ([`StepMode::Serial`], `DRUM_SIM_SHARDS=1`). Unchanged since the
//!   seed implementation; any diff here means the legacy stream was
//!   perturbed.
//! * `tests/fixtures/trace_golden_sharded.jsonl` — the **sharded
//!   stepper** with a multi-shard split. Its per-process counter-derived
//!   streams make the trace independent of shard count and
//!   `DRUM_POOL_THREADS`, which the cross-shard test below re-checks
//!   against the fixture directly.
//!
//! Regenerating after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p drum --test trace_golden
//! ```
//!
//! then review the fixture diff like any other code change.

use std::sync::Arc;

use drum::core::config::ProtocolVariant;
use drum::sim::{run_trial_traced_mode, SimConfig, StepMode};
use drum::trace::{JsonLinesSink, SharedBuf, Tracer};

const FIXTURE_SERIAL: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/trace_golden.jsonl"
);
const FIXTURE_SHARDED: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/trace_golden_sharded.jsonl"
);

/// The canonical scenario: 40 processes, 10% malicious, Drum under a
/// 64-messages-per-round attack, 8 rounds, seed 2004 (the paper's year).
fn canonical_trace(mode: StepMode) -> String {
    let mut cfg = SimConfig::paper_attack(ProtocolVariant::Drum, 40, 64.0);
    cfg.max_rounds = 8;
    let buf = SharedBuf::new();
    let sink = Arc::new(JsonLinesSink::new(buf.clone()));
    run_trial_traced_mode(&cfg, 2004, 8, Tracer::new(sink), mode);
    buf.contents_string()
}

fn check_fixture(got: &str, fixture: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(fixture, got).expect("failed to write fixture");
        return;
    }
    let want = std::fs::read_to_string(fixture).unwrap_or_else(|_| {
        panic!(
            "missing {fixture} — regenerate with \
             `UPDATE_GOLDEN=1 cargo test -p drum --test trace_golden`"
        )
    });
    assert_eq!(
        got, &want,
        "trace diverged from {fixture}; if the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test -p drum --test \
         trace_golden` and review the diff"
    );
}

#[test]
fn fixed_seed_trace_is_byte_identical_across_runs() {
    for mode in [StepMode::Serial, StepMode::Sharded { shards: 3 }] {
        let first = canonical_trace(mode);
        let second = canonical_trace(mode);
        assert!(!first.is_empty(), "canonical scenario emitted no events");
        assert_eq!(
            first, second,
            "fixed-seed trace must be deterministic ({mode:?})"
        );
    }
}

#[test]
fn serial_trace_matches_golden_fixture() {
    check_fixture(&canonical_trace(StepMode::Serial), FIXTURE_SERIAL);
}

#[test]
fn sharded_trace_matches_golden_fixture() {
    check_fixture(
        &canonical_trace(StepMode::Sharded { shards: 3 }),
        FIXTURE_SHARDED,
    );
}

#[test]
fn sharded_trace_is_shard_count_independent() {
    // The sharded fixture was recorded at 3 shards; every other shard
    // count must reproduce it byte for byte (streams are keyed per
    // process, merges run in fixed index order).
    let reference = canonical_trace(StepMode::Sharded { shards: 3 });
    for shards in [1, 2, 7, 40] {
        assert_eq!(
            canonical_trace(StepMode::Sharded { shards }),
            reference,
            "sharded trace changed at {shards} shards"
        );
    }
}

#[test]
fn golden_trace_has_expected_shape() {
    for mode in [StepMode::Serial, StepMode::Sharded { shards: 3 }] {
        let trace = canonical_trace(mode);
        let lines: Vec<&str> = trace.lines().collect();
        // One sim.start header, then per-round events.
        assert!(lines[0].contains("\"event\":\"sim.start\""));
        assert!(lines[0].contains("\"target\":\"sim\""));
        // Every line is a single JSON object with the fixed key order.
        for line in &lines {
            assert!(line.starts_with("{\"target\":"), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
        }
        // The attacked scenario must actually show attack pressure and
        // deliveries.
        assert!(lines.iter().any(|l| l.contains("\"event\":\"round\"")));
        assert!(lines.iter().any(|l| l.contains("\"event\":\"deliver\"")));
        assert!(lines.iter().any(|l| l.contains("\"fakes_push\"")));
    }
}
