//! **drum-pool** — a persistent, hermetic (std-only) worker pool for the
//! experiment harness.
//!
//! The paper's simulation figures each average ~1000 Monte-Carlo trials per
//! data point across multi-point sweeps. The seed harness spawned and
//! joined a fresh `std::thread::scope` per sweep point with *static* trial
//! chunking, so every point paid thread start-up and a join barrier, and
//! the whole pool idled on the straggler chunk (attacked trials run several
//! times more rounds than baseline trials). This crate replaces that with:
//!
//! * a **lazy global singleton** pool ([`Pool::global`]) sized by
//!   `DRUM_POOL_THREADS` or `available_parallelism`, whose workers persist
//!   for the life of the process and park when idle;
//! * a **shared injector** of job batches with **atomic-index
//!   self-scheduling** inside each batch: whichever worker frees next
//!   claims the next job index, so stragglers never strand the rest of the
//!   pool (work *sharing* — the first cut of the work-stealing design; the
//!   injector plays the role of the global queue, and cross-thread claims
//!   are counted as `pool.steals`);
//! * a **scoped, panic-propagating** [`Pool::run`]/[`Pool::map`] API:
//!   the submitting thread participates in its own batch (so nested
//!   submissions from inside a job cannot deadlock and a 1-thread pool
//!   degenerates to an in-order inline loop) and does not return until
//!   every job has finished, which is what lets jobs borrow from the
//!   caller's stack like `std::thread::scope`;
//! * `pool.jobs` / `pool.steals` / `pool.park` counters exported through a
//!   [`drum_trace::Registry`] (see [`Pool::registry`]), so sweeps can report
//!   scheduler behaviour next to the protocol counters.
//!
//! Determinism is the caller's contract, not the scheduler's: callers that
//! need byte-identical results independent of the worker count (the
//! experiment runner) index all mutable state by job id and reduce in job
//! order — see `drum_sim::runner` and DESIGN.md §15.
//!
//! The lifetime erasure that lets persistent workers run borrowed closures
//! is this crate's single unsafe island ([`raw`]), mirroring
//! `drum_crypto`'s `shani` and `drum_net`'s `sys`.
//!
//! # Examples
//!
//! ```
//! use drum_pool::Pool;
//!
//! let pool = Pool::new(3);
//! let squares = pool.map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod schedule;

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread;

use drum_trace::{names, Counter, Registry};

/// The crate's single unsafe island: lifetime erasure for batch jobs.
///
/// A [`raw::RawJob`] is a raw pointer to the caller's `&dyn Fn(usize)`.
/// Soundness rests on one structural invariant, enforced by [`Pool::run`]:
/// **the submitting call does not return until every claimed job index has
/// finished executing** (the `finished == total` latch), so the pointee
/// outlives every `call` — the same argument `std::thread::scope` makes
/// for its borrowed closures. Panics inside jobs are caught in the worker
/// (`catch_unwind`) and re-thrown on the submitting thread after the
/// latch, so an unwinding job can never leave a dangling pointer behind.
#[allow(unsafe_code)]
mod raw {
    /// Type- and lifetime-erased shared reference to a batch's job closure.
    pub(crate) struct RawJob(*const (dyn Fn(usize) + Sync));

    // SAFETY: see the module docs — `Pool::run` keeps the pointee alive for
    // every `call`, and the pointee is `Sync`, so concurrent shared calls
    // from worker threads are sound.
    unsafe impl Send for RawJob {}
    unsafe impl Sync for RawJob {}

    impl RawJob {
        /// Erases `job`'s lifetime. Callers (only `Pool::run`) must hold
        /// the module invariant: `job` outlives the batch.
        pub(crate) fn erase(job: &(dyn Fn(usize) + Sync)) -> RawJob {
            let ptr: *const (dyn Fn(usize) + Sync) = job;
            // SAFETY: pure lifetime erasure (the pointee type is
            // unchanged); the module invariant keeps the pointee live for
            // every later `call`.
            RawJob(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(ptr)
            })
        }

        /// Runs job `i`.
        pub(crate) fn call(&self, i: usize) {
            // SAFETY: module invariant — the pointee is live and `Sync`.
            unsafe { (*self.0)(i) }
        }
    }
}

/// Lock-free counter handles shared by every worker of one pool.
#[derive(Clone)]
struct Counters {
    /// Jobs executed to completion (including inline fast-path jobs).
    jobs: Counter,
    /// Jobs claimed by a thread other than their batch's submitter — the
    /// cross-thread redistribution dynamic scheduling exists for.
    steals: Counter,
    /// Times an idle worker parked on the injector condvar.
    park: Counter,
}

/// Progress of one batch, guarded by a mutex so the submitter can block on
/// the `done` condvar.
struct Progress {
    finished: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// One submitted batch: `total` jobs claimed by atomic-index
/// self-scheduling from `next`.
struct Batch {
    job: raw::RawJob,
    total: usize,
    next: AtomicUsize,
    /// Set on the first job panic; later claims are skipped (fail fast)
    /// but still counted so the completion latch closes.
    panicked: AtomicBool,
    submitter: thread::ThreadId,
    progress: Mutex<Progress>,
    done: Condvar,
}

impl Batch {
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// The injector: FIFO of batches that still have unclaimed jobs.
    queue: Mutex<VecDeque<Arc<Batch>>>,
    /// Signalled when a batch is submitted or the pool shuts down.
    available: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Claims and runs jobs from `batch` until its index space is exhausted.
/// Every claimed index is counted as finished — run, panicked or skipped —
/// so `finished` reaches `total` exactly once and the submitter's wait
/// always terminates.
fn work_on(batch: &Batch, counters: &Counters) {
    let me = thread::current().id();
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.total {
            break;
        }
        if !batch.panicked.load(Ordering::Relaxed) {
            match catch_unwind(AssertUnwindSafe(|| batch.job.call(i))) {
                Ok(()) => {
                    counters.jobs.inc();
                    if me != batch.submitter {
                        counters.steals.inc();
                    }
                }
                Err(payload) => {
                    batch.panicked.store(true, Ordering::Relaxed);
                    let mut prog = lock(&batch.progress);
                    prog.panic.get_or_insert(payload);
                }
            }
        }
        let mut prog = lock(&batch.progress);
        prog.finished += 1;
        if prog.finished == batch.total {
            batch.done.notify_all();
        }
    }
}

/// Body of each background worker thread: pull the front unexhausted batch
/// from the injector, drain it, park when the injector is empty.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let batch = {
            let mut queue = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                queue.retain(|b| !b.exhausted());
                if let Some(batch) = queue.front() {
                    break batch.clone();
                }
                shared.counters.park.inc();
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        work_on(&batch, &shared.counters);
    }
}

/// A persistent work-sharing pool. See the crate docs for the design.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    registry: Registry,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Creates a pool that runs batches on `threads` threads *including*
    /// the submitting thread, i.e. `threads - 1` background workers are
    /// spawned. `threads` is clamped to at least 1; a 1-thread pool runs
    /// every batch inline, in job order, on the caller's thread.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let registry = Registry::new();
        let counters = Counters {
            jobs: registry.counter(names::POOL_JOBS),
            steals: registry.counter(names::POOL_STEALS),
            park: registry.counter(names::POOL_PARK),
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters,
        });
        let handles = (1..threads)
            .map(|k| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("drum-pool-{k}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            threads,
            handles: Mutex::new(handles),
            registry,
        }
    }

    /// The process-wide pool, created on first use with
    /// [`default_threads`] threads. Its workers persist for the life of
    /// the process (they park when idle), so repeated sweeps pay thread
    /// start-up exactly once.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// Total threads batches run on (submitter + background workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The registry holding the `pool.jobs` / `pool.steals` / `pool.park`
    /// counters (names in [`drum_trace::names`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Runs jobs `0..total` by calling `job(i)` once for each index, and
    /// returns when all of them have finished. Jobs may borrow from the
    /// caller's stack. Background workers help with the batch; the calling
    /// thread participates too, so a batch submitted from inside another
    /// batch's job (nested sweeps) always makes progress.
    ///
    /// Scheduling is dynamic — indices are claimed one at a time by
    /// whichever thread frees next — so callers that need results
    /// independent of thread interleaving must write to per-index state
    /// and reduce in index order (as [`Pool::map`] does).
    ///
    /// # Panics
    ///
    /// If a job panics, the first panic payload is re-thrown on the
    /// calling thread after the whole batch has drained; remaining
    /// unstarted jobs are skipped.
    pub fn run(&self, total: usize, job: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        if self.threads == 1 || total == 1 {
            // Inline fast path: in job order on the caller's thread. This
            // is also the `DRUM_POOL_THREADS=1` determinism oracle.
            for i in 0..total {
                job(i);
            }
            self.shared.counters.jobs.add(total as u64);
            return;
        }

        let batch = Arc::new(Batch {
            job: raw::RawJob::erase(job),
            total,
            next: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            submitter: thread::current().id(),
            progress: Mutex::new(Progress {
                finished: 0,
                panic: None,
            }),
            done: Condvar::new(),
        });

        {
            let mut queue = lock(&self.shared.queue);
            queue.push_back(batch.clone());
        }
        self.shared.available.notify_all();

        // Participate, then wait for in-flight jobs claimed by workers.
        work_on(&batch, &self.shared.counters);
        let mut prog = lock(&batch.progress);
        while prog.finished < batch.total {
            prog = batch
                .done
                .wait(prog)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let panic = prog.panic.take();
        drop(prog);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// Like [`Pool::run`], but collects each job's return value into a
    /// `Vec` ordered by job index — the deterministic-reduction shape:
    /// output `i` depends only on input `i`, never on which thread ran it
    /// or in what order.
    pub fn map<T, F>(&self, total: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
        self.run(total, &|i| {
            *lock(&slots[i]) = Some(f(i));
        });
        slots
            .into_iter()
            .map(|slot| lock(&slot).take().expect("job completed without a result"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker-thread count for the global pool: `DRUM_POOL_THREADS` if set to
/// a positive integer, else `available_parallelism` (min 1).
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("DRUM_POOL_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once() {
        for threads in [1, 2, 4, 9] {
            let pool = Pool::new(threads);
            let hits: Vec<AtomicUsize> = (0..137).map(|_| AtomicUsize::new(0)).collect();
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "{threads} threads: some job ran != 1 times"
            );
        }
    }

    #[test]
    fn map_returns_results_in_index_order() {
        let pool = Pool::new(4);
        let out = pool.map(100, |i| i as u64 * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(10, &|i| lock(&order).push(i));
        assert_eq!(*lock(&order), (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn jobs_borrow_from_the_callers_stack() {
        let pool = Pool::new(3);
        let input: Vec<u64> = (0..64).collect();
        let sums: Vec<u64> = pool.map(input.len(), |i| input[i] + 1);
        assert_eq!(sums.iter().sum::<u64>(), 64 * 65 / 2);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = Pool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, &|i| {
                if i == 7 {
                    panic!("job seven exploded");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("exploded"), "unexpected payload {msg:?}");
        // The pool must stay usable after a panicked batch.
        assert_eq!(pool.map(5, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        pool.run(4, &|_| {
            let inner: u64 = pool.map(8, |j| j as u64).iter().sum();
            total.fetch_add(inner, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 28);
    }

    #[test]
    fn concurrent_submitters_both_complete() {
        let pool = Pool::new(4);
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let out = pool.map(50, |i| i);
                    assert_eq!(out.len(), 50);
                });
            }
        });
    }

    #[test]
    fn counters_account_for_jobs() {
        let pool = Pool::new(3);
        let before = pool.registry().counter(names::POOL_JOBS).get();
        pool.run(40, &|_| {});
        let after = pool.registry().counter(names::POOL_JOBS).get();
        assert_eq!(after - before, 40);
        // Steals never exceed jobs.
        assert!(pool.registry().counter(names::POOL_STEALS).get() <= after);
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = Pool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert!(Pool::global().threads() >= 1);
    }
}
