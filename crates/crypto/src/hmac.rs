//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1) built on [`crate::sha256`].
//!
//! Used by Drum for two purposes:
//!
//! * **source authentication** of data messages (a stand-in for the digital
//!   signatures the paper assumes), and
//! * deriving the keystream that seals randomly chosen port numbers in
//!   transit (see [`mod@crate::seal`]).
//!
//! # Examples
//!
//! ```
//! use drum_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
//! assert_eq!(
//!     drum_crypto::hex::encode(&tag),
//!     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
//! );
//! ```

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, data)`.
///
/// Keys longer than the 64-byte block size are first hashed, per the RFC.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// A precomputed HMAC-SHA-256 key schedule.
///
/// [`HmacSha256::new`] pays two SHA-256 compression passes — one absorbing
/// the `ipad` key block, one the `opad` block — every time it is called. On
/// Drum's receive path that cost recurs per message even though each peer's
/// key is fixed, and it is exactly the kind of per-message work an attacker
/// gets to amplify with forged traffic. `HmacKey` performs both passes once
/// and caches the two mid-states; each subsequent MAC starts from cheap
/// state copies with no allocation, no key-block XOR and no pad
/// compressions.
///
/// Tags are bit-identical to the one-shot [`hmac_sha256`] path.
#[derive(Clone)]
pub struct HmacKey {
    /// Hash state after absorbing `key ^ ipad`.
    inner: Sha256,
    /// Hash state after absorbing `key ^ opad`.
    outer: Sha256,
}

impl core::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HmacKey").finish_non_exhaustive()
    }
}

impl HmacKey {
    /// Derives the key schedule. Keys longer than the 64-byte block size are
    /// first hashed, per the RFC.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// MACs `data` under the cached schedule.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        self.mac_parts(&[data])
    }

    /// MACs the logical concatenation of `parts` without copying them into a
    /// contiguous buffer. Equivalent to `mac` over the concatenation.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
        let mut mac = self.begin();
        for part in parts {
            mac.update(part);
        }
        mac.finalize()
    }

    /// Starts an incremental MAC from the cached schedule.
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// Raw chaining state after absorbing `key ^ ipad`, for the multiway
    /// kernel ([`crate::multiway`]) to resume 8-wide. Always block-aligned:
    /// `new` absorbed exactly one 64-byte pad block.
    pub(crate) fn inner_midstate(&self) -> [u32; 8] {
        self.inner.raw_midstate()
    }

    /// Raw chaining state after absorbing `key ^ opad`; see
    /// [`HmacKey::inner_midstate`].
    pub(crate) fn outer_midstate(&self) -> [u32; 8] {
        self.outer.raw_midstate()
    }
}

/// Incremental HMAC-SHA-256 computation.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer hash state (`key ^ opad` already absorbed), retained until
    /// finalization.
    outer: Sha256,
}

impl core::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    ///
    /// Rebuilds the key schedule from scratch; callers that MAC repeatedly
    /// under one key should cache an [`HmacKey`] and use [`HmacKey::begin`].
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Compares two MAC tags in constant time.
///
/// Prevents the (theoretical, in this simulated setting) timing side channel
/// of a short-circuiting comparison.
pub fn verify_tag(expected: &[u8; DIGEST_LEN], actual: &[u8; DIGEST_LEN]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaa; 131];
        let data = b"This is a test using a larger than block-size key and a larger than \
                     block-size data. The key needs to be hashed before being used by the \
                     HMAC algorithm.";
        let tag = hmac_sha256(&key, data);
        assert_eq!(
            hex::encode(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"hello world"));
    }

    #[test]
    fn cached_key_matches_oneshot() {
        let key = HmacKey::new(b"k");
        assert_eq!(key.mac(b"hello world"), hmac_sha256(b"k", b"hello world"));
        // Reuse does not perturb the cached schedule.
        assert_eq!(key.mac(b"hello world"), hmac_sha256(b"k", b"hello world"));
    }

    #[test]
    fn cached_key_long_key_matches_oneshot() {
        let long_key = [0xaa; 131];
        let key = HmacKey::new(&long_key);
        assert_eq!(key.mac(b"msg"), hmac_sha256(&long_key, b"msg"));
    }

    #[test]
    fn mac_parts_equals_concatenation() {
        let key = HmacKey::new(b"parts-key");
        let whole = key.mac(b"abcdef");
        assert_eq!(key.mac_parts(&[b"abc", b"def"]), whole);
        assert_eq!(key.mac_parts(&[b"", b"abcdef", b""]), whole);
        assert_eq!(key.mac_parts(&[b"a", b"b", b"c", b"d", b"e", b"f"]), whole);
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn verify_tag_accepts_equal_rejects_unequal() {
        let t1 = hmac_sha256(b"k", b"m");
        let mut t2 = t1;
        assert!(verify_tag(&t1, &t2));
        t2[31] ^= 1;
        assert!(!verify_tag(&t1, &t2));
    }
}
