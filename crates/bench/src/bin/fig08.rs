//! Figure 8: weak fixed-strength attacks against Drum
//! (B ∈ {0, 0.9n, 1.8n, 3.6n}) — such attacks barely move Drum's
//! propagation time regardless of how they are spread.

use drum_bench::{banner, scaled, trials, SEED};
use drum_core::ProtocolVariant;
use drum_metrics::table::Table;
use drum_sim::config::SimConfig;
use drum_sim::experiments::fixed_strength_sweep;
use drum_sim::runner::run_experiment;

fn main() {
    banner("Figure 8", "weak fixed-strength attacks on Drum");
    let trials = trials();
    let ns: Vec<usize> = if drum_bench::full_scale() {
        vec![120, 500]
    } else {
        vec![120]
    };
    let alphas = scaled(
        vec![0.1, 0.3, 0.5, 0.7, 0.9],
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    );

    for &n in &ns {
        // Baseline without any attack (but with 10% malicious members).
        let mut baseline_cfg = SimConfig::baseline(ProtocolVariant::Drum, n);
        baseline_cfg.malicious = n / 10;
        let baseline = run_experiment(&baseline_cfg, trials, SEED, 0).mean_rounds();
        println!("n = {n}: Drum, average rounds to 99% (no-attack baseline: {baseline:.1})");

        let mut header = vec!["alpha".to_string()];
        for c in [0.25, 0.5, 1.0] {
            header.push(format!("B={:.1}n", c * 3.6));
        }
        let mut table = Table::new(header);

        let budgets: Vec<f64> = [0.9, 1.8, 3.6].iter().map(|c| c * n as f64).collect();
        let sweeps: Vec<_> = budgets
            .iter()
            .map(|&b| fixed_strength_sweep(n, b, &alphas, &[ProtocolVariant::Drum], trials, SEED))
            .collect();

        for (i, &alpha) in alphas.iter().enumerate() {
            let mut cells = vec![format!("{alpha}")];
            for sweep in &sweeps {
                cells.push(format!("{:.1}", sweep[i].results[0].mean_rounds()));
            }
            table.row(cells);
        }
        println!("{table}");
        println!("paper: all three curves sit within ~1-2 rounds of the baseline\n");
    }
}
